"""The trace recorder: a machine tracer that remembers everything needed
by the paper's metrics.

The recorder keeps, per thread:

* **slices** ``(t0, t1, work)`` — every contiguous run of execution (bursts
  end at pauses, preemptions, blocks, and quantum expiries), which gives an
  exact piecewise-linear service curve :meth:`service_at`;
* lifecycle instants — runnable transitions, dispatches, blocks, wakeups,
  segment completions, charges, exit;

and machine-wide interrupt records.  All computation over the trace lives
in :mod:`repro.trace.metrics` and :mod:`repro.analysis`.
"""

from __future__ import annotations

import bisect
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.threads.thread import SimThread


class ThreadTrace:
    """Recorded history of one thread."""

    __slots__ = ("thread", "slices", "dispatches", "runnables", "blocks",
                 "wakes", "segment_completions", "charges", "spawned_at",
                 "exited_at", "_slice_starts", "_slice_cum")

    def __init__(self, thread: "SimThread") -> None:
        self.thread = thread
        self.slices: List[Tuple[int, int, int]] = []
        self.dispatches: List[int] = []
        self.runnables: List[int] = []
        self.blocks: List[int] = []
        self.wakes: List[int] = []
        self.segment_completions: List[int] = []
        self.charges: List[Tuple[int, int]] = []
        self.spawned_at: Optional[int] = None
        self.exited_at: Optional[int] = None
        self._slice_starts: List[int] = []
        self._slice_cum: List[int] = []  # cumulative work *before* each slice

    @property
    def total_work(self) -> int:
        """Total instructions executed over the whole trace."""
        if not self.slices:
            return 0
        return self._slice_cum[-1] + self.slices[-1][2]

    def add_slice(self, t0: int, t1: int, work: int) -> None:
        """Append an execution slice, maintaining the cumulative index."""
        cum = self.total_work
        self.slices.append((t0, t1, work))
        self._slice_starts.append(t0)
        self._slice_cum.append(cum)

    def service_at(self, t: int) -> float:
        """Cumulative work W(t): exact at slice boundaries, linear inside."""
        idx = bisect.bisect_right(self._slice_starts, t) - 1
        if idx < 0:
            return 0.0
        t0, t1, work = self.slices[idx]
        base = self._slice_cum[idx]
        if t >= t1:
            return float(base + work)
        if t1 == t0:
            return float(base + work)
        return base + work * (t - t0) / (t1 - t0)

    def work_in(self, t1: int, t2: int) -> float:
        """Work executed in the interval [t1, t2]."""
        if t2 < t1:
            raise ValueError("interval end before start")
        return self.service_at(t2) - self.service_at(t1)

    def runnable_intervals(self, horizon: int) -> List[Tuple[int, int]]:
        """Maximal intervals during which the thread was runnable or running.

        ``horizon`` closes a trailing open interval (a thread still
        runnable when tracing stopped).
        """
        intervals: List[Tuple[int, int]] = []
        ends = sorted(self.blocks + ([self.exited_at] if self.exited_at is not None else []))
        ei = 0
        for start in self.runnables:
            while ei < len(ends) and ends[ei] < start:
                ei += 1
            if ei < len(ends):
                intervals.append((start, ends[ei]))
                ei += 1
            else:
                intervals.append((start, horizon))
        return intervals


class Recorder:
    """A tracer object to pass as ``Machine(tracer=...)``."""

    def __init__(self) -> None:
        self.threads: Dict[int, ThreadTrace] = {}
        self.interrupts: List[Tuple[int, int]] = []

    def trace_of(self, thread: "SimThread") -> ThreadTrace:
        """The (created-on-demand) trace of ``thread``."""
        trace = self.threads.get(thread.tid)
        if trace is None:
            trace = ThreadTrace(thread)
            self.threads[thread.tid] = trace
        return trace

    # --- machine tracer hooks ------------------------------------------------

    def on_spawn(self, thread: "SimThread", t: int) -> None:
        """Machine hook: thread created."""
        self.trace_of(thread).spawned_at = t

    def on_runnable(self, thread: "SimThread", t: int) -> None:
        """Machine hook: thread became eligible to run."""
        self.trace_of(thread).runnables.append(t)

    def on_dispatch(self, thread: "SimThread", t: int) -> None:
        """Machine hook: thread was given the CPU."""
        self.trace_of(thread).dispatches.append(t)

    def on_slice(self, thread: "SimThread", t0: int, t1: int, work: int) -> None:
        """Machine hook: a contiguous execution slice finished."""
        self.trace_of(thread).add_slice(t0, t1, work)

    def on_charge(self, thread: "SimThread", t: int, work: int) -> None:
        """Machine hook: a quantum was charged to the scheduler."""
        self.trace_of(thread).charges.append((t, work))

    def on_block(self, thread: "SimThread", t: int, wake_time: int) -> None:
        """Machine hook: thread blocked (wake_time -1 = sync wait)."""
        self.trace_of(thread).blocks.append(t)

    def on_wake(self, thread: "SimThread", t: int) -> None:
        """Machine hook: thread woke up."""
        self.trace_of(thread).wakes.append(t)

    def on_segment_complete(self, thread: "SimThread", t: int) -> None:
        """Machine hook: a workload segment finished."""
        self.trace_of(thread).segment_completions.append(t)

    def on_exit(self, thread: "SimThread", t: int) -> None:
        """Machine hook: thread exited."""
        self.trace_of(thread).exited_at = t

    def on_interrupt(self, t: int, service: int) -> None:
        """Machine hook: an interrupt stole ``service`` ns."""
        self.interrupts.append((t, service))

    # --- convenience ----------------------------------------------------------

    def total_interrupt_time(self) -> int:
        """Total interrupt service time recorded."""
        return sum(service for __, service in self.interrupts)
