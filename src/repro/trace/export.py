"""Trace export: JSON and CSV dumps of recorded runs.

Lets a run be analysed outside the simulator (spreadsheets, notebooks) and
lets tests round-trip a trace.  The JSON schema is stable and versioned.
"""

from __future__ import annotations

import csv
import io
import json
from typing import TYPE_CHECKING, Dict, Iterable, List

from repro.trace.recorder import Recorder

if TYPE_CHECKING:  # pragma: no cover
    from repro.threads.thread import SimThread

#: schema version written into every JSON export
SCHEMA_VERSION = 1


def trace_to_dict(recorder: Recorder,
                  threads: Iterable["SimThread"]) -> Dict:
    """Serializable representation of the traces of ``threads``."""
    payload: Dict = {"schema": SCHEMA_VERSION, "threads": [],
                     "interrupts": list(recorder.interrupts)}
    for thread in threads:
        trace = recorder.trace_of(thread)
        payload["threads"].append({
            "tid": thread.tid,
            "name": thread.name,
            "weight": thread.weight,
            "spawned_at": trace.spawned_at,
            "exited_at": trace.exited_at,
            "total_work": trace.total_work,
            "slices": [list(s) for s in trace.slices],
            "dispatches": list(trace.dispatches),
            "runnables": list(trace.runnables),
            "blocks": list(trace.blocks),
            "wakes": list(trace.wakes),
            "segment_completions": list(trace.segment_completions),
            "markers": dict(thread.stats.markers),
        })
    return payload


def trace_to_json(recorder: Recorder, threads: Iterable["SimThread"],
                  indent: int = 0) -> str:
    """JSON text of :func:`trace_to_dict`."""
    return json.dumps(trace_to_dict(recorder, threads),
                      indent=indent or None, sort_keys=True)


def slices_to_csv(recorder: Recorder,
                  threads: Iterable["SimThread"]) -> str:
    """CSV of every execution slice: thread, start, end, work."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["thread", "tid", "t_start_ns", "t_end_ns",
                     "work_instructions"])
    rows: List = []
    for thread in threads:
        trace = recorder.trace_of(thread)
        for t0, t1, work in trace.slices:
            rows.append((t0, thread.name, thread.tid, t1, work))
    rows.sort()
    for t0, name, tid, t1, work in rows:
        writer.writerow([name, tid, t0, t1, work])
    return buffer.getvalue()


def load_trace_dict(payload: Dict) -> Dict:
    """Validate an exported dict (schema check); returns it unchanged."""
    if payload.get("schema") != SCHEMA_VERSION:
        raise ValueError("unsupported trace schema %r" % (payload.get("schema"),))
    if "threads" not in payload:
        raise ValueError("trace payload missing 'threads'")
    return payload
