"""Trace export: JSON and CSV dumps of recorded runs.

Lets a run be analysed outside the simulator (spreadsheets, notebooks) and
lets tests round-trip a trace.  The JSON schema is stable and versioned.
"""

from __future__ import annotations

import csv
import io
import json
from typing import TYPE_CHECKING, Dict, Iterable, List

from repro.trace.recorder import Recorder

if TYPE_CHECKING:  # pragma: no cover
    from repro.threads.thread import SimThread

#: schema version written into every JSON export
SCHEMA_VERSION = 1


def trace_to_dict(recorder: Recorder,
                  threads: Iterable["SimThread"]) -> Dict:
    """Serializable representation of the traces of ``threads``."""
    payload: Dict = {"schema": SCHEMA_VERSION, "threads": [],
                     "interrupts": list(recorder.interrupts)}
    for thread in threads:
        trace = recorder.trace_of(thread)
        payload["threads"].append({
            "tid": thread.tid,
            "name": thread.name,
            "weight": thread.weight,
            "spawned_at": trace.spawned_at,
            "exited_at": trace.exited_at,
            "total_work": trace.total_work,
            "slices": [list(s) for s in trace.slices],
            "dispatches": list(trace.dispatches),
            "runnables": list(trace.runnables),
            "blocks": list(trace.blocks),
            "wakes": list(trace.wakes),
            "segment_completions": list(trace.segment_completions),
            "markers": dict(thread.stats.markers),
        })
    return payload


def trace_to_json(recorder: Recorder, threads: Iterable["SimThread"],
                  indent: int = 0) -> str:
    """JSON text of :func:`trace_to_dict`."""
    return json.dumps(trace_to_dict(recorder, threads),
                      indent=indent or None, sort_keys=True)


def slices_to_csv(recorder: Recorder,
                  threads: Iterable["SimThread"]) -> str:
    """CSV of every execution slice: thread, start, end, work."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["thread", "tid", "t_start_ns", "t_end_ns",
                     "work_instructions"])
    rows: List = []
    for thread in threads:
        trace = recorder.trace_of(thread)
        for t0, t1, work in trace.slices:
            rows.append((t0, thread.name, thread.tid, t1, work))
    rows.sort()
    for t0, name, tid, t1, work in rows:
        writer.writerow([name, tid, t0, t1, work])
    return buffer.getvalue()


#: per-thread keys every export carries; checked by :func:`load_trace_dict`
THREAD_KEYS = (
    "tid", "name", "weight", "spawned_at", "exited_at", "total_work",
    "slices", "dispatches", "runnables", "blocks", "wakes",
    "segment_completions", "markers",
)

#: per-thread keys holding monotonically non-decreasing timestamp lists
_EVENT_LIST_KEYS = ("dispatches", "runnables", "blocks", "wakes",
                    "segment_completions")


def _check_monotonic(times, where: str) -> None:
    previous = None
    for value in times:
        if not isinstance(value, int):
            raise ValueError("%s holds non-integer timestamp %r" % (where, value))
        if previous is not None and value < previous:
            raise ValueError("%s timestamps go backwards: %d after %d"
                             % (where, value, previous))
        previous = value


def _check_thread(entry: Dict, index: int) -> None:
    where = "threads[%d]" % index
    if not isinstance(entry, dict):
        raise ValueError("%s is not an object" % where)
    for key in THREAD_KEYS:
        if key not in entry:
            raise ValueError("%s missing key %r" % (where, key))
    for key in ("tid", "weight", "spawned_at", "total_work"):
        if not isinstance(entry[key], int):
            raise ValueError("%s[%r] must be an integer, got %r"
                             % (where, key, entry[key]))
    if entry["exited_at"] is not None and not isinstance(entry["exited_at"], int):
        raise ValueError("%s['exited_at'] must be an integer or null" % where)
    if not isinstance(entry["name"], str):
        raise ValueError("%s['name'] must be a string" % where)
    if not isinstance(entry["markers"], dict):
        raise ValueError("%s['markers'] must be an object" % where)

    slices = entry["slices"]
    if not isinstance(slices, list):
        raise ValueError("%s['slices'] must be a list" % where)
    previous_start = None
    total = 0
    for pos, item in enumerate(slices):
        label = "%s.slices[%d]" % (where, pos)
        if not isinstance(item, (list, tuple)) or len(item) != 3:
            raise ValueError("%s must be a [t0, t1, work] triple" % label)
        t0, t1, work = item
        if not all(isinstance(v, int) for v in (t0, t1, work)):
            raise ValueError("%s holds non-integer values" % label)
        if t0 > t1:
            raise ValueError("%s ends before it starts (%d > %d)"
                             % (label, t0, t1))
        if work < 0:
            raise ValueError("%s has negative work %d" % (label, work))
        if previous_start is not None and t0 < previous_start:
            raise ValueError("%s starts before the previous slice" % label)
        previous_start = t0
        total += work
    if total > entry["total_work"]:
        raise ValueError("%s slice work %d exceeds total_work %d"
                         % (where, total, entry["total_work"]))

    for key in _EVENT_LIST_KEYS:
        if not isinstance(entry[key], list):
            raise ValueError("%s[%r] must be a list" % (where, key))
        _check_monotonic(entry[key], "%s.%s" % (where, key))


def load_trace_dict(payload: Dict) -> Dict:
    """Validate an exported dict; returns it unchanged.

    Checks the schema version, the per-thread key set, value types, slice
    geometry (each slice is an integer ``[t0, t1, work]`` triple with
    ``t0 <= t1`` and ``work >= 0``, slices ordered by start time, total
    slice work bounded by ``total_work``), monotonically non-decreasing
    event-timestamp lists, and well-formed ``[time, service]`` interrupt
    pairs in time order.  Raises
    :class:`ValueError` describing the first problem found.
    """
    if not isinstance(payload, dict):
        raise ValueError("trace payload must be a JSON object")
    if payload.get("schema") != SCHEMA_VERSION:
        raise ValueError("unsupported trace schema %r" % (payload.get("schema"),))
    if "threads" not in payload:
        raise ValueError("trace payload missing 'threads'")
    threads = payload["threads"]
    if not isinstance(threads, list):
        raise ValueError("'threads' must be a list")
    for index, entry in enumerate(threads):
        _check_thread(entry, index)
    interrupts = payload.get("interrupts", [])
    if not isinstance(interrupts, list):
        raise ValueError("'interrupts' must be a list")
    previous = None
    for pos, item in enumerate(interrupts):
        if (not isinstance(item, (list, tuple)) or len(item) != 2
                or not all(isinstance(v, int) for v in item)):
            raise ValueError("interrupts[%d] must be a [time, service] pair"
                             % pos)
        time, service = item
        if time < 0 or service < 0:
            raise ValueError("interrupts[%d] holds negative values" % pos)
        if previous is not None and time < previous:
            raise ValueError("interrupts[%d] timestamps go backwards" % pos)
        previous = time
    return payload
