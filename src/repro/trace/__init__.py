"""Tracing and measurement.

* :mod:`repro.trace.recorder` — a machine tracer recording execution
  slices, lifecycle events, and interrupts;
* :mod:`repro.trace.metrics` — service curves, windowed throughput,
  response times, and real-time latency/slack series;
* :mod:`repro.trace.timeline` — execution order reconstruction (Gantt-like)
  used by the Figure 3 golden test and the text charts.
"""

from repro.trace.metrics import (
    cumulative_work_series,
    latency_slack,
    response_times,
    throughput_series,
)
from repro.trace.recorder import Recorder
from repro.trace.timeline import execution_order, merge_timeline

__all__ = [
    "Recorder",
    "throughput_series",
    "cumulative_work_series",
    "response_times",
    "latency_slack",
    "execution_order",
    "merge_timeline",
]
