"""Metrics computed over recorded traces.

These are the measurements the paper's figures plot: windowed and
cumulative throughput (Figures 5, 8, 10, 11), response times for
interactive tasks (§6), and scheduling latency / slack for periodic
real-time threads (Figure 9).
"""

from __future__ import annotations

import bisect
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.trace.recorder import Recorder, ThreadTrace
from repro.units import SECOND

if TYPE_CHECKING:  # pragma: no cover
    from repro.threads.thread import SimThread
    from repro.workloads.periodic import PeriodicWorkload


def throughput_series(recorder: Recorder, thread: "SimThread", window: int,
                      until: int, start: int = 0) -> List[float]:
    """Work executed per ``window`` over [start, until], one value per window."""
    trace = recorder.trace_of(thread)
    series = []
    t = start
    while t + window <= until:
        series.append(trace.work_in(t, t + window))
        t += window
    return series


def cumulative_work_series(recorder: Recorder, thread: "SimThread",
                           step: int, until: int) -> List[Tuple[int, float]]:
    """Sampled cumulative service curve [(t, W(t)), ...] every ``step`` ns."""
    trace = recorder.trace_of(thread)
    return [(t, trace.service_at(t)) for t in range(0, until + 1, step)]


def marker_rate(thread: "SimThread", marker: str, elapsed: int) -> float:
    """Progress markers per second (e.g. frames/s) over ``elapsed`` ns."""
    count = thread.stats.markers.get(marker, 0)
    if elapsed <= 0:
        return 0.0
    return count * SECOND / elapsed


def response_times(recorder: Recorder, thread: "SimThread") -> List[int]:
    """Wake-to-completion times of each burst of an interactive thread.

    Pairs every wakeup with the first segment completion at or after it.
    """
    trace = recorder.trace_of(thread)
    completions = trace.segment_completions
    times = []
    for wake in trace.wakes:
        idx = bisect.bisect_left(completions, wake)
        if idx < len(completions):
            times.append(completions[idx] - wake)
    return times


def latency_slack(recorder: Recorder, thread: "SimThread",
                  workload: "PeriodicWorkload",
                  rounds: Optional[int] = None
                  ) -> List[Tuple[int, int, int]]:
    """Per-round ``(round, scheduling_latency, slack)`` for a periodic thread.

    * scheduling latency — time from the round's release until the thread
      first gets the CPU (paper Figure 9(a));
    * slack — deadline minus job completion time (Figure 9(b); positive
      means the deadline was met).

    Only rounds whose job completed within the trace are reported.
    """
    trace = recorder.trace_of(thread)
    dispatches = trace.dispatches
    completions = trace.segment_completions
    results = []
    releases = workload.releases if rounds is None else workload.releases[:rounds]
    for index, release in enumerate(releases):
        # Jobs are FIFO, so round k's job is the k-th segment completion.
        if index >= len(completions):
            break
        completion = completions[index]
        lo = max(release, completions[index - 1] if index else 0)
        didx = bisect.bisect_left(dispatches, lo)
        if didx < len(dispatches) and dispatches[didx] <= completion:
            latency = dispatches[didx] - release
        else:
            # No fresh dispatch between release and completion: the thread
            # already held (or was continuing on) the CPU — zero wait.
            latency = 0
        slack = workload.deadline(index) - completion
        results.append((index, latency, slack))
    return results


def wait_times(recorder: Recorder, thread: "SimThread") -> List[int]:
    """Ready-queue waits: time from each runnable transition to the first
    dispatch after it.

    This is the general "scheduling latency" distribution (Figure 9(a)'s
    metric, but for any thread, not only periodic ones).
    """
    trace = recorder.trace_of(thread)
    dispatches = trace.dispatches
    waits = []
    for ready in trace.runnables:
        idx = bisect.bisect_left(dispatches, ready)
        if idx < len(dispatches):
            waits.append(dispatches[idx] - ready)
    return waits


def node_work(recorder: Recorder, threads, t1: int, t2: int) -> float:
    """Aggregate work of a group of threads in [t1, t2] (node throughput)."""
    return sum(recorder.trace_of(t).work_in(t1, t2) for t in threads)


def common_runnable_intervals(a: ThreadTrace, b: ThreadTrace,
                              horizon: int) -> List[Tuple[int, int]]:
    """Maximal intervals during which *both* threads were runnable."""
    result = []
    ia = a.runnable_intervals(horizon)
    ib = b.runnable_intervals(horizon)
    i = j = 0
    while i < len(ia) and j < len(ib):
        lo = max(ia[i][0], ib[j][0])
        hi = min(ia[i][1], ib[j][1])
        if lo < hi:
            result.append((lo, hi))
        if ia[i][1] <= ib[j][1]:
            i += 1
        else:
            j += 1
    return result
