"""EXP-F5 — Figure 5: predictability of time-sharing versus SFQ.

Five identical Dhrystone threads run (a) under the SVR4 time-sharing
scheduler with equal initial user priority and (b) under SFQ with equal
weights — both as the whole machine, as in the paper, in "multiuser mode"
(a pair of daemon-like interactive threads perturb the run in both cases).

The paper's Figure 5 shows TS throughput varying significantly across the
identical threads while SFQ gives them all the same throughput.  We report
per-thread loop counts, their spread, and the coefficient of variation of
windowed throughput — the shape to reproduce is CoV(TS) >> CoV(SFQ) ~ 0.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.analysis.stats import coefficient_of_variation
from repro.experiments.common import (
    DEFAULT_CAPACITY_IPS,
    ExperimentResult,
    FlatSetup,
    spawn_dhrystones,
)
from repro.schedulers.sfq_leaf import SfqScheduler
from repro.schedulers.svr4 import Svr4TimeSharing
from repro.sim.rng import make_rng
from repro.threads.thread import SimThread
from repro.trace.metrics import throughput_series
from repro.units import MS, SECOND
from repro.workloads.dhrystone import loops_completed
from repro.workloads.interactive import InteractiveWorkload


def _add_daemons(setup: FlatSetup, seed: int, svr4: bool) -> None:
    """Two system-daemon-like interactive threads (multiuser mode)."""
    for index in range(2):
        rng = make_rng(seed, "daemon/%d" % index)
        workload = InteractiveWorkload(
            burst_work=400_000, think_time=120 * MS, rng=rng)
        params = {"priority": 55} if svr4 else {}
        daemon = SimThread("daemon-%d" % index, workload, weight=1,
                           params=params)
        setup.spawn(daemon)


def _run_one(scheduler, svr4: bool, threads: int, duration: int,
             seed: int) -> Tuple[List[SimThread], FlatSetup]:
    setup = FlatSetup(scheduler, capacity_ips=DEFAULT_CAPACITY_IPS,
                      default_quantum=20 * MS)
    workers = spawn_dhrystones(setup, None, threads, prefix="dhry")
    _add_daemons(setup, seed, svr4)
    setup.machine.run_until(duration)
    return workers, setup


def _mean_window_cov(setup: FlatSetup, workers: List[SimThread], window: int,
                     duration: int) -> float:
    """Average across-thread CoV of per-window throughput."""
    from repro.analysis.stats import mean
    per_thread = [
        throughput_series(setup.recorder, t, window, duration)
        for t in workers
    ]
    covs = []
    for index in range(len(per_thread[0])):
        covs.append(coefficient_of_variation(
            [series[index] for series in per_thread]))
    return mean(covs)


def run(threads: int = 5, duration: int = 30 * SECOND,
        seed: int = 11) -> ExperimentResult:
    """Compare per-thread throughput spread under TS and SFQ."""
    ts_workers, ts_setup = _run_one(Svr4TimeSharing(), True, threads,
                                    duration, seed)
    sfq_workers, sfq_setup = _run_one(SfqScheduler(), False, threads,
                                      duration, seed)

    ts_loops = [loops_completed(t) for t in ts_workers]
    sfq_loops = [loops_completed(t) for t in sfq_workers]

    # Across-thread spread per window: for each window, the CoV of the five
    # per-thread throughputs — the unpredictability Figure 5 plots —
    # averaged over windows.
    window = duration // 30
    ts_window_cov = _mean_window_cov(ts_setup, ts_workers, window, duration)
    sfq_window_cov = _mean_window_cov(sfq_setup, sfq_workers, window, duration)

    rows = []
    for index in range(threads):
        rows.append(["thread-%d" % index, ts_loops[index], sfq_loops[index]])
    rows.append(["min", min(ts_loops), min(sfq_loops)])
    rows.append(["max", max(ts_loops), max(sfq_loops)])
    rows.append(["CoV (final loops)", coefficient_of_variation(ts_loops),
                 coefficient_of_variation(sfq_loops)])
    rows.append(["CoV (windowed)", ts_window_cov, sfq_window_cov])

    notes = [
        "TS spread max/min = %.3f; SFQ spread max/min = %.3f"
        % (max(ts_loops) / max(1, min(ts_loops)),
           max(sfq_loops) / max(1, min(sfq_loops))),
        "paper shape: TS throughput varies significantly across identical "
        "threads; SFQ throughput is uniform",
    ]
    return ExperimentResult(
        "Figure 5: Dhrystone loops under SVR4 time-sharing vs SFQ",
        ["metric", "SVR4 TS", "SFQ"], rows, notes=notes)


def main() -> None:
    """Regenerate this experiment at full scale and print it."""
    print(run().render())


if __name__ == "__main__":
    main()
