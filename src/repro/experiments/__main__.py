"""Run every experiment and print a full report.

Usage::

    python -m repro.experiments            # all figures + ablations
    python -m repro.experiments --quick    # reduced durations (~15 s)
    python -m repro.experiments figure8 ab6  # a selection

The per-figure modules remain runnable on their own
(``python -m repro.experiments.figure8``).
"""

from __future__ import annotations

import sys
import time

from repro.experiments import (
    ablation_bounds,
    ablation_currency,
    ablation_delay,
    ablation_fairness,
    ablation_fluctuation,
    ablation_lottery,
    ablation_overload,
    ablation_reserves,
    ablation_tagmath,
    extension_smp,
    figure1,
    figure3,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
)
from repro.units import SECOND

#: name -> (full-scale runner, quick runner)
EXPERIMENTS = {
    "figure1": (lambda: figure1.run(frames=3000),
                lambda: figure1.run(frames=600)),
    "figure3": (figure3.run, figure3.run),
    "figure5": (lambda: figure5.run(duration=30 * SECOND),
                lambda: figure5.run(duration=10 * SECOND)),
    "figure6": (figure6.run, figure6.run),
    "figure7a": (lambda: figure7.run_thread_sweep(20, 5 * SECOND),
                 lambda: figure7.run_thread_sweep(6, 2 * SECOND)),
    "figure7b": (lambda: figure7.run_depth_sweep(30, 5, 5, 5 * SECOND),
                 lambda: figure7.run_depth_sweep(20, 10, 3, 2 * SECOND)),
    "figure8a": (lambda: figure8.run_partitioning(duration=20 * SECOND),
                 lambda: figure8.run_partitioning(duration=8 * SECOND)),
    "figure8b": (lambda: figure8.run_isolation(duration=20 * SECOND),
                 lambda: figure8.run_isolation(duration=8 * SECOND)),
    "figure9": (lambda: figure9.run(duration=20 * SECOND),
                lambda: figure9.run(duration=8 * SECOND)),
    "figure10": (lambda: figure10.run(duration=20 * SECOND),
                 lambda: figure10.run(duration=8 * SECOND)),
    "figure11": (figure11.run, figure11.run),
    "ab1": (lambda: ablation_fluctuation.run(duration=20 * SECOND),
            lambda: ablation_fluctuation.run(duration=8 * SECOND)),
    "ab2": (lambda: ablation_bounds.run(duration=20 * SECOND),
            lambda: ablation_bounds.run(duration=8 * SECOND)),
    "ab3": (lambda: ablation_fairness.run(duration=20 * SECOND),
            lambda: ablation_fairness.run(duration=8 * SECOND)),
    "ab4": (lambda: ablation_tagmath.run(duration=10 * SECOND),
            lambda: ablation_tagmath.run(duration=4 * SECOND)),
    "ab5": (lambda: ablation_lottery.run(duration=30 * SECOND),
            lambda: ablation_lottery.run(duration=10 * SECOND)),
    "ab6": (lambda: ablation_overload.run(duration=20 * SECOND),
            lambda: ablation_overload.run(duration=8 * SECOND)),
    "ab7": (lambda: ablation_currency.run(duration=30 * SECOND),
            lambda: ablation_currency.run(duration=10 * SECOND)),
    "ab8": (lambda: ablation_reserves.run(duration=30 * SECOND),
            lambda: ablation_reserves.run(duration=12 * SECOND)),
    "ab9": (lambda: ablation_delay.run(duration=30 * SECOND),
            lambda: ablation_delay.run(duration=10 * SECOND)),
    "smp": (lambda: extension_smp.run(duration=10 * SECOND),
            lambda: extension_smp.run(duration=4 * SECOND)),
}


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    args = list(sys.argv[1:] if argv is None else argv)
    quick = "--quick" in args
    if quick:
        args.remove("--quick")
    names = args or list(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print("unknown experiment(s): %s" % ", ".join(unknown))
        print("available: %s" % ", ".join(EXPERIMENTS))
        return 2
    for name in names:
        full, reduced = EXPERIMENTS[name]
        runner = reduced if quick else full
        started = time.perf_counter()
        result = runner()
        elapsed = time.perf_counter() - started
        print("=" * 72)
        print("[%s] regenerated in %.2f s" % (name, elapsed))
        print(result.render())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
