"""EXP-F7 — Figure 7: overhead of the hierarchical scheduler.

(a) Ratio of aggregate Dhrystone throughput under the hierarchical
    scheduler (threads in node SFQ-1 of the Figure 6 structure) to the
    "unmodified kernel" (flat SVR4 machine), as the thread count grows
    1..20.  The paper measures within 1%.
(b) The same ratio as pass-through internal nodes are interposed between
    the root and SFQ-1 (depth 0..30).  The paper measures within 0.2%.

On a simulator, overhead exists only if modelled: both machines charge a
per-dispatch cost from the same :class:`LinearCostModel`, with the
hierarchical machine paying an additional per-tree-level term — so the
reported ratios reflect the algorithmic cost difference, not Python speed.
(Wall-clock costs of this implementation's pick/charge path are measured
separately by the pytest benchmarks.)
"""

from __future__ import annotations

from repro.cpu.costs import LinearCostModel
from repro.experiments.common import (
    DEFAULT_CAPACITY_IPS,
    ExperimentResult,
    FlatSetup,
    HierarchicalSetup,
    figure6_structure,
    spawn_dhrystones,
)
from repro.schedulers.svr4 import Svr4TimeSharing
from repro.units import MS, SECOND, US
from repro.workloads.dhrystone import loops_completed


def _total_loops_hierarchical(threads: int, depth: int, duration: int,
                              quantum: int, cost_model: LinearCostModel) -> int:
    structure, sfq1, __, __ = figure6_structure(interposed_depth=depth)
    setup = HierarchicalSetup(structure, capacity_ips=DEFAULT_CAPACITY_IPS,
                              default_quantum=quantum, cost_model=cost_model)
    workers = spawn_dhrystones(setup, sfq1, threads)
    setup.machine.run_until(duration)
    return sum(loops_completed(t) for t in workers)


def _total_loops_flat(threads: int, duration: int, quantum: int,
                      cost_model: LinearCostModel) -> int:
    setup = FlatSetup(Svr4TimeSharing(), capacity_ips=DEFAULT_CAPACITY_IPS,
                      default_quantum=quantum, cost_model=cost_model)
    workers = spawn_dhrystones(setup, None, threads)
    setup.machine.run_until(duration)
    return sum(loops_completed(t) for t in workers)


def run_thread_sweep(max_threads: int = 20, duration: int = 5 * SECOND,
                     quantum: int = 20 * MS) -> ExperimentResult:
    """Figure 7(a): overhead ratio versus number of threads."""
    cost_model = LinearCostModel(base_ns=2 * US, per_level_ns=1 * US,
                                 context_switch_ns=10 * US)
    rows = []
    for threads in range(1, max_threads + 1):
        hier = _total_loops_hierarchical(threads, 0, duration, quantum,
                                         cost_model)
        flat = _total_loops_flat(threads, duration, quantum, cost_model)
        rows.append([threads, hier, flat, hier / flat])
    ratios = [row[3] for row in rows]
    notes = [
        "worst ratio %.4f (paper: within 1%% of unmodified kernel)"
        % min(ratios),
    ]
    return ExperimentResult(
        "Figure 7(a): hierarchical/unmodified throughput vs thread count",
        ["threads", "hier loops", "flat loops", "ratio"], rows, notes=notes,
        series={"ratio": ratios})


def run_depth_sweep(max_depth: int = 30, step: int = 5, threads: int = 5,
                    duration: int = 5 * SECOND,
                    quantum: int = 20 * MS) -> ExperimentResult:
    """Figure 7(b): throughput versus depth of the hierarchy."""
    cost_model = LinearCostModel(base_ns=2 * US, per_level_ns=1 * US,
                                 context_switch_ns=10 * US)
    baseline = None
    rows = []
    for depth in range(0, max_depth + 1, step):
        loops = _total_loops_hierarchical(threads, depth, duration, quantum,
                                          cost_model)
        if baseline is None:
            baseline = loops
        rows.append([depth, loops, loops / baseline])
    ratios = [row[2] for row in rows]
    notes = [
        "deepest/shallowest throughput ratio %.4f (paper: within 0.2%%)"
        % min(ratios),
    ]
    return ExperimentResult(
        "Figure 7(b): throughput vs depth of hierarchy",
        ["interposed depth", "loops", "ratio vs depth 0"], rows, notes=notes,
        series={"ratio": ratios})


def main() -> None:
    """Regenerate this experiment at full scale and print it."""
    print(run_thread_sweep().render())
    print()
    print(run_depth_sweep().render())


if __name__ == "__main__":
    main()
