"""EXP-AB9 — ablation: delay for low-throughput (interactive) threads (§6).

The paper derives that SFQ's delay bound beats WFQ's whenever a thread's
reserved rate is below ``C / Q`` and concludes: "SFQ provides lower delay
to low throughput applications.  Since interactive applications are low
throughput in nature, this feature of SFQ is highly desirable for CPU
scheduling."  SCFQ likewise inflates the bound by ``(Q−1)·l̂/C``.

Scenario: one interactive thread (short bursts, long think times, low
weight) against eight backlogged CPU hogs.  Measured: the distribution of
wake-to-burst-completion response times under SFQ, WFQ, FQS, and SCFQ.
Shape: SFQ's mean and tail response times are the smallest of the
finish-tag schedulers; the paper's analytical penalties
(:func:`repro.analysis.bounds.wfq_delay_penalty`) give the direction.
"""

from __future__ import annotations

from repro.analysis.stats import mean, percentile
from repro.cpu.interrupts import PeriodicInterruptSource
from repro.experiments.common import ExperimentResult, FlatSetup
from repro.schedulers.fairqueue import FqsScheduler, ScfqScheduler, WfqScheduler
from repro.schedulers.sfq_leaf import SfqScheduler
from repro.sim.rng import make_rng
from repro.threads.thread import SimThread
from repro.trace.metrics import response_times
from repro.units import MS, SECOND
from repro.workloads.dhrystone import DhrystoneWorkload
from repro.workloads.interactive import InteractiveWorkload

CAPACITY = 10_000_000
QUANTUM = 10 * MS
QUANTUM_WORK = CAPACITY * QUANTUM // SECOND
HOGS = 8


def _schedulers():
    return {
        "SFQ": SfqScheduler(),
        "WFQ": WfqScheduler(QUANTUM_WORK, CAPACITY),
        "FQS": FqsScheduler(QUANTUM_WORK, CAPACITY),
        "SCFQ": ScfqScheduler(QUANTUM_WORK),
    }


def run(duration: int = 30 * SECOND, seed: int = 41) -> ExperimentResult:
    """Interactive response-time distribution under each fair scheduler."""
    rows = []
    means = {}
    for name, scheduler in _schedulers().items():
        setup = FlatSetup(scheduler, capacity_ips=CAPACITY,
                          default_quantum=QUANTUM)
        interactive = SimThread(
            "editor",
            InteractiveWorkload(burst_work=QUANTUM_WORK // 4,
                                think_time=100 * MS,
                                rng=make_rng(seed, "think")),
            weight=1)
        setup.spawn(interactive)
        for index in range(HOGS):
            setup.spawn(SimThread("hog-%d" % index, DhrystoneWorkload(),
                                  weight=1))
        # mild interrupt load, as everywhere in the paper's environment
        setup.machine.add_interrupt_source(
            PeriodicInterruptSource(period=20 * MS, service=1 * MS))
        setup.machine.run_until(duration)
        times = [t / MS for t in
                 response_times(setup.recorder, interactive)]
        means[name] = mean(times)
        rows.append([name, len(times), mean(times),
                     percentile(times, 95), max(times)])
    notes = [
        "one low-weight interactive thread vs %d backlogged hogs" % HOGS,
        "wake-to-completion times in ms; bursts are ~1/4 quantum",
        "paper §6: SFQ's delay bound beats WFQ's for low-throughput "
        "threads (Q > C/r_f) and SCFQ's by (Q-1)*l̂/C",
    ]
    return ExperimentResult(
        "Ablation AB9: interactive response times across fair schedulers",
        ["algorithm", "bursts", "mean ms", "p95 ms", "max ms"],
        rows, notes=notes)


def main() -> None:
    """Regenerate this experiment at full scale and print it."""
    print(run().render())


if __name__ == "__main__":
    main()
