"""EXP-F1 — Figure 1: variation in MPEG frame decompression times.

The paper's Figure 1 plots per-frame decode time of an MPEG sequence to
motivate two claims: cost varies *frame-to-frame* (tens of milliseconds —
the GOP structure) and *scene-to-scene* (seconds — content complexity).
This harness generates a synthetic VBR trace and quantifies both
timescales:

* per-frame-type mean decode times (I > P > B);
* coefficient of variation across all frames (frame-level variability);
* coefficient of variation of per-second averages (scene-level
  variability) — nonzero only because scene complexity drifts.
"""

from __future__ import annotations

from repro.analysis.stats import coefficient_of_variation, mean, stdev
from repro.experiments.common import DEFAULT_CAPACITY_IPS, ExperimentResult
from repro.workloads.mpeg import MpegVbrModel


def run(frames: int = 3000, seed: int = 7,
        capacity_ips: int = DEFAULT_CAPACITY_IPS) -> ExperimentResult:
    """Generate a VBR trace and summarize its two-timescale variability."""
    model = MpegVbrModel(seed=seed)
    costs = model.frame_costs(frames)
    # decode time in ms on the reference CPU
    times_ms = [cost / capacity_ips * 1000.0 for cost in costs]

    by_type = {"I": [], "P": [], "B": []}
    for index, t in enumerate(times_ms):
        by_type[model.frame_type(index)].append(t)

    # scene-level: average decode time over one-second blocks of video
    frames_per_second = model.frame_rate
    second_means = [
        mean(times_ms[i:i + frames_per_second])
        for i in range(0, len(times_ms) - frames_per_second + 1,
                       frames_per_second)
    ]

    rows = [
        ["all frames", len(times_ms), mean(times_ms), stdev(times_ms),
         coefficient_of_variation(times_ms)],
    ]
    for ftype in "IPB":
        values = by_type[ftype]
        rows.append(["%s frames" % ftype, len(values), mean(values),
                     stdev(values), coefficient_of_variation(values)])
    rows.append(["per-second means", len(second_means), mean(second_means),
                 stdev(second_means),
                 coefficient_of_variation(second_means)])

    notes = [
        "frame-level CoV %.3f (frame-to-frame variability, tens of ms)"
        % coefficient_of_variation(times_ms),
        "scene-level CoV %.3f (scene-to-scene variability, seconds)"
        % coefficient_of_variation(second_means),
        "video duration %.1f s at %d fps"
        % (frames / model.frame_rate, model.frame_rate),
    ]
    return ExperimentResult(
        "Figure 1: MPEG decode-time variability",
        ["group", "n", "mean ms", "stdev ms", "CoV"],
        rows, notes=notes,
        series={"decode_ms": times_ms, "per_second_ms": second_means})


def main() -> None:
    """Regenerate this experiment at full scale and print it."""
    result = run()
    print(result.render())
    from repro.viz.ascii_chart import sparkline
    print("per-frame decode time:", sparkline(result.series["decode_ms"]))
    print("per-second mean:      ", sparkline(result.series["per_second_ms"]))


if __name__ == "__main__":
    main()
