"""EXP-AB7 — ablation: hierarchical SFQ vs ticket currencies (§6).

The paper credits Waldspurger & Weihl's currency framework with expressing
hierarchical partitioning but criticizes it: allocation is randomized (so
fair only over large intervals), ticket values are recomputed on every
block/unblock, and it cannot host different scheduling algorithms per
class.  This ablation builds the same two-class split (class A with two
threads and class B with one thread, 50:50 at the top) in both frameworks
and measures the per-window share error of class A, plus the number of
re-valuations the currency scheduler performed.
"""

from __future__ import annotations

from typing import List

from repro.analysis.stats import mean
from repro.core.hierarchy import HierarchicalScheduler
from repro.core.structure import SchedulingStructure
from repro.cpu.machine import Machine
from repro.currency.lottery import CurrencyLottery
from repro.experiments.common import ExperimentResult
from repro.schedulers.sfq_leaf import SfqScheduler
from repro.sim.engine import Simulator
from repro.sim.rng import make_rng
from repro.threads.thread import SimThread
from repro.trace.metrics import node_work
from repro.trace.recorder import Recorder
from repro.units import MS, SECOND
from repro.workloads.dhrystone import DhrystoneWorkload
from repro.workloads.phased import PhasedWorkload

CAPACITY = 10_000_000
QUANTUM = 10 * MS


ON_PHASE = 700 * MS
CYCLE = SECOND


def _workloads(seed: int):
    """Class A: two steady threads; class B: one deterministic on/off."""
    phased = PhasedWorkload(on=ON_PHASE, cycle=CYCLE,
                            batch=CAPACITY * QUANTUM // SECOND)
    return DhrystoneWorkload(), DhrystoneWorkload(), phased


def _share_errors(recorder: Recorder, class_a, class_b, duration: int,
                  window: int) -> List[float]:
    """Per-window |share(A) - 0.5| over windows fully inside B-on phases."""
    errors = []
    t = 0
    while t + window <= duration:
        # keep only windows entirely within [0, ON_PHASE) of their cycle
        if (t % CYCLE) + window <= ON_PHASE:
            wa = node_work(recorder, class_a, t, t + window)
            wb = node_work(recorder, class_b, t, t + window)
            total = wa + wb
            if total > 0:
                errors.append(abs(wa / total - 0.5))
        t += window
    return errors


def _run_sfq(duration: int, seed: int):
    structure = SchedulingStructure()
    leaf_a = structure.mknod("/classA", 1, scheduler=SfqScheduler())
    leaf_b = structure.mknod("/classB", 1, scheduler=SfqScheduler())
    engine = Simulator()
    recorder = Recorder()
    machine = Machine(engine, HierarchicalScheduler(structure),
                      capacity_ips=CAPACITY, default_quantum=QUANTUM,
                      tracer=recorder)
    wl_a1, wl_a2, wl_b = _workloads(seed)
    a1, a2 = SimThread("a1", wl_a1), SimThread("a2", wl_a2)
    b1 = SimThread("b1", wl_b)
    leaf_a.attach_thread(a1)
    leaf_a.attach_thread(a2)
    leaf_b.attach_thread(b1)
    for thread in (a1, a2, b1):
        machine.spawn(thread)
    machine.run_until(duration)
    return recorder, [a1, a2], [b1], None


def _run_currency(duration: int, seed: int):
    scheduler = CurrencyLottery(rng=make_rng(seed, "lottery"))
    engine = Simulator()
    recorder = Recorder()
    machine = Machine(engine, scheduler, capacity_ips=CAPACITY,
                      default_quantum=QUANTUM, tracer=recorder)
    currency_a = scheduler.create_currency("classA", funding=100)
    currency_b = scheduler.create_currency("classB", funding=100)
    wl_a1, wl_a2, wl_b = _workloads(seed)
    a1, a2 = SimThread("a1", wl_a1), SimThread("a2", wl_a2)
    b1 = SimThread("b1", wl_b)
    scheduler.bind(a1, currency_a)
    scheduler.bind(a2, currency_a)
    scheduler.bind(b1, currency_b)
    for thread in (a1, a2, b1):
        machine.spawn(thread)
    machine.run_until(duration)
    return recorder, [a1, a2], [b1], scheduler


def run(duration: int = 30 * SECOND, seed: int = 23) -> ExperimentResult:
    """Per-window class-share error: hierarchical SFQ vs currencies."""
    rows = []
    for name, runner in [("hierarchical SFQ", _run_sfq),
                         ("ticket currencies", _run_currency)]:
        recorder, class_a, class_b, scheduler = runner(duration, seed)
        for window in (100 * MS, 500 * MS):
            errors = _share_errors(recorder, class_a, class_b, duration,
                                   window)
            label = "%.1f s" % (window / SECOND)
            rows.append([name, label, mean(errors), max(errors)])
        if scheduler is not None:
            revals = scheduler.revaluations
    notes = [
        "share error = |class A share - 0.5| per window, counted while "
        "class B is active",
        "currency scheduler performed %d ticket re-valuations "
        "(one per block/unblock — the paper's overhead point)" % revals,
        "the currency framework cannot host per-class schedulers at all "
        "(every thread is lottery-scheduled), which is the paper's main "
        "qualitative criticism",
    ]
    return ExperimentResult(
        "Ablation AB7: hierarchical SFQ vs ticket-currency lottery",
        ["framework", "window", "mean share error", "max share error"],
        rows, notes=notes)


def main() -> None:
    """Regenerate this experiment at full scale and print it."""
    print(run().render())


if __name__ == "__main__":
    main()
