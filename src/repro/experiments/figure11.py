"""EXP-F11 — Figure 11: dynamic bandwidth allocation.

Two Dhrystone threads in an SFQ leaf, with the paper's exact script of
weight changes and a sleep window (times in seconds):

====  ======================================  ===============
time  event                                    throughput ratio
====  ======================================  ===============
0     both weights 4                           4:4
4     thread2 weight -> 2                      4:2
6     thread1 put to sleep                     0:2
9     thread1 resumes                          4:2
12    thread1 weight -> 8                      8:2
16    thread2 weight -> 4                      8:4
22    thread1 weight -> 4                      4:4
====  ======================================  ===============

The harness applies weight changes through ``hsfq_admin`` (the paper's
administrative call), measures per-second throughput of both threads, and
reports the measured ratio per phase.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.analysis.stats import mean
from repro.core.structure import ADMIN_SET_WEIGHT, SchedulingStructure
from repro.experiments.common import (
    DEFAULT_CAPACITY_IPS,
    ExperimentResult,
    HierarchicalSetup,
)
from repro.schedulers.sfq_leaf import SfqScheduler
from repro.threads.segments import Compute, SleepUntil, Workload
from repro.threads.thread import SimThread
from repro.trace.metrics import throughput_series
from repro.units import MS, SECOND

#: the paper's phases: (start s, end s, expected ratio thread1:thread2)
PHASES: Tuple[Tuple[int, int, float], ...] = (
    (0, 4, 1.0),    # 4:4
    (4, 6, 2.0),    # 4:2
    (6, 9, 0.0),    # 0:2 (thread1 asleep)
    (9, 12, 2.0),   # 4:2
    (12, 16, 4.0),  # 8:2
    (16, 22, 2.0),  # 8:4
    (22, 26, 1.0),  # 4:4
)


class _SleepWindowDhrystone(Workload):
    """CPU-bound loops that sleep through configured absolute windows."""

    def __init__(self, windows: List[Tuple[int, int]],
                 batch_work: int = 1_000_000) -> None:
        self.windows = list(windows)
        self.batch_work = batch_work
        self.loop_cost = 300

    def next_segment(self, now: int, thread: SimThread):
        for start, end in self.windows:
            if start <= now < end:
                return SleepUntil(end)
        return Compute(self.batch_work)


def run(capacity_ips: int = DEFAULT_CAPACITY_IPS,
        time_scale: int = SECOND) -> ExperimentResult:
    """Run the scripted scenario; ``time_scale`` shrinks it for tests."""
    structure = SchedulingStructure()
    leaf = structure.mknod("/SFQ-1", 1, scheduler=SfqScheduler())
    setup = HierarchicalSetup(structure, capacity_ips=capacity_ips,
                              default_quantum=10 * MS)
    sleep_windows = [(6 * time_scale, 9 * time_scale)]
    thread1 = SimThread("thread1", _SleepWindowDhrystone(sleep_windows),
                        weight=4)
    thread2 = SimThread("thread2", _SleepWindowDhrystone([]), weight=4)
    setup.spawn(thread1, leaf)
    setup.spawn(thread2, leaf)

    # The weight-change script, applied via hsfq_admin-style calls.
    engine = setup.engine
    engine.at(4 * time_scale, lambda: thread2.set_weight(2))
    engine.at(12 * time_scale, lambda: thread1.set_weight(8))
    engine.at(16 * time_scale, lambda: thread2.set_weight(4))
    engine.at(22 * time_scale, lambda: thread1.set_weight(4))
    # Also exercise the node-level admin path once (same mechanism).
    engine.at(2 * time_scale,
              lambda: structure.admin("/SFQ-1", ADMIN_SET_WEIGHT, 1))

    duration = 26 * time_scale
    setup.machine.run_until(duration)

    window = time_scale
    series1 = throughput_series(setup.recorder, thread1, window, duration)
    series2 = throughput_series(setup.recorder, thread2, window, duration)

    rows = []
    measured = []
    for start, end, expected in PHASES:
        w1 = mean(series1[start:end])
        w2 = mean(series2[start:end])
        ratio = w1 / w2 if w2 else float("inf")
        measured.append(ratio)
        rows.append(["%d-%d" % (start, end), w1, w2, expected, ratio])
    notes = [
        "ratio tracks the weight script through every phase",
        "phase boundaries excluded windows: ratios are means of whole "
        "windows inside each phase",
    ]
    return ExperimentResult(
        "Figure 11: throughput under dynamic weight changes",
        ["phase s", "thread1 work/s", "thread2 work/s", "expected ratio",
         "measured ratio"],
        rows, notes=notes,
        series={"thread1": series1, "thread2": series2})


def main() -> None:
    """Regenerate this experiment at full scale and print it."""
    print(run().render())


if __name__ == "__main__":
    main()
