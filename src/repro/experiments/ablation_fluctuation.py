"""EXP-AB1 — ablation: fairness under fluctuating capacity (§6 claims).

The paper's central argument for SFQ over WFQ/FQS is that WFQ's virtual
time assumes a constant-rate server, so when interrupts steal CPU the tags
drift from the service actually delivered and fairness breaks; SFQ's
self-clocked start tags do not drift.

Scenario: thread A is continuously backlogged; thread B alternates between
backlogged and sleeping phases.  A heavy periodic interrupt source steals
~25% of the CPU in coarse 25 ms chunks.  Each wakeup of B re-reads the
scheduler's virtual time, so any drift between virtual time and delivered
service shows up as a normalized service gap between A and B.  We measure
the exact maximal gap (see :mod:`repro.analysis.fairness`) under SFQ, WFQ,
FQS, and SCFQ, normalized to the SFQ fairness bound.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.fairness import max_normalized_service_gap, sfq_fairness_bound
from repro.cpu.interrupts import PeriodicInterruptSource
from repro.experiments.common import ExperimentResult, FlatSetup
from repro.schedulers.fairqueue import FqsScheduler, ScfqScheduler, WfqScheduler
from repro.schedulers.sfq_leaf import SfqScheduler
from repro.threads.thread import SimThread
from repro.workloads.phased import PhasedWorkload
from repro.units import MS, SECOND

#: modest CPU so work numbers stay readable
CAPACITY = 10_000_000
QUANTUM = 10 * MS
QUANTUM_WORK = CAPACITY * QUANTUM // SECOND


def _schedulers() -> Dict[str, object]:
    return {
        "SFQ": SfqScheduler(),
        "WFQ": WfqScheduler(QUANTUM_WORK, CAPACITY),
        "FQS": FqsScheduler(QUANTUM_WORK, CAPACITY),
        "SCFQ": ScfqScheduler(QUANTUM_WORK),
    }


def run(duration: int = 20 * SECOND) -> ExperimentResult:
    """Max normalized service gap of each algorithm under fluctuation."""
    rows = []
    gaps = {}
    for name, scheduler in _schedulers().items():
        setup = FlatSetup(scheduler, capacity_ips=CAPACITY,
                          default_quantum=QUANTUM)
        batch = QUANTUM_WORK
        thread_a = SimThread(
            "A", PhasedWorkload(on=SECOND, cycle=SECOND, batch=batch),
            weight=1)
        thread_b = SimThread(
            "B", PhasedWorkload(on=700 * MS, cycle=SECOND, batch=batch),
            weight=2)
        setup.spawn(thread_a)
        setup.spawn(thread_b)
        # 25 ms stolen out of every 100 ms, in one coarse chunk: a strongly
        # fluctuating (but FC) effective server.
        setup.machine.add_interrupt_source(
            PeriodicInterruptSource(period=100 * MS, service=25 * MS))
        setup.machine.run_until(duration)
        gap = max_normalized_service_gap(setup.recorder, thread_a, thread_b,
                                         duration)
        gaps[name] = gap
        bound = sfq_fairness_bound(QUANTUM_WORK, 1, QUANTUM_WORK, 2)
        rows.append([name, gap, gap / bound])
    notes = [
        "gap normalized to the SFQ fairness bound l̂_A/w_A + l̂_B/w_B",
        "paper shape: SFQ stays within its bound; the constant-rate virtual "
        "clocks (WFQ/FQS) drift under fluctuation",
        "SFQ gap %.0f vs WFQ gap %.0f" % (gaps["SFQ"], gaps["WFQ"]),
    ]
    return ExperimentResult(
        "Ablation AB1: fairness under fluctuating CPU bandwidth",
        ["algorithm", "max normalized gap", "gap / SFQ bound"], rows,
        notes=notes)


def main() -> None:
    """Regenerate this experiment at full scale and print it."""
    print(run().render())


if __name__ == "__main__":
    main()
