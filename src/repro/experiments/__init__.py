"""Experiment harnesses — one module per paper figure, plus ablations.

Every module exposes

* ``run(...)`` returning an :class:`~repro.experiments.common.ExperimentResult`
  (parameters default to paper scale; tests pass smaller ones), and
* ``main()`` printing the result, so each experiment can be regenerated
  standalone: ``python -m repro.experiments.figure8``.

The index mapping figure -> module -> bench target is in DESIGN.md §4;
measured-versus-paper outcomes are recorded in EXPERIMENTS.md.
"""

from repro.experiments.common import ExperimentResult, figure6_structure

__all__ = ["ExperimentResult", "figure6_structure"]
