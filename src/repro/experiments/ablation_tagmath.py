"""EXP-AB4 — ablation: exact Fraction tags versus float tags.

SFQ tags are sums of ``length/weight`` terms.  This repository defaults to
exact ``fractions.Fraction`` arithmetic (the fairness theorem then holds
with zero epsilon in tests); a kernel would use fixed/floating point.  This
ablation runs the same three-thread scenario under both modes and reports

* whether the two runs dispatch identically (they should, until float
  rounding flips a tie), and
* the wall-clock cost of each mode's scheduling arithmetic (also measured
  by ``benchmarks/bench_overhead.py``).
"""

from __future__ import annotations

import time

from repro.core.tags import TagMath
from repro.experiments.common import ExperimentResult, FlatSetup
from repro.schedulers.sfq_leaf import SfqScheduler
from repro.sim.rng import make_rng
from repro.threads.thread import SimThread
from repro.trace.timeline import execution_order
from repro.units import MS, SECOND
from repro.workloads.bursty import BurstyWorkload

CAPACITY = 10_000_000
QUANTUM = 10 * MS


def _run_mode(exact: bool, duration: int, seed: int):
    setup = FlatSetup(SfqScheduler(tag_math=TagMath(exact=exact)),
                      capacity_ips=CAPACITY, default_quantum=QUANTUM)
    threads = []
    for index, weight in enumerate([1, 3, 7]):
        rng = make_rng(seed, "load/%d" % index)
        workload = BurstyWorkload(mean_busy_work=CAPACITY // 20,
                                  mean_idle_time=50 * MS, rng=rng)
        thread = SimThread("w%d" % weight, workload, weight=weight)
        setup.spawn(thread)
        threads.append(thread)
    start = time.perf_counter()
    setup.machine.run_until(duration)
    elapsed = time.perf_counter() - start
    order = execution_order(setup.recorder, threads)
    work = {t.name: t.stats.work_done for t in threads}
    return order, work, elapsed


def run(duration: int = 10 * SECOND, seed: int = 9) -> ExperimentResult:
    """Compare exact vs float tag arithmetic on one scenario."""
    exact_order, exact_work, exact_time = _run_mode(True, duration, seed)
    float_order, float_work, float_time = _run_mode(False, duration, seed)

    same_order = exact_order == float_order
    rows = [
        ["dispatch sequences identical", same_order, ""],
        ["scheduled slices", len(exact_order), len(float_order)],
        ["wall-clock s", exact_time, float_time],
    ]
    for name in exact_work:
        rows.append(["work %s" % name, exact_work[name], float_work[name]])
    notes = [
        "float mode cost ratio %.2fx vs exact"
        % (float_time / exact_time if exact_time else 1.0),
        "divergent dispatches would indicate float rounding flipped a "
        "tag comparison",
    ]
    return ExperimentResult(
        "Ablation AB4: exact (Fraction) vs float tag arithmetic",
        ["metric", "exact", "float"], rows, notes=notes)


def main() -> None:
    """Regenerate this experiment at full scale and print it."""
    print(run().render())


if __name__ == "__main__":
    main()
