"""EXT-SMP — extension: SFQ on a multiprocessor (beyond the paper).

The paper is uniprocessor; its direct follow-on literature (Surplus Fair
Scheduling, Chandra et al. 2000) begins from how start-time fair queuing
behaves on SMPs.  This extension experiment reproduces both halves of
that observation on our 2-CPU machine:

* **feasible weights** — three equal-weight threads on two CPUs: each
  receives 2/3 of a CPU, exactly the weighted share of total capacity;
* **infeasible weight** — weights 10:1:1 on two CPUs: thread A's nominal
  share (10/12 of 2 CPUs = 1.67 CPUs) exceeds what one sequential thread
  can consume.  A saturates at 1.0 CPU while B and C split the second
  CPU — so B and C receive 5x their nominal share and A runs at 60% of
  its own: the weight semantics silently break, which is what Surplus
  Fair Scheduling was invented to fix.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.hierarchy import HierarchicalScheduler
from repro.core.structure import SchedulingStructure
from repro.experiments.common import ExperimentResult
from repro.schedulers.sfq_leaf import SfqScheduler
from repro.sim.engine import Simulator
from repro.smp.machine import SmpMachine
from repro.threads.thread import SimThread
from repro.trace.recorder import Recorder
from repro.units import MS, SECOND
from repro.workloads.dhrystone import DhrystoneWorkload

CAPACITY = 10_000_000  # per CPU
QUANTUM = 10 * MS


def _run(weights: List[int], duration: int, num_cpus: int = 2
         ) -> Dict[str, float]:
    structure = SchedulingStructure()
    leaf = structure.mknod("/apps", 1, scheduler=SfqScheduler())
    engine = Simulator()
    machine = SmpMachine(engine, HierarchicalScheduler(structure),
                         num_cpus=num_cpus, capacity_ips=CAPACITY,
                         default_quantum=QUANTUM, tracer=Recorder())
    threads = []
    for index, weight in enumerate(weights):
        thread = SimThread("t%d" % index,
                           DhrystoneWorkload(loop_cost=100, batch=1000),
                           weight=weight)
        leaf.attach_thread(thread)
        machine.spawn(thread)
        threads.append(thread)
    machine.run_until(duration)
    cpu_seconds = duration / SECOND
    return {
        thread.name: thread.stats.work_done / (CAPACITY * cpu_seconds)
        for thread in threads
    }


def run(duration: int = 10 * SECOND) -> ExperimentResult:
    """Per-thread CPU consumption (in CPUs) for both weight regimes."""
    feasible = _run([1, 1, 1], duration)
    infeasible = _run([10, 1, 1], duration)
    rows = []
    for name, share in feasible.items():
        rows.append(["feasible 1:1:1", name, "%.3f" % (1 * 2 / 3),
                     share])
    nominal = {"t0": 10 * 2 / 12, "t1": 1 * 2 / 12, "t2": 1 * 2 / 12}
    for name, share in infeasible.items():
        rows.append(["infeasible 10:1:1", name, "%.3f" % nominal[name],
                     share])
    notes = [
        "consumption in CPUs on a 2-CPU machine (2.0 = whole machine)",
        "feasible weights: every thread gets its weighted share of total "
        "capacity",
        "infeasible weight: t0 cannot exceed 1.0 CPU; t1/t2 receive far "
        "more than their nominal share — the SMP-SFQ anomaly that "
        "motivated Surplus Fair Scheduling",
    ]
    return ExperimentResult(
        "Extension: SFQ on 2 CPUs — feasible vs infeasible weights",
        ["regime", "thread", "nominal CPUs", "measured CPUs"],
        rows, notes=notes)


def main() -> None:
    """Regenerate this experiment at full scale and print it."""
    print(run().render())


if __name__ == "__main__":
    main()
