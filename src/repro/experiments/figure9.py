"""EXP-F9 — Figure 9: hard real-time threads inside the hierarchy.

Two periodic threads run under a rate-monotonic leaf (the paper put them
in the RT class of the SVR4 node): thread1 computes 10 ms every 60 ms,
thread2 computes 150 ms every 960 ms.  An MPEG decoder runs in SFQ-1; the
RT and SFQ-1 nodes have equal weights.  All quanta are 25 ms.

Reported per round for thread1 (as in the paper):

* **scheduling latency** — how long after its release the thread first got
  the CPU; bounded by one scheduling quantum (Figure 9(a));
* **slack** — deadline minus completion; always positive means no deadline
  was missed (Figure 9(b)).
"""

from __future__ import annotations

from repro.experiments.common import (
    DEFAULT_CAPACITY_IPS,
    ExperimentResult,
    HierarchicalSetup,
)
from repro.core.structure import SchedulingStructure
from repro.schedulers.rma import RmaScheduler
from repro.schedulers.sfq_leaf import SfqScheduler
from repro.threads.thread import SimThread
from repro.trace.metrics import latency_slack
from repro.units import MS, SECOND
from repro.workloads.mpeg import MpegDecodeWorkload, MpegVbrModel
from repro.workloads.periodic import PeriodicWorkload


def run(duration: int = 20 * SECOND, quantum: int = 25 * MS,
        capacity_ips: int = DEFAULT_CAPACITY_IPS) -> ExperimentResult:
    """Run the Figure 9 scenario and report thread1's latency and slack."""
    structure = SchedulingStructure()
    rt_leaf = structure.mknod("/SVR4-RT", 1,
                              scheduler=RmaScheduler(quantum=quantum))
    sfq_leaf = structure.mknod("/SFQ-1", 1, scheduler=SfqScheduler())
    setup = HierarchicalSetup(structure, capacity_ips=capacity_ips,
                              default_quantum=quantum)

    def work_of(ms: float) -> int:
        return round(capacity_ips * ms / 1000.0)

    wl1 = PeriodicWorkload(period=60 * MS, cost=work_of(10))
    wl2 = PeriodicWorkload(period=960 * MS, cost=work_of(150))
    thread1 = SimThread("thread1", wl1, params={"period": 60 * MS})
    thread2 = SimThread("thread2", wl2, params={"period": 960 * MS})
    # The Berkeley player of the paper displays frames, so its decoding is
    # paced by the display clock rather than flat out (see DESIGN.md).
    decoder = SimThread("mpeg",
                        MpegDecodeWorkload(MpegVbrModel(seed=5, mean_cost=500_000),
                                           paced=True))
    setup.spawn(thread1, rt_leaf)
    setup.spawn(thread2, rt_leaf)
    setup.spawn(decoder, sfq_leaf)
    setup.machine.run_until(duration)

    results = latency_slack(setup.recorder, thread1, wl1)
    rows = [
        [index, latency / MS, slack / MS]
        for index, latency, slack in results
    ]
    latencies = [latency for __, latency, __ in results]
    slacks = [slack for __, __, slack in results]
    notes = [
        "rounds measured: %d" % len(results),
        "max scheduling latency %.2f ms (quantum is %.0f ms)"
        % (max(latencies) / MS, quantum / MS),
        "min slack %.2f ms (all positive => no deadline missed)"
        % (min(slacks) / MS),
        "MPEG decoder decoded %d frames meanwhile (isolation holds)"
        % decoder.stats.markers.get("frames", 0),
    ]
    return ExperimentResult(
        "Figure 9: scheduling latency and slack of thread1 (10 ms / 60 ms)",
        ["round", "latency ms", "slack ms"], rows, notes=notes,
        series={"latency_ms": [l / MS for l in latencies],
                "slack_ms": [s / MS for s in slacks]})


def main() -> None:
    """Regenerate this experiment at full scale and print it."""
    result = run()
    # The per-round table is long; print the summary and a sparkline.
    from repro.viz.ascii_chart import sparkline
    print(result.name)
    for note in result.notes:
        print("note:", note)
    print("latency:", sparkline(result.series["latency_ms"]))
    print("slack:  ", sparkline(result.series["slack_ms"]))


if __name__ == "__main__":
    main()
