"""EXP-F6 — Figure 6: the scheduling structure used for the experiments.

Figure 6 in the paper is a diagram, not a measurement: the tree with
nodes SFQ-1, SFQ-2, and SVR4 under the root that Figures 7-9 run on.
This module builds that structure (via the same builder every other
experiment uses) and renders it, so the reproduction has a one-command
counterpart for every numbered figure.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, figure6_structure
from repro.viz.tree import render_structure


def run(sfq1_weight: int = 2, sfq2_weight: int = 6,
        svr4_weight: int = 1) -> ExperimentResult:
    """Build and describe the Figure 6 structure."""
    structure, sfq1, sfq2, svr4 = figure6_structure(
        sfq1_weight, sfq2_weight, svr4_weight)
    rows = []
    for node in structure.iter_nodes():
        if node.parent is None:
            continue
        kind = ("leaf:%s" % node.scheduler.algorithm
                if node.is_leaf else "internal")
        rows.append([node.path, node.weight, kind])
    notes = [
        "rendered tree:",
    ] + render_structure(structure).splitlines()
    return ExperimentResult(
        "Figure 6: scheduling structure used for the experiments",
        ["node", "weight", "kind"], rows, notes=notes)


def main() -> None:
    """Regenerate this experiment at full scale and print it."""
    result = run()
    print(result.render())


if __name__ == "__main__":
    main()
