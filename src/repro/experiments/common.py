"""Shared scaffolding for the experiment harnesses."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.hierarchy import HierarchicalScheduler
from repro.core.node import LeafNode
from repro.core.structure import SchedulingStructure
from repro.core.tags import TagMath
from repro.cpu.costs import SchedulingCostModel
from repro.cpu.flat import FlatScheduler
from repro.cpu.machine import Machine
from repro.schedulers.base import LeafScheduler
from repro.schedulers.sfq_leaf import SfqScheduler
from repro.schedulers.svr4 import Svr4TimeSharing
from repro.sim.engine import Simulator
from repro.threads.thread import SimThread
from repro.trace.recorder import Recorder
from repro.viz.table import format_table
from repro.workloads.dhrystone import DhrystoneWorkload

#: a SPARCstation 10-class CPU: ~100 MIPS
DEFAULT_CAPACITY_IPS = 100_000_000


class ExperimentResult:
    """Tabular outcome of one experiment run."""

    def __init__(self, name: str, headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 notes: Optional[List[str]] = None,
                 series: Optional[Dict[str, Sequence[float]]] = None) -> None:
        self.name = name
        self.headers = list(headers)
        self.rows = [list(row) for row in rows]
        self.notes = notes or []
        self.series = series or {}

    def render(self) -> str:
        """The table plus notes as printable text."""
        parts = [format_table(self.headers, self.rows, title=self.name)]
        for note in self.notes:
            parts.append("note: %s" % note)
        return "\n".join(parts)

    def column(self, header: str) -> List[object]:
        """All values of the named column."""
        index = self.headers.index(header)
        return [row[index] for row in self.rows]


class HierarchicalSetup:
    """A machine driving a scheduling structure, with a recorder attached."""

    def __init__(self, structure: SchedulingStructure,
                 capacity_ips: int = DEFAULT_CAPACITY_IPS,
                 default_quantum: Optional[int] = None,
                 cost_model: Optional[SchedulingCostModel] = None,
                 preempt_policy: str = "none") -> None:
        from repro.units import MS
        self.structure = structure
        self.engine = Simulator()
        self.recorder = Recorder()
        self.scheduler = HierarchicalScheduler(structure, preempt_policy)
        self.machine = Machine(
            self.engine, self.scheduler, capacity_ips=capacity_ips,
            default_quantum=default_quantum or 20 * MS,
            cost_model=cost_model, tracer=self.recorder)

    def spawn(self, thread: SimThread, leaf: LeafNode,
              at: Optional[int] = None) -> SimThread:
        """Attach ``thread`` to ``leaf`` and start it on the machine."""
        leaf.attach_thread(thread)
        return self.machine.spawn(thread, at=at)


class FlatSetup:
    """A machine driving one leaf scheduler directly (unmodified kernel)."""

    def __init__(self, leaf_scheduler: LeafScheduler,
                 capacity_ips: int = DEFAULT_CAPACITY_IPS,
                 default_quantum: Optional[int] = None,
                 cost_model: Optional[SchedulingCostModel] = None) -> None:
        from repro.units import MS
        self.engine = Simulator()
        self.recorder = Recorder()
        self.leaf_scheduler = leaf_scheduler
        self.scheduler = FlatScheduler(leaf_scheduler)
        self.machine = Machine(
            self.engine, self.scheduler, capacity_ips=capacity_ips,
            default_quantum=default_quantum or 20 * MS,
            cost_model=cost_model, tracer=self.recorder)

    def spawn(self, thread: SimThread, at: Optional[int] = None) -> SimThread:
        """Start ``thread`` on the flat machine."""
        return self.machine.spawn(thread, at=at)


def figure6_structure(sfq1_weight: int = 2, sfq2_weight: int = 6,
                      svr4_weight: int = 1, interposed_depth: int = 0,
                      tag_math: Optional[TagMath] = None
                      ) -> Tuple[SchedulingStructure, LeafNode, LeafNode, LeafNode]:
    """The paper's Figure 6 scheduling structure.

    Root children SFQ-1, SFQ-2 (SFQ leaves) and SVR4 (time-sharing leaf).
    ``interposed_depth`` inserts a chain of pass-through internal nodes
    between the root and SFQ-1 (the Figure 7(b) depth experiment).
    Returns ``(structure, sfq1, sfq2, svr4)``.
    """
    structure = SchedulingStructure(tag_math)
    parent = structure.root
    for level in range(interposed_depth):
        parent = structure.mknod("level%d" % level, sfq1_weight
                                 if level == 0 else 1, parent=parent)
    if interposed_depth:
        sfq1 = structure.mknod("SFQ-1", 1, parent=parent,
                               scheduler=SfqScheduler())
    else:
        sfq1 = structure.mknod("SFQ-1", sfq1_weight, parent=parent,
                               scheduler=SfqScheduler())
    sfq2 = structure.mknod("/SFQ-2", sfq2_weight, scheduler=SfqScheduler())
    svr4 = structure.mknod("/SVR4", svr4_weight, scheduler=Svr4TimeSharing())
    return structure, sfq1, sfq2, svr4


def spawn_dhrystones(setup, leaf: Optional[LeafNode], count: int,
                     prefix: str = "dhry", weight: int = 1,
                     loop_cost: int = 300, batch: int = 10_000
                     ) -> List[SimThread]:
    """Spawn ``count`` Dhrystone threads on a hierarchical or flat setup."""
    threads = []
    for index in range(count):
        thread = SimThread("%s-%d" % (prefix, index),
                           DhrystoneWorkload(loop_cost, batch), weight=weight)
        if leaf is not None:
            setup.spawn(thread, leaf)
        else:
            setup.spawn(thread)
        threads.append(thread)
    return threads
