"""EXP-AB5 — ablation: fairness timescales of lottery, stride, and SFQ.

The paper's §6 notes that lottery scheduling "achieved fairness only over
large time-intervals" while its deterministic successor (stride) behaves
like WFQ.  Two always-backlogged threads with weights 1:2 run under each
algorithm; for a sweep of window sizes we measure the mean relative error
of the per-window throughput ratio against the ideal 2.0.

Expected shape: lottery's error shrinks like 1/sqrt(window) and dominates
at small windows; stride and SFQ are near-exact at every window.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.stats import mean
from repro.experiments.common import ExperimentResult, FlatSetup
from repro.schedulers.lottery import LotteryScheduler
from repro.schedulers.sfq_leaf import SfqScheduler
from repro.schedulers.stride import StrideScheduler
from repro.sim.rng import make_rng
from repro.threads.thread import SimThread
from repro.trace.metrics import throughput_series
from repro.units import MS, SECOND
from repro.workloads.dhrystone import DhrystoneWorkload

CAPACITY = 10_000_000
QUANTUM = 10 * MS


def _ratio_errors(recorder, thread_a, thread_b, window: int,
                  duration: int) -> List[float]:
    sa = throughput_series(recorder, thread_a, window, duration)
    sb = throughput_series(recorder, thread_b, window, duration)
    errors = []
    for wa, wb in zip(sa, sb):
        if wa > 0:
            errors.append(abs(wb / wa - 2.0) / 2.0)
        else:
            errors.append(1.0)
    return errors


def run(duration: int = 30 * SECOND, seed: int = 17) -> ExperimentResult:
    """Window-size sweep of proportional-share error for each algorithm."""
    windows = [100 * MS, 500 * MS, SECOND, 5 * SECOND]
    algorithms = {
        "lottery": lambda: LotteryScheduler(rng=make_rng(seed, "lottery")),
        "stride": StrideScheduler,
        "SFQ": SfqScheduler,
    }
    results: Dict[str, List[float]] = {}
    for name, factory in algorithms.items():
        setup = FlatSetup(factory(), capacity_ips=CAPACITY,
                          default_quantum=QUANTUM)
        thread_a = SimThread("A", DhrystoneWorkload(), weight=1)
        thread_b = SimThread("B", DhrystoneWorkload(), weight=2)
        setup.spawn(thread_a)
        setup.spawn(thread_b)
        setup.machine.run_until(duration)
        results[name] = [
            mean(_ratio_errors(setup.recorder, thread_a, thread_b, window,
                               duration))
            for window in windows
        ]
    rows = []
    for index, window in enumerate(windows):
        rows.append(["%.1f s" % (window / SECOND),
                     results["lottery"][index],
                     results["stride"][index],
                     results["SFQ"][index]])
    notes = [
        "mean relative error of the per-window throughput ratio vs ideal 2.0",
        "paper shape: lottery is fair only over long windows; stride and "
        "SFQ are deterministic and near-exact",
    ]
    return ExperimentResult(
        "Ablation AB5: fairness timescale of lottery vs stride vs SFQ",
        ["window", "lottery err", "stride err", "SFQ err"], rows,
        notes=notes)


def main() -> None:
    """Regenerate this experiment at full scale and print it."""
    print(run().render())


if __name__ == "__main__":
    main()
