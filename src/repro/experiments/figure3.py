"""EXP-F3 — Figure 3 and the §3 worked example: SFQ tag evolution.

Two threads A (weight 1) and B (weight 2) with 10 ms quanta; B blocks at
t=60 ms, A blocks at t=90 ms, A returns at 110 ms, B at 115 ms.  The paper
walks through the virtual time, start tags, and finish tags; this harness
replays the scenario on the real machine + SFQ queue and reports the tag
state at each charge — the golden unit test asserts the exact values.
"""

from __future__ import annotations

from typing import List

from repro.core.hierarchy import HierarchicalScheduler
from repro.core.structure import SchedulingStructure
from repro.cpu.machine import Machine
from repro.experiments.common import ExperimentResult
from repro.schedulers.sfq_leaf import SfqScheduler
from repro.sim.engine import Simulator
from repro.threads.segments import Compute, SegmentListWorkload, SleepUntil
from repro.threads.thread import SimThread
from repro.trace.recorder import Recorder
from repro.trace.timeline import merge_timeline
from repro.units import MS


class _TagLoggingSfq(SfqScheduler):
    """An SFQ leaf that snapshots tags after every charge."""

    def __init__(self) -> None:
        super().__init__()
        self.log: List[List[object]] = []
        self._threads: List[SimThread] = []

    def add_thread(self, thread: SimThread) -> None:
        super().add_thread(thread)
        self._threads.append(thread)

    def charge(self, thread: SimThread, work: int, now: int) -> None:
        super().charge(thread, work, now)
        row = [now // MS, thread.name, float(self.queue.virtual_time)]
        for t in self._threads:
            if t in self.queue:
                row.append(float(self.queue.start_tag(t)))
                row.append(float(self.queue.finish_tag(t)))
            else:  # exited threads keep their last logged tags
                row.append("-")
                row.append("-")
        self.log.append(row)


def run() -> ExperimentResult:
    """Replay the worked example; one row per completed quantum."""
    # Capacity chosen so a 10 ms quantum is exactly 10 work units, making
    # the tags match the paper's numbers literally.
    capacity = 1000
    structure = SchedulingStructure()
    leaf_scheduler = _TagLoggingSfq()
    leaf = structure.mknod("/example", 1, scheduler=leaf_scheduler)
    engine = Simulator()
    recorder = Recorder()
    machine = Machine(engine, HierarchicalScheduler(structure),
                      capacity_ips=capacity, default_quantum=10 * MS,
                      tracer=recorder)
    # A: 50 units (blocks at 90 ms), returns at 110 ms for 30 more.
    # B: 40 units (blocks at 60 ms), returns at 115 ms for 40 more.
    thread_a = SimThread("A", SegmentListWorkload(
        [Compute(50), SleepUntil(110 * MS), Compute(30)]), weight=1)
    thread_b = SimThread("B", SegmentListWorkload(
        [Compute(40), SleepUntil(115 * MS), Compute(40)]), weight=2)
    leaf.attach_thread(thread_a)
    leaf.attach_thread(thread_b)
    machine.spawn(thread_a)
    machine.spawn(thread_b)
    machine.run_until(400 * MS)

    timeline = [
        (t0 // MS, t1 // MS, thread.name)
        for t0, t1, thread in merge_timeline(recorder, [thread_a, thread_b])
    ]
    notes = [
        "execution order (ms): %s" % (timeline,),
        "A ran %d units, B ran %d units"
        % (thread_a.stats.work_done, thread_b.stats.work_done),
    ]
    return ExperimentResult(
        "Figure 3: SFQ virtual time / start tag / finish tag evolution",
        ["t ms", "ran", "v", "S_A", "F_A", "S_B", "F_B"],
        leaf_scheduler.log, notes=notes)


def main() -> None:
    """Regenerate this experiment at full scale and print it."""
    print(run().render())


if __name__ == "__main__":
    main()
