"""EXP-AB8 — ablation: SFQ vs capacity reserves as a VBR leaf scheduler.

Carries out the comparison the paper names as its "current research"
(§6): SFQ against a reservation-based multimedia scheduler (processor
capacity reserves [13]) for threads whose computation requirements are
*not* precisely known — VBR video.

Two identical VBR decoders plus a best-effort hog share one machine.
Under SFQ the decoders get weights; under reserves they get a per-period
budget sized to the *mean* frame cost (the natural choice when the true
requirement is unknown — sizing to the worst case would waste most of the
reservation).  Because VBR demand fluctuates at two timescales, a
mean-sized reserve is regularly exhausted mid-scene and the decoder drops
to background behind the hog; SFQ simply keeps allocating its share.

Measured: per-second decoded-frame counts — their mean and CoV — for each
policy.  Shape: similar means (same machine), but reserves jitter much
more (the §6 criticism made quantitative).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.analysis.stats import coefficient_of_variation, mean
from repro.experiments.common import ExperimentResult, FlatSetup
from repro.schedulers.reserves import ReservesScheduler
from repro.schedulers.sfq_leaf import SfqScheduler
from repro.threads.thread import SimThread
from repro.units import MS, SECOND
from repro.workloads.dhrystone import DhrystoneWorkload
from repro.workloads.mpeg import MpegDecodeWorkload, MpegVbrModel

CAPACITY = 100_000_000
QUANTUM = 10 * MS
FRAME_PERIOD = SECOND // 30
MEAN_COST = 1_200_000  # mean decode cost: 12 ms of CPU per 33 ms frame


def _decoder_params(policy: str) -> dict:
    if policy == "reserves":
        # reserve sized to the mean demand (the paper's point: the true
        # per-frame requirement is unknowable in advance)
        return {"period": FRAME_PERIOD,
                "reserve": round(FRAME_PERIOD * 0.4)}
    return {}


def _run(policy: str, duration: int, seed: int) -> Tuple[List[int], List[int]]:
    if policy == "reserves":
        scheduler = ReservesScheduler(CAPACITY,
                                      background_quantum=QUANTUM)
    else:
        scheduler = SfqScheduler()
    setup = FlatSetup(scheduler, capacity_ips=CAPACITY,
                      default_quantum=QUANTUM)
    decoders = []
    for index in range(2):
        model = MpegVbrModel(seed=seed + index, mean_cost=MEAN_COST)
        thread = SimThread("dec-%d" % index,
                           MpegDecodeWorkload(model, paced=True),
                           weight=4, params=_decoder_params(policy))
        setup.spawn(thread)
        decoders.append(thread)
    hog = SimThread("hog", DhrystoneWorkload(), weight=1,
                    params={})
    setup.spawn(hog)
    setup.machine.run_until(duration)
    counts = []
    for thread in decoders:
        trace = setup.recorder.trace_of(thread)
        seconds = duration // SECOND
        series = []
        for t in range(seconds):
            lo, hi = t * SECOND, (t + 1) * SECOND
            series.append(sum(1 for c in trace.segment_completions
                              if lo < c <= hi))
        counts.append(series)
    return counts[0], counts[1]


def run(duration: int = 30 * SECOND, seed: int = 31) -> ExperimentResult:
    """Frame-rate stability of VBR decoders: SFQ weights vs mean reserves."""
    rows = []
    covs = {}
    for policy in ("SFQ", "reserves"):
        series_a, series_b = _run(policy, duration, seed)
        combined = series_a + series_b
        covs[policy] = coefficient_of_variation(combined)
        rows.append([policy, mean(series_a), mean(series_b),
                     min(combined), covs[policy]])
    notes = [
        "per-second decoded frames of two VBR decoders (display rate 30)",
        "reserves sized to mean demand (true requirement unknown for VBR)",
        "frame-rate CoV: SFQ %.3f vs reserves %.3f — the cost of needing "
        "a precise characterization (§6)" % (covs["SFQ"], covs["reserves"]),
    ]
    return ExperimentResult(
        "Ablation AB8: SFQ vs capacity reserves for VBR video",
        ["leaf policy", "dec-0 mean fps", "dec-1 mean fps", "worst second",
         "fps CoV"],
        rows, notes=notes)


def main() -> None:
    """Regenerate this experiment at full scale and print it."""
    print(run().render())


if __name__ == "__main__":
    main()
