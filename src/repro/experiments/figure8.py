"""EXP-F8 — Figure 8: hierarchical partitioning and isolation.

(a) Figure 6 structure with weights SFQ-1 : SFQ-2 : SVR4 = 2 : 6 : 1, two
    Dhrystone threads in each SFQ node, and a fluctuating population of
    bursty background threads in the SVR4 node (standing in for "all the
    other threads in the system").  The paper shows the aggregate
    throughputs of SFQ-1 and SFQ-2 in the ratio 1:3 per interval, despite
    the fluctuation in what the SVR4 node leaves available.

(b) SFQ-1 (two Dhrystone threads, SFQ leaf) and SVR4 (one Dhrystone
    thread, time-sharing leaf) with equal weights: both nodes progress and
    receive the *same* node throughput — heterogeneous leaf schedulers are
    isolated from each other.
"""

from __future__ import annotations

from repro.analysis.stats import mean
from repro.experiments.common import (
    DEFAULT_CAPACITY_IPS,
    ExperimentResult,
    HierarchicalSetup,
    figure6_structure,
    spawn_dhrystones,
)
from repro.sim.rng import make_rng
from repro.threads.thread import SimThread
from repro.trace.metrics import node_work
from repro.units import MS, SECOND
from repro.workloads.bursty import BurstyWorkload


def run_partitioning(duration: int = 20 * SECOND, window: int = SECOND,
                     seed: int = 3) -> ExperimentResult:
    """Figure 8(a): 1:3 aggregate split under fluctuating background load."""
    structure, sfq1, sfq2, svr4 = figure6_structure(
        sfq1_weight=2, sfq2_weight=6, svr4_weight=1)
    setup = HierarchicalSetup(structure, capacity_ips=DEFAULT_CAPACITY_IPS,
                              default_quantum=20 * MS)
    group1 = spawn_dhrystones(setup, sfq1, 2, prefix="sfq1")
    group2 = spawn_dhrystones(setup, sfq2, 2, prefix="sfq2")
    # Fluctuating "rest of the system" in the SVR4 node.
    for index in range(4):
        rng = make_rng(seed, "bg/%d" % index)
        background = SimThread(
            "bg-%d" % index,
            BurstyWorkload(mean_busy_work=20_000_000,
                           mean_idle_time=400 * MS, rng=rng))
        setup.spawn(background, svr4)
    setup.machine.run_until(duration)

    rows = []
    ratios = []
    t = 0
    while t + window <= duration:
        w1 = node_work(setup.recorder, group1, t, t + window)
        w2 = node_work(setup.recorder, group2, t, t + window)
        ratio = w2 / w1 if w1 else float("inf")
        ratios.append(ratio)
        rows.append([t // SECOND, w1, w2, ratio])
        t += window
    notes = [
        "mean SFQ-2/SFQ-1 ratio %.3f (weights say 3.0)" % mean(ratios),
        "background (SVR4 node) load fluctuates; the 1:3 split should hold "
        "per window anyway",
    ]
    return ExperimentResult(
        "Figure 8(a): aggregate throughput of SFQ-1 and SFQ-2 (weights 2:6)",
        ["t s", "SFQ-1 work", "SFQ-2 work", "ratio"], rows, notes=notes,
        series={"ratio": ratios})


def run_isolation(duration: int = 20 * SECOND,
                  window: int = SECOND) -> ExperimentResult:
    """Figure 8(b): equal-weight SFQ and SVR4 nodes get equal throughput."""
    structure, sfq1, __, svr4 = figure6_structure(
        sfq1_weight=1, sfq2_weight=1, svr4_weight=1)
    setup = HierarchicalSetup(structure, capacity_ips=DEFAULT_CAPACITY_IPS,
                              default_quantum=20 * MS)
    sfq_threads = spawn_dhrystones(setup, sfq1, 2, prefix="sfq1")
    svr4_threads = spawn_dhrystones(setup, svr4, 1, prefix="svr4")
    setup.machine.run_until(duration)

    rows = []
    ratios = []
    t = 0
    while t + window <= duration:
        w_sfq = node_work(setup.recorder, sfq_threads, t, t + window)
        w_svr = node_work(setup.recorder, svr4_threads, t, t + window)
        ratio = w_sfq / w_svr if w_svr else float("inf")
        ratios.append(ratio)
        rows.append([t // SECOND, w_sfq, w_svr, ratio])
        t += window
    notes = [
        "mean SFQ-1/SVR4 node ratio %.3f (equal weights say 1.0)"
        % mean(ratios),
        "note SFQ-2 is idle, so its share is redistributed 1:1 — residual "
        "bandwidth is shared fairly (paper requirement 1)",
    ]
    return ExperimentResult(
        "Figure 8(b): equal-weight nodes with heterogeneous leaf schedulers",
        ["t s", "SFQ-1 node work", "SVR4 node work", "ratio"], rows,
        notes=notes, series={"ratio": ratios})


def main() -> None:
    """Regenerate this experiment at full scale and print it."""
    print(run_partitioning().render())
    print()
    print(run_isolation().render())


if __name__ == "__main__":
    main()
