"""EXP-F10 — Figure 10: SFQ as a leaf scheduler for MPEG decoders.

Two threads running the MPEG player are assigned to node SFQ-1 with
weights 5 and 10.  The paper plots frames decoded against time and finds
the weight-10 thread decodes twice as many frames as the other in any
interval.  Frame decode costs are drawn from the same VBR model (different
streams), so the 2x ratio emerges from CPU shares, not workload identity.
"""

from __future__ import annotations

from repro.core.structure import SchedulingStructure
from repro.experiments.common import (
    DEFAULT_CAPACITY_IPS,
    ExperimentResult,
    HierarchicalSetup,
)
from repro.analysis.stats import mean
from repro.schedulers.sfq_leaf import SfqScheduler
from repro.threads.thread import SimThread
from repro.units import MS, SECOND
from repro.workloads.mpeg import MpegDecodeWorkload, MpegVbrModel


def run(duration: int = 20 * SECOND, window: int = 2 * SECOND,
        weights=(5, 10), seed: int = 21) -> ExperimentResult:
    """Frames decoded over time by two decoders with weights 5 and 10."""
    structure = SchedulingStructure()
    leaf = structure.mknod("/SFQ-1", 1, scheduler=SfqScheduler())
    setup = HierarchicalSetup(structure, capacity_ips=DEFAULT_CAPACITY_IPS,
                              default_quantum=20 * MS)
    # Both players decode the same video (as in the paper), so the frame
    # ratio reflects CPU shares, not differing stream complexity.
    model = MpegVbrModel(seed=seed)
    video = model.frame_costs(50_000)
    threads = []
    for weight in weights:
        thread = SimThread("player-%d" % weight,
                           MpegDecodeWorkload(video), weight=weight)
        setup.spawn(thread, leaf)
        threads.append(thread)
    setup.machine.run_until(duration)

    # Frames decoded = segment completions (one segment per frame).
    rows = []
    ratios = []
    t = window
    traces = [setup.recorder.trace_of(thread) for thread in threads]
    while t <= duration:
        counts = [
            sum(1 for c in trace.segment_completions if c <= t)
            for trace in traces
        ]
        ratio = counts[1] / counts[0] if counts[0] else float("inf")
        ratios.append(ratio)
        rows.append([t // SECOND, counts[0], counts[1], ratio])
        t += window
    notes = [
        "mean frames ratio %.3f (weights say %.1f)"
        % (mean(ratios), weights[1] / weights[0]),
        "total frames: %s" % {t.name: t.stats.markers.get("frames", 0)
                              for t in threads},
    ]
    return ExperimentResult(
        "Figure 10: frames decoded over time (weights %d and %d)" % weights,
        ["t s", "frames w=%d" % weights[0], "frames w=%d" % weights[1],
         "ratio"],
        rows, notes=notes, series={"ratio": ratios})


def main() -> None:
    """Regenerate this experiment at full scale and print it."""
    print(run().render())


if __name__ == "__main__":
    main()
