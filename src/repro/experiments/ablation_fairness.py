"""EXP-AB3 — ablation: the SFQ fairness theorem on randomized workloads.

Three threads with distinct weights run randomized bursty workloads on an
interrupt-perturbed CPU under SFQ with exact (Fraction) tags.  For every
pair we compute the exact maximal normalized service gap over all
both-runnable subintervals and compare it to the theorem's bound
``l̂_f/w_f + l̂_m/w_m``.  The measured/bound ratio must stay at or below 1.
"""

from __future__ import annotations

import itertools

from repro.analysis.fairness import max_normalized_service_gap, sfq_fairness_bound
from repro.cpu.interrupts import PoissonInterruptSource
from repro.experiments.common import ExperimentResult, FlatSetup
from repro.schedulers.sfq_leaf import SfqScheduler
from repro.sim.rng import make_rng
from repro.threads.thread import SimThread
from repro.units import MS, SECOND
from repro.workloads.bursty import BurstyWorkload

CAPACITY = 10_000_000
QUANTUM = 10 * MS
QUANTUM_WORK = CAPACITY * QUANTUM // SECOND


def run(duration: int = 20 * SECOND, seed: int = 42) -> ExperimentResult:
    """Measured gap vs theorem bound for every thread pair."""
    setup = FlatSetup(SfqScheduler(), capacity_ips=CAPACITY,
                      default_quantum=QUANTUM)
    weights = [1, 2, 5]
    threads = []
    for index, weight in enumerate(weights):
        rng = make_rng(seed, "bursty/%d" % index)
        workload = BurstyWorkload(mean_busy_work=5 * QUANTUM_WORK,
                                  mean_idle_time=80 * MS, rng=rng)
        thread = SimThread("w%d" % weight, workload, weight=weight)
        setup.spawn(thread)
        threads.append(thread)
    setup.machine.add_interrupt_source(PoissonInterruptSource(
        mean_interarrival=20 * MS, mean_service=2 * MS,
        rng=make_rng(seed, "intr"), exponential_service=True))
    setup.machine.run_until(duration)

    rows = []
    worst = 0.0
    for a, b in itertools.combinations(threads, 2):
        gap = max_normalized_service_gap(setup.recorder, a, b, duration)
        bound = sfq_fairness_bound(QUANTUM_WORK, a.weight,
                                   QUANTUM_WORK, b.weight)
        ratio = gap / bound
        worst = max(worst, ratio)
        rows.append(["%s vs %s" % (a.name, b.name), gap, bound, ratio])
    notes = [
        "worst measured/bound ratio %.3f (theorem requires <= 1)" % worst,
        "exact Fraction tag arithmetic; gaps computed over every "
        "both-runnable subinterval",
    ]
    return ExperimentResult(
        "Ablation AB3: SFQ fairness theorem on randomized workloads",
        ["pair", "measured gap", "theorem bound", "ratio"], rows,
        notes=notes)


def main() -> None:
    """Regenerate this experiment at full scale and print it."""
    print(run().render())


if __name__ == "__main__":
    main()
