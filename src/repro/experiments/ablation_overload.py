"""EXP-AB6 — ablation: QoS under overload (paper §1).

The paper motivates SFQ for VBR video precisely because overbooking leads
to overload, and "EDF and RMA schedulers do not provide any QoS guarantee
when CPU bandwidth is overbooked" while SFQ "guarantees fair allocation of
resources even in presence of overload".

Four periodic video-like tasks with heterogeneous periods demand 130% of
the CPU.  Each runs once under an SFQ leaf (weights proportional to
demand) and once under an EDF leaf.  For each task we measure the
*achieved fraction of its demand*; the shape to reproduce is

* SFQ: every task achieves the same ~1/1.3 = 77% of its demand
  (graceful, proportional degradation — CoV near 0);
* EDF: earliest-deadline tasks monopolize and the others starve
  unpredictably (high CoV across tasks).
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.stats import coefficient_of_variation
from repro.experiments.common import ExperimentResult, FlatSetup
from repro.schedulers.edf import EdfScheduler
from repro.schedulers.sfq_leaf import SfqScheduler
from repro.threads.thread import SimThread
from repro.units import MS, SECOND
from repro.workloads.periodic import PeriodicWorkload

CAPACITY = 10_000_000
QUANTUM = 10 * MS

#: (period ns, utilization): totals 1.30 of the CPU
TASKS = (
    (50 * MS, 0.30),
    (80 * MS, 0.35),
    (120 * MS, 0.30),
    (200 * MS, 0.35),
)


def _spawn_tasks(setup: FlatSetup) -> List[SimThread]:
    threads = []
    for index, (period, utilization) in enumerate(TASKS):
        cost = round(CAPACITY * utilization * period / SECOND)
        workload = PeriodicWorkload(period=period, cost=cost)
        weight = round(utilization * 100)
        thread = SimThread("task-%d" % index, workload, weight=weight,
                           params={"period": period})
        setup.spawn(thread)
        threads.append(thread)
    return threads


def _achieved_fractions(threads: List[SimThread], duration: int
                        ) -> List[float]:
    fractions = []
    for thread, (__, utilization) in zip(threads, TASKS):
        demand = CAPACITY * utilization * duration / SECOND
        fractions.append(thread.stats.work_done / demand)
    return fractions


def run(duration: int = 20 * SECOND) -> ExperimentResult:
    """Achieved demand fraction per task under SFQ vs EDF at 130% load."""
    results: Dict[str, List[float]] = {}
    for name, scheduler in [("SFQ", SfqScheduler()),
                            ("EDF", EdfScheduler(quantum=QUANTUM))]:
        setup = FlatSetup(scheduler, capacity_ips=CAPACITY,
                          default_quantum=QUANTUM)
        threads = _spawn_tasks(setup)
        setup.machine.run_until(duration)
        results[name] = _achieved_fractions(threads, duration)

    rows = []
    for index, (period, utilization) in enumerate(TASKS):
        rows.append(["task-%d" % index, period // MS, utilization,
                     results["SFQ"][index], results["EDF"][index]])
    sfq_cov = coefficient_of_variation(results["SFQ"])
    edf_cov = coefficient_of_variation(results["EDF"])
    rows.append(["CoV across tasks", "", "", sfq_cov, edf_cov])
    notes = [
        "demand totals 130% of the CPU: overload by design",
        "SFQ: every task achieves ~1/1.3 = 0.77 of demand (CoV %.3f)"
        % sfq_cov,
        "EDF: unpredictable split under overload (CoV %.3f)" % edf_cov,
    ]
    return ExperimentResult(
        "Ablation AB6: graceful degradation under 130% overload",
        ["task", "period ms", "demand", "SFQ achieved", "EDF achieved"],
        rows, notes=notes)


def main() -> None:
    """Regenerate this experiment at full scale and print it."""
    print(run().render())


if __name__ == "__main__":
    main()
