"""EXP-AB2 — ablation: measured completion times vs the eq. (8) delay bound.

A low-rate periodic thread shares an SFQ-scheduled CPU with backlogged
competitors while a periodic interrupt source makes the CPU a
Fluctuation-Constrained server with *analytically known* parameters.  Each
job is one SFQ quantum (its cost is below the quantum), so the paper's
delay guarantee applies directly:

    completion(q_j) <= EAT(q_j) + (sum of others' max quanta + delta)/C + l_j/C

We verify the bound for every job and report the worst margin.
"""

from __future__ import annotations

from repro.analysis.bounds import sfq_completion_bounds
from repro.analysis.fc_server import fc_params_for_periodic_interrupts
from repro.cpu.interrupts import PeriodicInterruptSource
from repro.experiments.common import ExperimentResult, FlatSetup
from repro.schedulers.sfq_leaf import SfqScheduler
from repro.threads.thread import SimThread
from repro.units import MS, SECOND
from repro.workloads.dhrystone import DhrystoneWorkload
from repro.workloads.periodic import PeriodicWorkload

CAPACITY = 10_000_000
QUANTUM = 10 * MS
QUANTUM_WORK = CAPACITY * QUANTUM // SECOND


def run(duration: int = 20 * SECOND, period: int = 200 * MS,
        job_cost: int = QUANTUM_WORK // 2,
        competitors: int = 3) -> ExperimentResult:
    """Verify eq. (8) for every completed job of the periodic thread."""
    setup = FlatSetup(SfqScheduler(), capacity_ips=CAPACITY,
                      default_quantum=QUANTUM)
    # Weights as rates: the periodic thread reserves 1/(1+competitors) of
    # the fluctuating capacity — comfortably above its demand.
    workload = PeriodicWorkload(period=period, cost=job_cost)
    rt_thread = SimThread("periodic", workload, weight=1)
    setup.spawn(rt_thread)
    backlogged = []
    for index in range(competitors):
        thread = SimThread("bg-%d" % index,
                           DhrystoneWorkload(batch=QUANTUM_WORK // 300 + 1),
                           weight=1)
        setup.spawn(thread)
        backlogged.append(thread)
    interrupt_period, interrupt_service = 50 * MS, 5 * MS
    setup.machine.add_interrupt_source(
        PeriodicInterruptSource(interrupt_period, interrupt_service))
    setup.machine.run_until(duration)

    fc = fc_params_for_periodic_interrupts(CAPACITY, interrupt_period,
                                           interrupt_service)
    trace = setup.recorder.trace_of(rt_thread)
    completions = trace.segment_completions
    jobs = min(len(completions), len(workload.releases))
    arrivals = workload.releases[:jobs]
    lengths = [job_cost] * jobs
    # The thread's reserved rate: its weight share of the FC rate.
    total_weight = 1 + competitors
    rate = fc.rate_ips / total_weight
    bounds = sfq_completion_bounds(
        arrivals, lengths, rate,
        other_max_quanta=[QUANTUM_WORK] * competitors,
        capacity_ips=fc.rate_ips, burstiness=fc.burstiness)

    rows = []
    worst_margin = float("inf")
    violations = 0
    for index in range(jobs):
        measured = completions[index]
        bound = bounds[index]
        margin = bound - measured
        worst_margin = min(worst_margin, margin)
        if margin < 0:
            violations += 1
        if index < 10 or margin == worst_margin:
            rows.append([index, measured / MS, bound / MS, margin / MS])
    notes = [
        "jobs checked: %d, bound violations: %d" % (jobs, violations),
        "worst margin %.2f ms (positive = bound holds)" % (worst_margin / MS),
        "FC params: rate %.0f inst/s, burstiness %.0f inst"
        % (fc.rate_ips, fc.burstiness),
    ]
    return ExperimentResult(
        "Ablation AB2: measured completions vs SFQ delay bound (eq. 8)",
        ["job", "completed ms", "bound ms", "margin ms"], rows, notes=notes)


def main() -> None:
    """Regenerate this experiment at full scale and print it."""
    print(run().render())


if __name__ == "__main__":
    main()
