"""repro — Hierarchical CPU scheduling with Start-time Fair Queuing.

A from-scratch reproduction of Goyal, Guo & Vin, "A Hierarchical CPU
Scheduler for Multimedia Operating Systems" (OSDI 1996) on a discrete-event
CPU simulator.

Quickstart::

    from repro import (
        HierarchicalScheduler, Machine, SchedulingStructure, SfqScheduler,
        SimThread, Simulator, DhrystoneWorkload, MS, SECOND,
    )

    structure = SchedulingStructure()
    leaf = structure.mknod("/apps", weight=1, scheduler=SfqScheduler())
    engine = Simulator()
    machine = Machine(engine, HierarchicalScheduler(structure))
    thread = SimThread("worker", DhrystoneWorkload(), weight=2)
    leaf.attach_thread(thread)
    machine.spawn(thread)
    machine.run_until(1 * SECOND)
    print(thread.stats.work_done)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every figure.
"""

from repro.core.hierarchy import PREEMPT_LEAF, PREEMPT_NONE, HierarchicalScheduler
from repro.core.node import InternalNode, LeafNode, Node
from repro.core.sfq import SfqQueue
from repro.core.structure import (
    ADMIN_GET_WEIGHT,
    ADMIN_INFO,
    ADMIN_SET_WEIGHT,
    SchedulingStructure,
)
from repro.core.tags import TagMath
from repro.cpu.costs import LinearCostModel, SchedulingCostModel
from repro.cpu.flat import FlatScheduler
from repro.cpu.interrupts import PeriodicInterruptSource, PoissonInterruptSource
from repro.cpu.machine import Machine, MachineStats
from repro.errors import (
    AdmissionError,
    NodeBusyError,
    NodeExistsError,
    NodeNotFoundError,
    NotALeafError,
    ReproError,
    SchedulingError,
    SimulationError,
    StructureError,
    WorkloadError,
)
from repro.schedulers import (
    EdfScheduler,
    EevdfScheduler,
    FifoScheduler,
    FqsScheduler,
    LeafScheduler,
    LotteryScheduler,
    ReservesScheduler,
    RmaScheduler,
    RoundRobinScheduler,
    ScfqScheduler,
    SfqScheduler,
    StrideScheduler,
    Svr4TimeSharing,
    WfqScheduler,
)
from repro.sim.engine import Simulator
from repro.sim.rng import make_rng
from repro.smp.machine import SmpMachine
from repro.sync import (
    Acquire,
    Down,
    Notify,
    PriorityInheritanceMutex,
    Release,
    SimMutex,
    SimSemaphore,
    Up,
    WaitOn,
    WaitQueue,
)
from repro.threads.segments import Compute, Exit, SleepFor, SleepUntil, Workload
from repro.threads.states import ThreadState
from repro.threads.thread import SimThread
from repro.trace.recorder import Recorder
from repro.units import MS, NS, SECOND, US
from repro.workloads import (
    BurstyWorkload,
    DhrystoneWorkload,
    InteractiveWorkload,
    MpegDecodeWorkload,
    MpegVbrModel,
    PeriodicWorkload,
    PhasedWorkload,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "SfqQueue", "TagMath", "SchedulingStructure", "HierarchicalScheduler",
    "Node", "InternalNode", "LeafNode",
    "PREEMPT_NONE", "PREEMPT_LEAF",
    "ADMIN_GET_WEIGHT", "ADMIN_SET_WEIGHT", "ADMIN_INFO",
    # cpu
    "Machine", "MachineStats", "FlatScheduler", "SmpMachine",
    "SchedulingCostModel", "LinearCostModel",
    "PeriodicInterruptSource", "PoissonInterruptSource",
    # sim
    "Simulator", "make_rng",
    # threads
    "SimThread", "ThreadState", "Workload",
    "Compute", "SleepFor", "SleepUntil", "Exit",
    # synchronization
    "SimMutex", "Acquire", "Release", "PriorityInheritanceMutex",
    "SimSemaphore", "Down", "Up", "WaitQueue", "WaitOn", "Notify",
    # schedulers
    "LeafScheduler", "SfqScheduler", "FifoScheduler", "RoundRobinScheduler",
    "Svr4TimeSharing", "EdfScheduler", "EevdfScheduler", "RmaScheduler",
    "LotteryScheduler", "ReservesScheduler",
    "StrideScheduler", "WfqScheduler", "ScfqScheduler", "FqsScheduler",
    # workloads
    "DhrystoneWorkload", "MpegVbrModel", "MpegDecodeWorkload",
    "PeriodicWorkload", "PhasedWorkload", "InteractiveWorkload",
    "BurstyWorkload",
    # tracing
    "Recorder",
    # units
    "NS", "US", "MS", "SECOND",
    # errors
    "ReproError", "SimulationError", "SchedulingError", "StructureError",
    "NodeExistsError", "NodeNotFoundError", "NodeBusyError", "NotALeafError",
    "AdmissionError", "WorkloadError",
]
