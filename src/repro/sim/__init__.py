"""Discrete-event simulation kernel.

This package provides the minimal substrate every other subsystem runs on:
a deterministic event queue (:mod:`repro.sim.events`), a simulation engine
with a nanosecond clock (:mod:`repro.sim.engine`), and seeded randomness
helpers (:mod:`repro.sim.rng`).
"""

from repro.sim.engine import Simulator
from repro.sim.events import EventHandle, EventQueue
from repro.sim.rng import Stream, derive_seed, make_rng

__all__ = ["Simulator", "EventHandle", "EventQueue", "Stream",
           "derive_seed", "make_rng"]
