"""A deterministic, cancellable event queue.

The queue orders events by ``(time, priority, sequence)``.  The sequence
number makes ordering *stable*: two events scheduled for the same instant
with the same priority fire in the order they were scheduled, which keeps
whole simulations reproducible run-to-run.

Cancellation is lazy: :meth:`EventHandle.cancel` marks the handle and the
queue discards cancelled entries when they surface at the head.  This keeps
both :meth:`EventQueue.push` and :meth:`EventQueue.pop` at ``O(log n)``.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError


class EventHandle:
    """A scheduled event; returned by :meth:`EventQueue.push`.

    The callback and its argument are stored on the handle so a cancelled
    event can drop its references immediately (avoiding leaks when many
    events are cancelled long before their deadline).
    """

    __slots__ = ("time", "priority", "seq", "callback", "arg", "_cancelled")

    def __init__(self, time: int, priority: int, seq: int,
                 callback: Callable[..., None], arg: Any) -> None:
        self.time: int = time
        self.priority: int = priority
        self.seq: int = seq
        self.callback: Optional[Callable[..., None]] = callback
        self.arg: Any = arg
        self._cancelled: bool = False

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called."""
        return self._cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        self._cancelled = True
        self.callback = None
        self.arg = None

    def __repr__(self) -> str:
        state = "cancelled" if self._cancelled else "pending"
        return "EventHandle(t=%d, prio=%d, seq=%d, %s)" % (
            self.time, self.priority, self.seq, state)


class EventQueue:
    """A priority queue of :class:`EventHandle` ordered by time.

    ``priority`` breaks ties between events at the same instant: lower
    priority values fire first.  The engine uses this to make, for example,
    interrupt arrivals observable before same-instant quantum expiries.
    Among events with equal ``(time, priority)`` the monotonically
    increasing sequence number decides: strictly first-scheduled,
    first-fired (FIFO).  This is a contract, not an implementation detail —
    callbacks rely on it (e.g. a wakeup deferred during a completion must
    run after same-instant events scheduled earlier), and the golden-trace
    suite would catch any change to it.
    """

    __slots__ = ("_heap", "_seq", "_live")

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, int, EventHandle]] = []
        self._seq: int = 0
        self._live: int = 0

    def __len__(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return self._live

    def push(self, time: int, callback: Callable[..., None], arg: Any = None,
             priority: int = 0) -> EventHandle:
        """Schedule ``callback(arg)`` at ``time``; returns a cancellable handle."""
        if time < 0:
            raise SimulationError("cannot schedule event at negative time %d" % time)
        seq = self._seq
        self._seq = seq + 1
        handle = EventHandle(time, priority, seq, callback, arg)
        heappush(self._heap, (time, priority, seq, handle))
        self._live += 1
        return handle

    def discard(self, handle: Optional[EventHandle]) -> None:
        """Cancel ``handle`` if it is a live event; ``None`` is a no-op."""
        if handle is not None and not handle.cancelled:
            handle.cancel()
            self._live -= 1

    def peek_time(self) -> Optional[int]:
        """Time of the next live event, or ``None`` when the queue is empty."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0][0]

    def pop(self) -> Optional[EventHandle]:
        """Remove and return the next live event, or ``None`` if empty."""
        self._drop_cancelled()
        if not self._heap:
            return None
        __, __, __, handle = heappop(self._heap)
        self._live -= 1
        return handle

    def pop_due(self, time: int) -> Optional[EventHandle]:
        """Pop the next live event with timestamp <= ``time``, else ``None``.

        Equivalent to ``peek_time()`` followed by ``pop()`` but with a
        single heap-maintenance pass — this is the engine's ``run_until``
        hot path.  A too-late head event stays queued.
        """
        heap = self._heap
        while heap:
            head = heap[0]
            handle = head[3]
            if handle._cancelled:
                heappop(heap)
                continue
            if head[0] > time:
                return None
            heappop(heap)
            self._live -= 1
            return handle
        return None

    def _drop_cancelled(self) -> None:
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heappop(heap)
