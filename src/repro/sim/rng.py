"""Seeded randomness helpers.

All stochastic inputs to a simulation (interrupt arrivals, MPEG frame costs,
think times) draw from explicitly seeded :class:`random.Random` instances so
every experiment is reproducible.  ``make_rng`` derives independent streams
from a root seed and a label, so adding a new random component never
perturbs the draws of existing ones.
"""

from __future__ import annotations

import hashlib
import random


def make_rng(seed: int, label: str = "") -> random.Random:
    """Return a ``random.Random`` derived from ``seed`` and ``label``.

    Different labels under the same seed give statistically independent
    streams; the same (seed, label) pair always gives the same stream.
    """
    digest = hashlib.sha256(("%d/%s" % (seed, label)).encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))
