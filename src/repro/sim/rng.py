"""Seeded randomness helpers.

All stochastic inputs to a simulation (interrupt arrivals, MPEG frame costs,
think times) draw from explicitly seeded :class:`random.Random` instances so
every experiment is reproducible.  ``make_rng`` derives independent streams
from a root seed and a label, so adding a new random component never
perturbs the draws of existing ones.

:class:`Stream` layers a *named substream tree* on top of the same
derivation: a stream is a point in the seed tree, ``substream(label)``
descends to a child with its own derived seed, and ``rng(label)`` mints a
generator.  Components that each own a :class:`Stream` can never collide on
RNG state no matter how many generators either side mints, because their
child seeds were separated by one ``derive_seed`` step at the fork point.
``Stream(seed).rng(label)`` is bit-identical to ``make_rng(seed, label)``,
so migrating a caller does not change its draws.
"""

from __future__ import annotations

import hashlib
import random

#: seeds are derived from the first 8 digest bytes: a 64-bit space
_SEED_BYTES = 8


def derive_seed(seed: int, label: str = "") -> int:
    """Derive a child seed from ``seed`` and ``label``.

    The derivation hashes ``"<seed>/<label>"`` with SHA-256, so distinct
    labels under one parent (and equal labels under distinct parents) give
    unrelated children.  Deterministic: same inputs, same child seed.
    """
    digest = hashlib.sha256(("%d/%s" % (seed, label)).encode("utf-8")).digest()
    return int.from_bytes(digest[:_SEED_BYTES], "big")


def make_rng(seed: int, label: str = "") -> random.Random:
    """Return a ``random.Random`` derived from ``seed`` and ``label``.

    Different labels under the same seed give statistically independent
    streams; the same (seed, label) pair always gives the same stream.
    """
    return random.Random(derive_seed(seed, label))


class Stream:
    """A named node in a seed-derivation tree.

    ``rng(label)`` mints an independent generator under this node;
    ``substream(label)`` forks a child node whose generators can never
    collide with the parent's (or a sibling's), because the child's seed
    is itself derived through :func:`derive_seed`.

    ``path`` is carried for diagnostics only — two streams with equal
    seeds draw identically regardless of how they were reached.
    """

    __slots__ = ("seed", "path")

    def __init__(self, seed: int, path: str = "") -> None:
        self.seed = seed
        self.path = path

    def rng(self, label: str = "") -> random.Random:
        """A generator for ``label`` under this stream.

        Equivalent to ``make_rng(self.seed, label)`` — for a root stream
        this reproduces historical ``make_rng`` draws exactly.
        """
        return make_rng(self.seed, label)

    def substream(self, label: str) -> "Stream":
        """Fork a child stream named ``label``.

        The child's seed is ``derive_seed(self.seed, label)``; its
        generators are independent of every generator minted here.
        """
        child_path = "%s/%s" % (self.path, label) if self.path else label
        return Stream(derive_seed(self.seed, label), child_path)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Stream(seed=%d, path=%r)" % (self.seed, self.path)
