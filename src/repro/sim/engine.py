"""The simulation engine: a clock plus an event loop.

The engine is intentionally tiny.  Components (the CPU machine, interrupt
sources, workload timers) schedule callbacks; :meth:`Simulator.run_until`
drains the queue in timestamp order and advances the clock.  Nothing in the
engine knows about scheduling — that separation keeps the substrate reusable
and easy to test in isolation.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.sim.events import EventHandle, EventQueue


class Simulator:
    """A discrete-event simulator with an integer-nanosecond clock."""

    def __init__(self) -> None:
        self._queue: EventQueue = EventQueue()
        self._now: int = 0
        self._running: bool = False

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of live events still scheduled."""
        return len(self._queue)

    def at(self, time: int, callback: Callable[..., None], arg: Any = None,
           priority: int = 0) -> EventHandle:
        """Schedule ``callback(arg)`` at absolute ``time`` (>= now)."""
        if time < self._now:
            raise SimulationError(
                "cannot schedule event in the past: t=%d < now=%d" % (time, self._now))
        return self._queue.push(time, callback, arg, priority)

    def after(self, delay: int, callback: Callable[..., None], arg: Any = None,
              priority: int = 0) -> EventHandle:
        """Schedule ``callback(arg)`` after ``delay`` nanoseconds."""
        if delay < 0:
            raise SimulationError("delay must be non-negative, got %d" % delay)
        return self._queue.push(self._now + delay, callback, arg, priority)

    def cancel(self, handle: Optional[EventHandle]) -> None:
        """Cancel a previously scheduled event; ``None`` is a no-op."""
        self._queue.discard(handle)

    def step(self) -> bool:
        """Fire the next event, advancing the clock.

        Returns False when the queue is empty.
        """
        handle = self._queue.pop()
        if handle is None:
            return False
        if handle.time < self._now:
            raise SimulationError(
                "event queue returned stale event at t=%d (now=%d)"
                % (handle.time, self._now))
        self._now = handle.time
        callback = handle.callback
        arg = handle.arg
        # The handle has fired; release its references.
        handle.cancel()
        if callback is not None:
            if arg is None:
                callback()
            else:
                callback(arg)
        return True

    def run_until(self, time: int) -> None:
        """Run all events with timestamp <= ``time``; clock ends at ``time``.

        Events scheduled *exactly* at ``time`` do fire, so back-to-back
        ``run_until`` calls partition a run without losing events.
        """
        if time < self._now:
            raise SimulationError(
                "cannot run backwards: until=%d < now=%d" % (time, self._now))
        if self._running:
            raise SimulationError("run_until re-entered from a callback")
        self._running = True
        try:
            while True:
                next_time = self._queue.peek_time()
                if next_time is None or next_time > time:
                    break
                self.step()
        finally:
            self._running = False
        self._now = time

    def run_all(self, limit: int = 10_000_000) -> int:
        """Run until the queue drains; returns the number of events fired.

        ``limit`` guards against runaway self-rescheduling loops (infinite
        workloads must be driven with :meth:`run_until` instead).
        """
        fired = 0
        while self.step():
            fired += 1
            if fired > limit:
                raise SimulationError("run_all exceeded %d events" % limit)
        return fired
