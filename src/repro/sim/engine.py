"""The simulation engine: a clock plus an event loop.

The engine is intentionally tiny.  Components (the CPU machine, interrupt
sources, workload timers) schedule callbacks; :meth:`Simulator.run_until`
drains the queue in timestamp order and advances the clock.  Nothing in the
engine knows about scheduling — that separation keeps the substrate reusable
and easy to test in isolation.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.core.engine import OPS as _ENGINE_OPS
from repro.errors import SimulationError
from repro.sim.events import EventHandle, EventQueue

#: compiled drain loop (None on the pure engine).  ``sim_drain`` mirrors
#: run_until's inner loop over the same ``_queue``/``_heap`` state, firing
#: one event at a time in (time, priority, seq) order.
_SIM_DRAIN = getattr(_ENGINE_OPS, "sim_drain", None)


class Simulator:
    """A discrete-event simulator with an integer-nanosecond clock."""

    __slots__ = ("_queue", "now", "_running", "_fired")

    def __init__(self) -> None:
        self._queue: EventQueue = EventQueue()
        #: current simulation time in nanoseconds.  A plain attribute, not a
        #: property: the machines read it on every spawn/dispatch/charge, so
        #: the read must be a single attribute load.  Only the engine
        #: assigns it.
        self.now: int = 0
        self._running: bool = False
        self._fired: int = 0

    @property
    def events_fired(self) -> int:
        """Total events fired over the simulator's lifetime (benchmarking)."""
        return self._fired

    @property
    def pending_events(self) -> int:
        """Number of live events still scheduled."""
        return len(self._queue)

    def at(self, time: int, callback: Callable[..., None], arg: Any = None,
           priority: int = 0) -> EventHandle:
        """Schedule ``callback(arg)`` at absolute ``time`` (>= now)."""
        if time < self.now:
            raise SimulationError(
                "cannot schedule event in the past: t=%d < now=%d" % (time, self.now))
        return self._queue.push(time, callback, arg, priority)

    def after(self, delay: int, callback: Callable[..., None], arg: Any = None,
              priority: int = 0) -> EventHandle:
        """Schedule ``callback(arg)`` after ``delay`` nanoseconds."""
        if delay < 0:
            raise SimulationError("delay must be non-negative, got %d" % delay)
        return self._queue.push(self.now + delay, callback, arg, priority)

    def cancel(self, handle: Optional[EventHandle]) -> None:
        """Cancel a previously scheduled event; ``None`` is a no-op."""
        self._queue.discard(handle)

    def step(self) -> bool:
        """Fire the next event, advancing the clock.

        Returns False when the queue is empty.
        """
        handle = self._queue.pop()
        if handle is None:
            return False
        if handle.time < self.now:
            raise SimulationError(
                "event queue returned stale event at t=%d (now=%d)"
                % (handle.time, self.now))
        self.now = handle.time
        self._fired += 1
        callback = handle.callback
        arg = handle.arg
        # The handle has fired; release its references.
        handle.cancel()
        if callback is not None:
            if arg is None:
                callback()
            else:
                callback(arg)
        return True

    def run_until(self, time: int) -> None:
        """Run all events with timestamp <= ``time``; clock ends at ``time``.

        Events scheduled *exactly* at ``time`` do fire, so back-to-back
        ``run_until`` calls partition a run without losing events.
        """
        if time < self.now:
            raise SimulationError(
                "cannot run backwards: until=%d < now=%d" % (time, self.now))
        if self._running:
            raise SimulationError("run_until re-entered from a callback")
        self._running = True
        # Tight drain loop: pop_due does one heap-maintenance pass per event
        # (peek_time + pop would do two), and the loop fires callbacks
        # inline rather than re-entering step().  Ordering is exactly
        # step()'s — one event at a time, so a callback scheduling a
        # same-instant event still sees it fire in (time, priority, seq)
        # order.
        queue = self._queue
        try:
            if _SIM_DRAIN is not None:
                _SIM_DRAIN(self, time)
            else:
                while True:
                    handle = queue.pop_due(time)
                    if handle is None:
                        break
                    self.now = handle.time
                    self._fired += 1
                    callback = handle.callback
                    arg = handle.arg
                    handle.cancel()
                    if callback is not None:
                        if arg is None:
                            callback()
                        else:
                            callback(arg)
        finally:
            self._running = False
        self.now = time

    def run_all(self, limit: int = 10_000_000) -> int:
        """Run until the queue drains; returns the number of events fired.

        ``limit`` guards against runaway self-rescheduling loops (infinite
        workloads must be driven with :meth:`run_until` instead).
        """
        fired = 0
        while self.step():
            fired += 1
            if fired > limit:
                raise SimulationError("run_all exceeded %d events" % limit)
        return fired
