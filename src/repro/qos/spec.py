"""QoS request specifications.

A request names its service class and carries the parameters that class's
admission control needs:

* **hard real-time** — ``period`` and ``wcet`` (worst-case execution time,
  in ns of CPU at full capacity), checked deterministically;
* **soft real-time** — ``mean_demand`` and ``std_demand`` (instructions per
  second), checked statistically (overbooking is allowed by design);
* **best effort** — never denied, only placed.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import AdmissionError

HARD_RT = "hard-rt"
SOFT_RT = "soft-rt"
BEST_EFFORT = "best-effort"

_CLASSES = (HARD_RT, SOFT_RT, BEST_EFFORT)


class QosRequest:
    """A QoS request submitted to the :class:`~repro.qos.manager.QosManager`."""

    def __init__(self, name: str, service_class: str,
                 period: Optional[int] = None, wcet: Optional[int] = None,
                 mean_demand: Optional[float] = None,
                 std_demand: float = 0.0,
                 user: str = "default") -> None:
        if service_class not in _CLASSES:
            raise AdmissionError(
                "unknown service class %r (expected one of %s)"
                % (service_class, ", ".join(_CLASSES)))
        if service_class == HARD_RT:
            if not period or not wcet or period <= 0 or wcet <= 0:
                raise AdmissionError(
                    "hard real-time request %r needs positive period and wcet"
                    % (name,))
            if wcet > period:
                raise AdmissionError(
                    "request %r is infeasible: wcet %d > period %d"
                    % (name, wcet, period))
        if service_class == SOFT_RT:
            if mean_demand is None or mean_demand <= 0:
                raise AdmissionError(
                    "soft real-time request %r needs positive mean_demand"
                    % (name,))
            if std_demand < 0:
                raise AdmissionError("std_demand must be non-negative")
        self.name = name
        self.service_class = service_class
        self.period = period
        self.wcet = wcet
        self.mean_demand = mean_demand
        self.std_demand = std_demand
        self.user = user

    @property
    def utilization(self) -> float:
        """CPU fraction demanded: wcet/period for hard RT, 0 otherwise."""
        if self.service_class == HARD_RT:
            assert self.period is not None and self.wcet is not None
            return self.wcet / self.period
        return 0.0

    def __repr__(self) -> str:
        return "QosRequest(%r, %s)" % (self.name, self.service_class)
