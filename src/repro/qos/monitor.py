"""QoS monitoring: did every class actually receive its promised share?

A :class:`ClassMonitor` samples the scheduling structure periodically and
records, per monitored class, the CPU share received over each window
against the share its weight promises — counting only windows in which
the class was backlogged the whole time (an idle class receiving nothing
is not a violation).  The QoS manager sketch in the paper (§4) implies
exactly this feedback loop; the demand-driven rebalancer can consume the
monitor's reports.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, NamedTuple, Optional

from repro.core.node import LeafNode, Node
from repro.errors import SchedulingError
from repro.trace.metrics import node_work
from repro.trace.recorder import Recorder
from repro.units import SECOND

if TYPE_CHECKING:  # pragma: no cover
    from repro.cpu.machine import Machine


class ShareSample(NamedTuple):
    """One monitoring window's outcome for one class."""

    t_start: int
    t_end: int
    promised: float   # the class's minimum guarantee: weight share of all monitored classes
    received: float   # fraction of total thread work in the window
    backlogged: bool  # was the class runnable for the entire window?


class ClassMonitor:
    """Periodic share monitoring over a recorded machine.

    Parameters
    ----------
    machine:
        The machine to monitor; it must have a :class:`Recorder` tracer.
    nodes:
        The class nodes (subtrees) to monitor.
    window:
        Sampling window in ns.
    tolerance:
        Relative shortfall tolerated before a window counts as a
        violation (quantum granularity makes exact shares impossible).
    """

    def __init__(self, machine: "Machine", nodes: List[Node], window: int,
                 tolerance: float = 0.1) -> None:
        if window <= 0:
            raise SchedulingError("monitor window must be positive")
        if not isinstance(machine.tracer, Recorder):
            raise SchedulingError(
                "ClassMonitor needs a Machine with a Recorder tracer")
        self.machine = machine
        self.recorder: Recorder = machine.tracer
        self.nodes = list(nodes)
        self.window = window
        self.tolerance = tolerance
        self.samples: Dict[str, List[ShareSample]] = {
            node.path: [] for node in self.nodes}
        self._handle = None
        self._window_start = 0

    # --- driving ----------------------------------------------------------

    def start(self) -> None:
        """Begin sampling on the machine's engine."""
        self._window_start = self.machine.engine.now
        self._handle = self.machine.engine.after(self.window, self._tick)

    def stop(self) -> None:
        """Stop sampling; collected samples remain readable."""
        self.machine.engine.cancel(self._handle)
        self._handle = None

    def _tick(self) -> None:
        self.sample_window(self._window_start, self.machine.engine.now)
        self._window_start = self.machine.engine.now
        self._handle = self.machine.engine.after(self.window, self._tick)

    def _threads_of(self, node: Node):
        threads = []
        for sub in node.iter_subtree():
            if isinstance(sub, LeafNode):
                threads.extend(sub.threads)
        return threads

    def _backlogged_throughout(self, node: Node, t1: int, t2: int) -> bool:
        """True when some thread of ``node`` was runnable at every instant
        of [t1, t2] (computed from the recorded runnable intervals)."""
        intervals = []
        for thread in self._threads_of(node):
            trace = self.recorder.trace_of(thread)
            intervals.extend(trace.runnable_intervals(t2))
        intervals = [iv for iv in intervals if iv[1] > t1 and iv[0] < t2]
        intervals.sort()
        covered_to = t1
        for lo, hi in intervals:
            if lo > covered_to:
                return False  # gap with nothing runnable
            covered_to = max(covered_to, hi)
            if covered_to >= t2:
                return True
        return covered_to >= t2

    # --- sampling ------------------------------------------------------------

    def sample_window(self, t1: int, t2: int) -> None:
        """Record one window's shares (normally called by the timer)."""
        works = {}
        for node in self.nodes:
            works[node.path] = node_work(self.recorder,
                                         self._threads_of(node), t1, t2)
        total = (t2 - t1) * self.machine.capacity_ips / SECOND
        if total <= 0:
            return
        backlogged_nodes = [
            node for node in self.nodes
            # backlogged throughout: some thread runnable at every instant
            if self._backlogged_throughout(node, t1, t2)
        ]
        # The sound per-window promise is the class's *minimum* guarantee:
        # its weight share of all monitored classes.  Residual bandwidth
        # from idle siblings is a bonus SFQ redistributes, not a promise —
        # siblings may legitimately consume part of any window.
        weight_total = sum(n.weight for n in self.nodes)
        for node in self.nodes:
            backlogged = node in backlogged_nodes and weight_total > 0
            promised = (node.weight / weight_total) if backlogged else 0.0
            received = works[node.path] / total
            self.samples[node.path].append(
                ShareSample(t1, t2, promised, received, backlogged))

    # --- reporting --------------------------------------------------------------

    def violations(self, node: Optional[Node] = None) -> List[ShareSample]:
        """Windows where a backlogged class fell short of its promise."""
        paths = [node.path] if node is not None else list(self.samples)
        found = []
        for path in paths:
            for sample in self.samples[path]:
                if not sample.backlogged:
                    continue
                if sample.received < sample.promised * (1 - self.tolerance):
                    found.append(sample)
        return found

    def mean_received_share(self, node: Node) -> float:
        """Average received share over backlogged windows."""
        values = [s.received for s in self.samples[node.path]
                  if s.backlogged]
        if not values:
            return 0.0
        return sum(values) / len(values)
