"""Admission control tests.

The paper's QoS-manager sketch (§1, §4) calls for a *deterministic*
admission test for hard real-time classes and a *statistical* one for soft
real-time classes (whose whole point is safe overbooking).  Both operate on
the **fraction of the CPU allocated to the class** — the hierarchical
partition makes per-class admission sound because SFQ guarantees the class
its share regardless of what other classes do.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple


def rma_utilization_bound(task_count: int) -> float:
    """Liu & Layland's RMA schedulability bound ``n * (2^(1/n) - 1)``."""
    if task_count <= 0:
        return 1.0
    return task_count * (2.0 ** (1.0 / task_count) - 1.0)


def rma_admissible(tasks: Sequence[Tuple[int, int]],
                   capacity_fraction: float) -> bool:
    """Deterministic RMA admission for ``(period, wcet)`` tasks.

    ``capacity_fraction`` is the share of the CPU the class owns; task
    utilizations are measured against full capacity, so the test is
    ``sum(wcet/period) <= bound(n) * fraction``.
    """
    if not 0.0 < capacity_fraction <= 1.0:
        raise ValueError("capacity_fraction must be in (0, 1]")
    total = 0.0
    for period, wcet in tasks:
        if period <= 0 or wcet <= 0:
            raise ValueError("period and wcet must be positive")
        total += wcet / period
    return total <= rma_utilization_bound(len(tasks)) * capacity_fraction


def edf_admissible(tasks: Sequence[Tuple[int, int]],
                   capacity_fraction: float) -> bool:
    """Deterministic EDF admission: total utilization within the share."""
    if not 0.0 < capacity_fraction <= 1.0:
        raise ValueError("capacity_fraction must be in (0, 1]")
    total = 0.0
    for period, wcet in tasks:
        if period <= 0 or wcet <= 0:
            raise ValueError("period and wcet must be positive")
        total += wcet / period
    return total <= capacity_fraction


def statistical_admissible(mean_demands: Sequence[float],
                           std_demands: Sequence[float],
                           capacity_ips: float, overbooking_sigmas: float = 2.0
                           ) -> bool:
    """Statistical admission for VBR (soft real-time) demands.

    Admits while ``sum(means) + k * sqrt(sum(variances)) <= capacity``:
    aggregate demand stays within capacity except for tail events beyond
    ``k`` standard deviations — the controlled overbooking the paper
    motivates for VBR video (demands are assumed independent, so variances
    add).
    """
    if len(mean_demands) != len(std_demands):
        raise ValueError("mean_demands and std_demands must align")
    if capacity_ips <= 0:
        raise ValueError("capacity must be positive")
    total_mean = sum(mean_demands)
    total_var = sum(s * s for s in std_demands)
    return total_mean + overbooking_sigmas * math.sqrt(total_var) <= capacity_ips
