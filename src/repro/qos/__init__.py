"""QoS management (paper §4, Figure 4).

Applications specify requirements to a :class:`~repro.qos.manager.QosManager`
which (1) determines the resources needed, (2) chooses/creates the
scheduling class, (3) runs class-dependent admission control, and
(4) places the thread.  Dynamic re-weighting of classes — the paper's
"future research" — is provided by
:class:`~repro.qos.manager.DemandDrivenRebalancer`.
"""

from repro.qos.admission import (
    edf_admissible,
    rma_admissible,
    rma_utilization_bound,
    statistical_admissible,
)
from repro.qos.manager import DemandDrivenRebalancer, QosManager
from repro.qos.spec import BEST_EFFORT, HARD_RT, SOFT_RT, QosRequest

__all__ = [
    "QosRequest",
    "HARD_RT",
    "SOFT_RT",
    "BEST_EFFORT",
    "QosManager",
    "DemandDrivenRebalancer",
    "rma_admissible",
    "rma_utilization_bound",
    "edf_admissible",
    "statistical_admissible",
]
