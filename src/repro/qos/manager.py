"""The QoS manager (paper §4, Figure 4).

``QosManager`` owns three top-level classes in the scheduling structure —
``/hard-rt`` (RMA leaf), ``/soft-rt`` (SFQ leaf), and ``/best-effort`` (one
SFQ leaf per user) — and implements the four steps the paper describes:
determine resources, choose/create the class, admit, and place the thread.
Hard real-time admission is deterministic (RMA bound against the class's
CPU share), soft real-time admission is statistical (safe overbooking),
and best effort is never denied.

``DemandDrivenRebalancer`` implements the paper's future-work sketch:
"initially soft real-time applications may be allocated a very small
fraction of the CPU, but when many video decoders ... are started, the
allocation of the soft real-time class may be increased significantly."
It periodically resizes class weights in proportion to admitted demand,
within configured floors.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.node import LeafNode
from repro.core.structure import SchedulingStructure
from repro.errors import AdmissionError
from repro.qos.admission import rma_admissible, statistical_admissible
from repro.qos.spec import HARD_RT, SOFT_RT, QosRequest
from repro.schedulers.rma import RmaScheduler
from repro.schedulers.sfq_leaf import SfqScheduler
from repro.threads.thread import SimThread
from repro.units import MS

if TYPE_CHECKING:  # pragma: no cover
    from repro.cpu.machine import Machine
    from repro.threads.segments import Workload


class QosManager:
    """Creates and manages the QoS class hierarchy on a machine.

    Parameters
    ----------
    machine:
        The machine threads will run on (its scheduler must be the
        hierarchical scheduler driving ``structure``).
    structure:
        The scheduling structure to build classes in.
    class_weights:
        Initial weights of (hard, soft, best-effort), e.g. the paper's
        Figure 2 uses (1, 3, 6).
    rt_quantum:
        Quantum for the hard real-time leaf (Figure 9 uses 25 ms).
    """

    def __init__(self, machine: "Machine", structure: SchedulingStructure,
                 class_weights=(1, 3, 6), rt_quantum: int = 25 * MS,
                 overbooking_sigmas: float = 2.0,
                 rt_scheduler: str = "rma") -> None:
        hard_w, soft_w, best_w = class_weights
        self.machine = machine
        self.structure = structure
        self.overbooking_sigmas = overbooking_sigmas
        self.rt_scheduler = rt_scheduler
        if rt_scheduler == "rma":
            hard_sched = RmaScheduler(quantum=rt_quantum)
        elif rt_scheduler == "edf":
            from repro.schedulers.edf import EdfScheduler
            hard_sched = EdfScheduler(quantum=rt_quantum)
        else:
            raise AdmissionError(
                "rt_scheduler must be 'rma' or 'edf', got %r"
                % (rt_scheduler,))
        self.hard_leaf: LeafNode = structure.mknod(
            "/hard-rt", hard_w, scheduler=hard_sched)
        self.soft_leaf: LeafNode = structure.mknod(
            "/soft-rt", soft_w, scheduler=SfqScheduler())
        self.best_parent = structure.mknod("/best-effort", best_w)
        self._user_leaves: Dict[str, LeafNode] = {}
        self._hard_tasks: List[QosRequest] = []
        self._soft_tasks: List[QosRequest] = []
        self._placements: Dict[int, QosRequest] = {}

    # --- placement ------------------------------------------------------

    def submit(self, request: QosRequest, workload: "Workload",
               weight: int = 1, at: Optional[int] = None) -> SimThread:
        """Admit and start a thread for ``request`` running ``workload``.

        Raises :class:`AdmissionError` when admission control denies the
        request (best effort is never denied).
        """
        if request.service_class == HARD_RT:
            leaf = self._admit_hard(request)
            params = {"period": request.period, "wcet": request.wcet}
        elif request.service_class == SOFT_RT:
            leaf = self._admit_soft(request)
            params = {}
        else:
            leaf = self.user_leaf(request.user)
            params = {}
        thread = SimThread(request.name, workload, weight=weight, params=params)
        leaf.attach_thread(thread)
        self.machine.spawn(thread, at=at)
        self._placements[thread.tid] = request
        return thread

    def remove(self, thread: SimThread) -> None:
        """Release a finished/cancelled thread's reservation."""
        request = self._placements.pop(thread.tid, None)
        if request is None:
            return
        if request.service_class == HARD_RT and request in self._hard_tasks:
            self._hard_tasks.remove(request)
        elif request.service_class == SOFT_RT and request in self._soft_tasks:
            self._soft_tasks.remove(request)

    def user_leaf(self, user: str) -> LeafNode:
        """The best-effort leaf of ``user``, created on first use."""
        leaf = self._user_leaves.get(user)
        if leaf is None:
            leaf = self.structure.mknod(
                user, weight=1, parent=self.best_parent,
                scheduler=SfqScheduler())
            self._user_leaves[user] = leaf
        return leaf

    # --- admission -------------------------------------------------------

    def _class_fraction(self, node) -> float:
        """Fraction of the CPU a top-level class currently owns."""
        siblings = self.structure.root.children.values()
        total = sum(child.weight for child in siblings)
        return node.weight / total

    def _admit_hard(self, request: QosRequest) -> LeafNode:
        tasks = [(r.period, r.wcet) for r in self._hard_tasks]
        tasks.append((request.period, request.wcet))
        share = self._class_fraction(self.hard_leaf)
        if self.rt_scheduler == "edf":
            from repro.qos.admission import edf_admissible
            admissible = edf_admissible(tasks, share)
        else:
            admissible = rma_admissible(tasks, share)
        if not admissible:
            raise AdmissionError(
                "hard real-time request %r rejected: %s bound exceeded "
                "for the class's CPU share"
                % (request.name, self.rt_scheduler.upper()))
        self._hard_tasks.append(request)
        return self.hard_leaf

    def _admit_soft(self, request: QosRequest) -> LeafNode:
        means = [r.mean_demand for r in self._soft_tasks] + [request.mean_demand]
        stds = [r.std_demand for r in self._soft_tasks] + [request.std_demand]
        share = self._class_fraction(self.soft_leaf) * self.machine.capacity_ips
        if not statistical_admissible(means, stds, share,
                                      self.overbooking_sigmas):
            raise AdmissionError(
                "soft real-time request %r rejected: statistical test failed "
                "for the class's CPU share" % (request.name,))
        self._soft_tasks.append(request)
        return self.soft_leaf

    # --- introspection -----------------------------------------------------

    def admitted_hard_utilization(self) -> float:
        """Total wcet/period utilization of admitted hard RT tasks."""
        return sum(r.utilization for r in self._hard_tasks)

    def admitted_soft_demand(self) -> float:
        """Total mean demand (inst/s) of admitted soft RT tasks."""
        return sum(r.mean_demand or 0.0 for r in self._soft_tasks)


class DemandDrivenRebalancer:
    """Periodically resizes class weights in proportion to admitted demand.

    The paper's dynamic-partitioning sketch: each rebalance sets the soft
    real-time class weight so its CPU share tracks its admitted mean demand
    (plus headroom), and the hard real-time class so its share covers the
    admitted utilization, leaving the rest to best effort.  Floors prevent
    starvation of any class.
    """

    def __init__(self, manager: QosManager, period: int,
                 headroom: float = 1.2, floor_weight: int = 1,
                 scale: int = 100) -> None:
        if period <= 0:
            raise ValueError("rebalance period must be positive")
        self.manager = manager
        self.period = period
        self.headroom = headroom
        self.floor_weight = floor_weight
        self.scale = scale
        self.rebalances = 0
        self._handle = None

    def start(self) -> None:
        """Begin periodic rebalancing on the manager's machine engine."""
        engine = self.manager.machine.engine
        self._handle = engine.after(self.period, self._tick)

    def stop(self) -> None:
        """Cancel future rebalances (the current weights remain)."""
        self.manager.machine.engine.cancel(self._handle)
        self._handle = None

    def _tick(self) -> None:
        self.rebalance()
        engine = self.manager.machine.engine
        self._handle = engine.after(self.period, self._tick)

    def rebalance(self) -> None:
        """Recompute the three class weights from admitted demand."""
        manager = self.manager
        capacity = manager.machine.capacity_ips
        hard_share = min(0.9, manager.admitted_hard_utilization() * self.headroom)
        soft_share = min(0.9, manager.admitted_soft_demand() / capacity
                         * self.headroom)
        hard_w = max(self.floor_weight, round(hard_share * self.scale))
        soft_w = max(self.floor_weight, round(soft_share * self.scale))
        best_w = max(self.floor_weight, self.scale - hard_w - soft_w)
        manager.hard_leaf.set_weight(hard_w)
        manager.soft_leaf.set_weight(soft_w)
        manager.best_parent.set_weight(best_w)
        self.rebalances += 1
