"""repro.obs — runtime observability for the hierarchical scheduler.

The package provides four layers, designed so that an un-instrumented run
pays (almost) nothing:

* :mod:`repro.obs.events` — a process-wide **event bus** of typed,
  timestamped structured events (dispatch, preempt, block, wake, charge,
  tag-update, vtime-advance, interrupt, sanitizer-violation, ...).  Emit
  sites in the machines, the hierarchy, and the fair-queuing baselines are
  guarded by ``BUS.active``, so with no subscriber attached no event object
  is ever constructed and simulation results are byte-identical to an
  un-instrumented build.
* :mod:`repro.obs.metrics` — counters, gauges, and fixed-bucket latency
  histograms with a ``snapshot()`` API, plus :class:`SchedulerMetrics`, a
  bus subscriber that derives dispatch latency, run delay, and quantum
  statistics from the event stream.
* :mod:`repro.obs.schedstat` — per-node cumulative scheduling statistics
  rendered as a ``/proc/schedstat``-style text tree from the live
  scheduling structure.
* :mod:`repro.obs.chrometrace` — Trace Event Format (Chrome tracing /
  Perfetto) export of an event stream; the JSON loads directly in
  ``ui.perfetto.dev``.

``python -m repro.obs demo`` runs a hierarchical example with everything
attached; ``python -m repro.obs report trace.json`` summarizes a previously
exported trace.  See ``docs/OBSERVABILITY.md``.

Only the dependency-free submodules are imported here (the emit sites in
``repro.core`` and the machines import :mod:`repro.obs.events`, so this
package initializer must not import them back).
"""

from repro.obs.events import BUS, Event, EventBus
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SchedulerMetrics,
)

__all__ = [
    "BUS", "Event", "EventBus",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "SchedulerMetrics",
]
