"""Command-line interface: ``python -m repro.obs``.

Subcommands:

* ``demo`` — build a hierarchical example (the Figure-2 skeleton with a
  soft real-time MPEG-like decoder, two best-effort users, interactive
  load, and periodic device interrupts), run it with the full
  observability stack attached, print the per-node schedstat tree and the
  derived metrics, and optionally export a Perfetto-loadable Chrome trace
  (``--out trace.json``).
* ``report FILE`` — validate a previously exported Chrome-trace JSON and
  print per-track occupancy, instant counts, and counter-track summaries.
* ``record OUT`` — run the same demo scenario capturing only a binary
  trace (:mod:`repro.obs.binlog`): the cheap path that scales to
  million-event runs.  ``--defer`` buffers raw events in memory and
  encodes at seal, for overhead-sensitive measurement runs.
* ``convert FILE`` — replay a binlog through the existing collectors:
  ``--chrome out.json`` (byte-identical to live collection),
  ``--schedstat`` (offline counter tree), ``--depth-gantt`` (hierarchy
  Gantt, time vs. depth).
* ``info FILE`` — validate a binlog (footer count + content hash) and
  print its summary: event/kind counts, string table size, time range.

All commands print to stdout and return a process exit code; file errors
(malformed JSON, truncated or corrupt binlogs) exit 1 with a one-line
diagnostic.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import TYPE_CHECKING, List, Optional, Tuple

if TYPE_CHECKING:  # imports stay local at runtime to avoid cycles
    from repro.core.structure import SchedulingStructure
    from repro.cpu.machine import Machine
    from repro.threads.thread import SimThread

from repro.obs import events as ev
from repro.obs.chrometrace import ChromeTraceBuilder, summarize_chrome_trace
from repro.obs.metrics import SchedulerMetrics
from repro.obs.schedstat import SchedStat, render_schedstat


def build_demo(duration_ms: int = 2000) -> Tuple[
        "Machine", "SchedulingStructure", List["SimThread"]]:
    """Build the demo machine; returns ``(machine, structure, threads)``.

    The scenario exercises every event source: a hierarchical SFQ tree
    (tag-update / vtime-advance), CPU-bound and interactive threads
    (dispatch / block / wake / charge), and a periodic interrupt source
    (interrupt / preempt-free pauses).
    """
    from repro.core.hierarchy import HierarchicalScheduler
    from repro.core.structure import SchedulingStructure
    from repro.cpu.interrupts import PeriodicInterruptSource
    from repro.cpu.machine import Machine
    from repro.schedulers.sfq_leaf import SfqScheduler
    from repro.sim.engine import Simulator
    from repro.sim.rng import make_rng
    from repro.threads.thread import SimThread
    from repro.units import MS
    from repro.workloads.dhrystone import DhrystoneWorkload
    from repro.workloads.interactive import InteractiveWorkload

    del duration_ms  # scenario shape is duration-independent
    structure = SchedulingStructure()
    structure.mknod("/soft-rt", 3, scheduler=SfqScheduler())
    structure.mknod("/best-effort", 6)
    structure.mknod("/best-effort/user1", 1, scheduler=SfqScheduler())
    structure.mknod("/best-effort/user2", 1, scheduler=SfqScheduler())

    engine = Simulator()
    machine = Machine(engine, HierarchicalScheduler(structure),
                      capacity_ips=100_000_000, default_quantum=10 * MS)
    machine.add_interrupt_source(
        PeriodicInterruptSource(period=25 * MS, service=500_000))

    threads = []
    for path, name in (("/soft-rt", "decoder"),
                       ("/best-effort/user1", "compile"),
                       ("/best-effort/user2", "render")):
        thread = SimThread(name, DhrystoneWorkload())
        structure.parse(path).attach_thread(thread)
        machine.spawn(thread)
        threads.append(thread)
    shell = SimThread("shell", InteractiveWorkload(
        burst_work=300_000, think_time=40 * MS,
        rng=make_rng(7, "obs-demo/shell")))
    structure.parse("/best-effort/user1").attach_thread(shell)
    machine.spawn(shell)
    threads.append(shell)
    return machine, structure, threads


def cmd_demo(args: argparse.Namespace) -> int:
    """Run the demo scenario with the observability stack attached."""
    from repro.units import MS

    machine, structure, threads = build_demo(args.duration_ms)
    stats = SchedStat()
    metrics = SchedulerMetrics()
    builder = ChromeTraceBuilder()
    with ev.BUS.subscription(stats), ev.BUS.subscription(metrics), \
            ev.BUS.subscription(builder):
        machine.run_until(args.duration_ms * MS)

    print(render_schedstat(structure, stats))
    print()
    print("-- metrics " + "-" * 45)
    print(metrics.registry.render())
    print()
    print("-- threads " + "-" * 45)
    for thread in threads:
        print("%-10s work=%-12d dispatches=%-6d blocks=%d"
              % (thread.name, thread.stats.work_done,
                 thread.stats.dispatches, thread.stats.blocks))
    print()
    print("events emitted: %d" % builder.event_count)
    if args.out:
        builder.write(args.out, indent=args.indent)
        payload = builder.to_dict()
        print("wrote %s (%d trace events) — open in ui.perfetto.dev"
              % (args.out, len(payload["traceEvents"])))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Validate and summarize an exported Chrome-trace JSON file."""
    try:
        with open(args.trace) as handle:
            payload = json.load(handle)
        summary = summarize_chrome_trace(payload)
    except (OSError, ValueError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1
    print("%s: %d trace events, valid Trace Event Format"
          % (args.trace, summary["events"]))
    print()
    print("%-28s %10s %14s" % ("track", "slices", "busy (us)"))
    for row in summary["tracks"]:
        print("%-28s %10d %14.1f"
              % (row["track"], row["slices"], row["busy_us"]))
    if summary["instants"]:
        print()
        print("instant events:")
        for name in sorted(summary["instants"]):
            print("  %-26s %d" % (name, summary["instants"][name]))
    if summary["counters"]:
        print()
        print("counter tracks:")
        for name in sorted(summary["counters"]):
            print("  %-26s %d samples" % (name, summary["counters"][name]))
    return 0


def cmd_record(args: argparse.Namespace) -> int:
    """Run the demo scenario capturing only a binary trace."""
    from repro.obs.binlog import BinaryTraceWriter
    from repro.units import MS

    machine, __, ___ = build_demo(args.duration_ms)
    writer = BinaryTraceWriter(args.out, defer=args.defer)
    with ev.BUS.subscription(writer):
        machine.run_until(args.duration_ms * MS)
    writer.close()
    print("wrote %s: %d events, %d bytes (%s mode)"
          % (args.out, writer.event_count, os.path.getsize(args.out),
             "deferred" if args.defer else "streaming"))
    return 0


def cmd_convert(args: argparse.Namespace) -> int:
    """Replay a binlog through the existing collectors and renderers."""
    from repro.obs.binlog import BinaryTraceReader, BinlogError
    from repro.obs.schedstat import render_schedstat_paths
    from repro.viz.depth_gantt import depth_gantt

    if not (args.chrome or args.schedstat or args.depth_gantt):
        print("error: pick at least one of --chrome/--schedstat/--depth-gantt",
              file=sys.stderr)
        return 2
    try:
        reader = BinaryTraceReader(args.binlog)
    except (OSError, BinlogError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1
    if args.chrome:
        builder = ChromeTraceBuilder()
        for event in reader:
            builder(event)
        builder.write(args.chrome, indent=args.indent)
        print("wrote %s (%d events replayed) — open in ui.perfetto.dev"
              % (args.chrome, builder.event_count))
    if args.schedstat:
        stats = SchedStat()
        for event in reader:
            stats(event)
        print(render_schedstat_paths(stats))
    if args.depth_gantt:
        print(depth_gantt(reader, width=args.width))
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    """Validate a binlog and print its summary."""
    from repro.obs.binlog import BinaryTraceReader, BinlogError

    try:
        reader = BinaryTraceReader(args.binlog)
    except (OSError, BinlogError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1
    info = reader.info()
    if args.json:
        print(json.dumps(info, indent=2, sort_keys=True))
        return 0
    print("%s: valid %s" % (args.binlog, info["format"]))
    print("  events   %d" % info["events"])
    print("  size     %d bytes (%.1f bytes/event)"
          % (info["size_bytes"],
             info["size_bytes"] / info["events"] if info["events"] else 0.0))
    print("  strings  %d interned, %d schemas"
          % (info["strings"], info["schemas"]))
    if info["events"]:
        print("  time     %d .. %d ns"
              % (info["time_first_ns"], info["time_last_ns"]))
    for kind in sorted(info["kinds"]):
        print("  %-22s %d" % (kind, info["kinds"][kind]))
    return 0


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Observability tools for the hierarchical scheduler "
                    "reproduction (see docs/OBSERVABILITY.md).")
    sub = parser.add_subparsers(dest="command")
    demo = sub.add_parser(
        "demo", help="run a hierarchical example with tracing attached")
    demo.add_argument("--duration-ms", type=int, default=2000,
                      help="simulated milliseconds to run (default 2000)")
    demo.add_argument("--out", default="",
                      help="write a Perfetto-loadable Chrome trace JSON here")
    demo.add_argument("--indent", type=int, default=0,
                      help="JSON indent for --out (default compact)")
    demo.set_defaults(func=cmd_demo)
    report = sub.add_parser(
        "report", help="validate and summarize an exported Chrome trace")
    report.add_argument("trace", help="path to a Chrome-trace JSON file")
    report.set_defaults(func=cmd_report)
    record = sub.add_parser(
        "record", help="run the demo scenario capturing only a binary trace")
    record.add_argument("out", help="binlog output path")
    record.add_argument("--duration-ms", type=int, default=2000,
                        help="simulated milliseconds to run (default 2000)")
    record.add_argument("--defer", action="store_true",
                        help="buffer raw events and encode at seal "
                             "(lowest capture overhead, unbounded memory)")
    record.set_defaults(func=cmd_record)
    convert = sub.add_parser(
        "convert", help="replay a binlog through the existing collectors")
    convert.add_argument("binlog", help="path to a sealed binary trace")
    convert.add_argument("--chrome", default="",
                         help="write a Perfetto-loadable Chrome trace here")
    convert.add_argument("--indent", type=int, default=0,
                         help="JSON indent for --chrome (default compact)")
    convert.add_argument("--schedstat", action="store_true",
                         help="print the offline per-node schedstat tree")
    convert.add_argument("--depth-gantt", action="store_true",
                         help="print the hierarchy Gantt (time vs. depth)")
    convert.add_argument("--width", type=int, default=64,
                         help="Gantt chart width in cells (default 64)")
    convert.set_defaults(func=cmd_convert)
    info = sub.add_parser(
        "info", help="validate a binlog and print its summary")
    info.add_argument("binlog", help="path to a sealed binary trace")
    info.add_argument("--json", action="store_true",
                      help="print the summary as JSON")
    info.set_defaults(func=cmd_info)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _parser()
    args = parser.parse_args(argv)
    if not getattr(args, "func", None):
        parser.print_help()
        return 2
    return args.func(args)
