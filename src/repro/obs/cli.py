"""Command-line interface: ``python -m repro.obs``.

Two subcommands:

* ``demo`` — build a hierarchical example (the Figure-2 skeleton with a
  soft real-time MPEG-like decoder, two best-effort users, interactive
  load, and periodic device interrupts), run it with the full
  observability stack attached, print the per-node schedstat tree and the
  derived metrics, and optionally export a Perfetto-loadable Chrome trace
  (``--out trace.json``).
* ``report FILE`` — validate a previously exported Chrome-trace JSON and
  print per-track occupancy, instant counts, and counter-track summaries.

Both commands print to stdout and return a process exit code; errors in
``report`` (malformed JSON, schema violations) exit 1 with a one-line
diagnostic.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import TYPE_CHECKING, List, Optional, Tuple

if TYPE_CHECKING:  # imports stay local at runtime to avoid cycles
    from repro.core.structure import SchedulingStructure
    from repro.cpu.machine import Machine
    from repro.threads.thread import SimThread

from repro.obs import events as ev
from repro.obs.chrometrace import ChromeTraceBuilder, summarize_chrome_trace
from repro.obs.metrics import SchedulerMetrics
from repro.obs.schedstat import SchedStat, render_schedstat


def build_demo(duration_ms: int = 2000) -> Tuple[
        "Machine", "SchedulingStructure", List["SimThread"]]:
    """Build the demo machine; returns ``(machine, structure, threads)``.

    The scenario exercises every event source: a hierarchical SFQ tree
    (tag-update / vtime-advance), CPU-bound and interactive threads
    (dispatch / block / wake / charge), and a periodic interrupt source
    (interrupt / preempt-free pauses).
    """
    from repro.core.hierarchy import HierarchicalScheduler
    from repro.core.structure import SchedulingStructure
    from repro.cpu.interrupts import PeriodicInterruptSource
    from repro.cpu.machine import Machine
    from repro.schedulers.sfq_leaf import SfqScheduler
    from repro.sim.engine import Simulator
    from repro.sim.rng import make_rng
    from repro.threads.thread import SimThread
    from repro.units import MS
    from repro.workloads.dhrystone import DhrystoneWorkload
    from repro.workloads.interactive import InteractiveWorkload

    del duration_ms  # scenario shape is duration-independent
    structure = SchedulingStructure()
    structure.mknod("/soft-rt", 3, scheduler=SfqScheduler())
    structure.mknod("/best-effort", 6)
    structure.mknod("/best-effort/user1", 1, scheduler=SfqScheduler())
    structure.mknod("/best-effort/user2", 1, scheduler=SfqScheduler())

    engine = Simulator()
    machine = Machine(engine, HierarchicalScheduler(structure),
                      capacity_ips=100_000_000, default_quantum=10 * MS)
    machine.add_interrupt_source(
        PeriodicInterruptSource(period=25 * MS, service=500_000))

    threads = []
    for path, name in (("/soft-rt", "decoder"),
                       ("/best-effort/user1", "compile"),
                       ("/best-effort/user2", "render")):
        thread = SimThread(name, DhrystoneWorkload())
        structure.parse(path).attach_thread(thread)
        machine.spawn(thread)
        threads.append(thread)
    shell = SimThread("shell", InteractiveWorkload(
        burst_work=300_000, think_time=40 * MS,
        rng=make_rng(7, "obs-demo/shell")))
    structure.parse("/best-effort/user1").attach_thread(shell)
    machine.spawn(shell)
    threads.append(shell)
    return machine, structure, threads


def cmd_demo(args: argparse.Namespace) -> int:
    """Run the demo scenario with the observability stack attached."""
    from repro.units import MS

    machine, structure, threads = build_demo(args.duration_ms)
    stats = SchedStat()
    metrics = SchedulerMetrics()
    builder = ChromeTraceBuilder()
    with ev.BUS.subscription(stats), ev.BUS.subscription(metrics), \
            ev.BUS.subscription(builder):
        machine.run_until(args.duration_ms * MS)

    print(render_schedstat(structure, stats))
    print()
    print("-- metrics " + "-" * 45)
    print(metrics.registry.render())
    print()
    print("-- threads " + "-" * 45)
    for thread in threads:
        print("%-10s work=%-12d dispatches=%-6d blocks=%d"
              % (thread.name, thread.stats.work_done,
                 thread.stats.dispatches, thread.stats.blocks))
    print()
    print("events emitted: %d" % builder.event_count)
    if args.out:
        builder.write(args.out, indent=args.indent)
        payload = builder.to_dict()
        print("wrote %s (%d trace events) — open in ui.perfetto.dev"
              % (args.out, len(payload["traceEvents"])))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Validate and summarize an exported Chrome-trace JSON file."""
    try:
        with open(args.trace) as handle:
            payload = json.load(handle)
        summary = summarize_chrome_trace(payload)
    except (OSError, ValueError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1
    print("%s: %d trace events, valid Trace Event Format"
          % (args.trace, summary["events"]))
    print()
    print("%-28s %10s %14s" % ("track", "slices", "busy (us)"))
    for row in summary["tracks"]:
        print("%-28s %10d %14.1f"
              % (row["track"], row["slices"], row["busy_us"]))
    if summary["instants"]:
        print()
        print("instant events:")
        for name in sorted(summary["instants"]):
            print("  %-26s %d" % (name, summary["instants"][name]))
    if summary["counters"]:
        print()
        print("counter tracks:")
        for name in sorted(summary["counters"]):
            print("  %-26s %d samples" % (name, summary["counters"][name]))
    return 0


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Observability tools for the hierarchical scheduler "
                    "reproduction (see docs/OBSERVABILITY.md).")
    sub = parser.add_subparsers(dest="command")
    demo = sub.add_parser(
        "demo", help="run a hierarchical example with tracing attached")
    demo.add_argument("--duration-ms", type=int, default=2000,
                      help="simulated milliseconds to run (default 2000)")
    demo.add_argument("--out", default="",
                      help="write a Perfetto-loadable Chrome trace JSON here")
    demo.add_argument("--indent", type=int, default=0,
                      help="JSON indent for --out (default compact)")
    demo.set_defaults(func=cmd_demo)
    report = sub.add_parser(
        "report", help="validate and summarize an exported Chrome trace")
    report.add_argument("trace", help="path to a Chrome-trace JSON file")
    report.set_defaults(func=cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _parser()
    args = parser.parse_args(argv)
    if not getattr(args, "func", None):
        parser.print_help()
        return 2
    return args.func(args)
