"""Hierarchical schedstats: per-node cumulative scheduling statistics.

The Linux ``/proc/schedstat`` interface is the standard way to evaluate a
deployed scheduler without attaching a tracer; this module gives the
reproduction the hierarchical equivalent.  :class:`SchedStat` subscribes to
the event bus and accumulates, **per scheduling-structure node** (keyed by
pathname, with every charge also attributed to the node's ancestors):

* dispatches, preemptions, blocks, wakes;
* charges and total service (instructions);
* scheduling/context-switch overhead attribution (ns);
* tag ranges (smallest start tag, largest finish tag seen) and the last
  observed virtual time;
* SCHEDSAN violations routed through the bus.

:func:`render_schedstat` merges those cumulative numbers with the *live*
state of a :class:`~repro.core.structure.SchedulingStructure` (weights,
runnable flags, current virtual times) into a ``/proc/schedstat``-style
text tree::

    stats = SchedStat()
    with BUS.subscription(stats):
        machine.run_until(horizon)
    print(render_schedstat(structure, stats))
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs import events as ev


def ancestor_paths(path: str) -> List[str]:
    """Every prefix path of ``path``, root first: "/a/b" -> ["/", "/a", "/a/b"]."""
    if not path.startswith("/"):
        return [path]
    parts = [part for part in path.split("/") if part]
    out = ["/"]
    for index in range(len(parts)):
        out.append("/" + "/".join(parts[:index + 1]))
    return out


class NodeStats:
    """Cumulative counters for one scheduling-structure node."""

    __slots__ = ("dispatches", "preemptions", "blocks", "wakes", "charges",
                 "service_work", "overhead_ns", "violations", "tag_updates",
                 "min_start", "max_finish", "vtime")

    def __init__(self) -> None:
        self.dispatches = 0
        self.preemptions = 0
        self.blocks = 0
        self.wakes = 0
        self.charges = 0
        self.service_work = 0
        self.overhead_ns = 0
        self.violations = 0
        self.tag_updates = 0
        self.min_start: Optional[float] = None
        self.max_finish: Optional[float] = None
        self.vtime: Optional[float] = None

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict view (for JSON export and tests)."""
        return {slot: getattr(self, slot) for slot in self.__slots__}


class SchedStat:
    """Event-bus subscriber accumulating per-node scheduling statistics.

    Thread-lifecycle events carry the leaf pathname of the thread involved;
    each is attributed to that leaf *and all its ancestors*, so an internal
    node's row reports its whole subtree — the hierarchical reading of
    ``/proc/schedstat``.  Tag and virtual-time events update only the named
    node.
    """

    def __init__(self) -> None:
        self.nodes: Dict[str, NodeStats] = {}
        self.interrupts = 0
        self.interrupt_ns = 0
        self.events_seen = 0

    def node(self, path: str) -> NodeStats:
        """The (created-on-demand) stats record for ``path``."""
        stats = self.nodes.get(path)
        if stats is None:
            stats = NodeStats()
            self.nodes[path] = stats
        return stats

    def _bump(self, path: str, field: str, amount: int = 1) -> None:
        for prefix in ancestor_paths(path):
            stats = self.node(prefix)
            setattr(stats, field, getattr(stats, field) + amount)

    def __call__(self, event: ev.Event) -> None:
        """Bus subscriber entry point: fold one event into the node table."""
        self.events_seen += 1
        kind = event.kind
        data = event.data
        if kind == ev.DISPATCH:
            self._bump(data["node"], "dispatches")
            overhead = data.get("overhead_ns", 0)
            if overhead:
                self._bump(data["node"], "overhead_ns", overhead)
        elif kind == ev.CHARGE:
            self._bump(data["node"], "charges")
            self._bump(data["node"], "service_work", data["work"])
        elif kind == ev.PREEMPT:
            self._bump(data["node"], "preemptions")
        elif kind == ev.BLOCK:
            self._bump(data["node"], "blocks")
        elif kind == ev.WAKE:
            node = data.get("node")
            if node is not None:
                self._bump(node, "wakes")
        elif kind == ev.TAG_UPDATE:
            stats = self.node(data["node"])
            stats.tag_updates += 1
            start = data.get("start")
            finish = data.get("finish")
            if start is not None and (stats.min_start is None
                                      or start < stats.min_start):
                stats.min_start = start
            if finish is not None and (stats.max_finish is None
                                       or finish > stats.max_finish):
                stats.max_finish = finish
        elif kind == ev.VTIME_ADVANCE:
            self.node(data["node"]).vtime = data["v"]
        elif kind == ev.VIOLATION:
            self.node(data.get("node", "/")).violations += 1
        elif kind == ev.INTERRUPT:
            self.interrupts += 1
            self.interrupt_ns += data.get("service", 0)


def _format_tag(value: Optional[float]) -> str:
    if value is None:
        return "-"
    return "%.3f" % value


def _node_lines(node: Any, stats: Optional[SchedStat], depth: int,
                lines: List[str]) -> None:
    indent = "  " * depth
    label = node.path
    kind = "leaf" if node.is_leaf else "internal"
    detail = ""
    if node.is_leaf:
        algorithm = getattr(node.scheduler, "algorithm", "?")
        detail = " sched=%s threads=%d" % (algorithm, len(node.threads))
    else:
        detail = " v=%s children=%d" % (
            _format_tag(float(node.queue.virtual_time)), len(node.children))
    lines.append("%s%s weight=%d %s runnable=%d%s"
                 % (indent, label, node.weight, kind, int(node.runnable),
                    detail))
    record = stats.nodes.get(node.path) if stats is not None else None
    if record is not None:
        lines.append(
            "%s  dispatches=%d preempt=%d service=%d charges=%d "
            "overhead_ns=%d blocks=%d wakes=%d violations=%d"
            % (indent, record.dispatches, record.preemptions,
               record.service_work, record.charges, record.overhead_ns,
               record.blocks, record.wakes, record.violations))
        lines.append(
            "%s  tags: S_min=%s F_max=%s v_last=%s updates=%d"
            % (indent, _format_tag(record.min_start),
               _format_tag(record.max_finish), _format_tag(record.vtime),
               record.tag_updates))
    if not node.is_leaf:
        for child in node.children.values():
            _node_lines(child, stats, depth + 1, lines)


def render_schedstat_paths(stats: SchedStat) -> str:
    """Structure-free schedstat view: the counter tree alone.

    Offline conversion (``python -m repro.obs convert --schedstat``)
    has no live :class:`~repro.core.structure.SchedulingStructure` to
    merge with, so this renders every node path the collector saw —
    indented by depth, ancestors first — with the same counter lines
    :func:`render_schedstat` prints under each node.
    """
    lines: List[str] = ["schedstat-hsfq version 1 (offline)"]
    for path in sorted(stats.nodes, key=ancestor_paths):
        record = stats.nodes[path]
        depth = len(ancestor_paths(path)) - 1
        indent = "  " * depth
        lines.append("%s%s" % (indent, path))
        lines.append(
            "%s  dispatches=%d preempt=%d service=%d charges=%d "
            "overhead_ns=%d blocks=%d wakes=%d violations=%d"
            % (indent, record.dispatches, record.preemptions,
               record.service_work, record.charges, record.overhead_ns,
               record.blocks, record.wakes, record.violations))
        lines.append(
            "%s  tags: S_min=%s F_max=%s v_last=%s updates=%d"
            % (indent, _format_tag(record.min_start),
               _format_tag(record.max_finish), _format_tag(record.vtime),
               record.tag_updates))
    lines.append("interrupts=%d interrupt_ns=%d events=%d"
                 % (stats.interrupts, stats.interrupt_ns, stats.events_seen))
    return "\n".join(lines)


def render_schedstat(structure: Any,
                     stats: Optional[SchedStat] = None) -> str:
    """A ``/proc/schedstat``-style text tree of ``structure``.

    ``structure`` is a :class:`~repro.core.structure.SchedulingStructure`
    (duck-typed: anything with a ``root`` node tree works).  When a
    :class:`SchedStat` collector is supplied its cumulative counters are
    printed under each node; otherwise only the live state (weights,
    runnable flags, virtual times) is shown.
    """
    lines: List[str] = ["schedstat-hsfq version 1"]
    _node_lines(structure.root, stats, 0, lines)
    if stats is not None:
        lines.append("interrupts=%d interrupt_ns=%d events=%d"
                     % (stats.interrupts, stats.interrupt_ns,
                        stats.events_seen))
    return "\n".join(lines)
