"""Hierarchical schedstats: per-node cumulative scheduling statistics.

The Linux ``/proc/schedstat`` interface is the standard way to evaluate a
deployed scheduler without attaching a tracer; this module gives the
reproduction the hierarchical equivalent.  :class:`SchedStat` subscribes to
the event bus and accumulates, **per scheduling-structure node** (keyed by
pathname, with every charge also attributed to the node's ancestors):

* dispatches, preemptions, blocks, wakes;
* charges and total service (instructions);
* scheduling/context-switch overhead attribution (ns);
* tag ranges (smallest start tag, largest finish tag seen) and the last
  observed virtual time;
* SCHEDSAN violations routed through the bus.

:func:`render_schedstat` merges those cumulative numbers with the *live*
state of a :class:`~repro.core.structure.SchedulingStructure` (weights,
runnable flags, current virtual times) into a ``/proc/schedstat``-style
text tree::

    stats = SchedStat()
    with BUS.subscription(stats):
        machine.run_until(horizon)
    print(render_schedstat(structure, stats))
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs import events as ev


def ancestor_paths(path: str) -> List[str]:
    """Every prefix path of ``path``, root first: "/a/b" -> ["/", "/a", "/a/b"]."""
    if not path.startswith("/"):
        return [path]
    parts = [part for part in path.split("/") if part]
    out = ["/"]
    for index in range(len(parts)):
        out.append("/" + "/".join(parts[:index + 1]))
    return out


class NodeStats:
    """Cumulative counters for one scheduling-structure node."""

    __slots__ = ("dispatches", "preemptions", "blocks", "wakes", "charges",
                 "service_work", "overhead_ns", "violations", "tag_updates",
                 "min_start", "max_finish", "vtime")

    def __init__(self) -> None:
        self.dispatches = 0
        self.preemptions = 0
        self.blocks = 0
        self.wakes = 0
        self.charges = 0
        self.service_work = 0
        self.overhead_ns = 0
        self.violations = 0
        self.tag_updates = 0
        self.min_start: Optional[float] = None
        self.max_finish: Optional[float] = None
        self.vtime: Optional[float] = None

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict view (for JSON export and tests)."""
        return {slot: getattr(self, slot) for slot in self.__slots__}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "NodeStats":
        """Rebuild a record from :meth:`as_dict` output."""
        stats = cls()
        for slot in cls.__slots__:
            if slot in data:
                setattr(stats, slot, data[slot])
        return stats

    def merge(self, other: "NodeStats") -> None:
        """Fold ``other`` into this record (cluster roll-up semantics).

        Counters add; tag extrema widen.  ``vtime`` keeps the largest
        non-``None`` value — per-host virtual times are not mutually
        ordered, so for cross-host roll-up nodes this is a deterministic
        convention, not a physical clock.
        """
        self.dispatches += other.dispatches
        self.preemptions += other.preemptions
        self.blocks += other.blocks
        self.wakes += other.wakes
        self.charges += other.charges
        self.service_work += other.service_work
        self.overhead_ns += other.overhead_ns
        self.violations += other.violations
        self.tag_updates += other.tag_updates
        if other.min_start is not None and (self.min_start is None
                                            or other.min_start < self.min_start):
            self.min_start = other.min_start
        if other.max_finish is not None and (self.max_finish is None
                                             or other.max_finish > self.max_finish):
            self.max_finish = other.max_finish
        if other.vtime is not None and (self.vtime is None
                                        or other.vtime > self.vtime):
            self.vtime = other.vtime


class SchedStat:
    """Event-bus subscriber accumulating per-node scheduling statistics.

    Thread-lifecycle events carry the leaf pathname of the thread involved;
    each is attributed to that leaf *and all its ancestors*, so an internal
    node's row reports its whole subtree — the hierarchical reading of
    ``/proc/schedstat``.  Tag and virtual-time events update only the named
    node.
    """

    def __init__(self) -> None:
        self.nodes: Dict[str, NodeStats] = {}
        self.interrupts = 0
        self.interrupt_ns = 0
        self.events_seen = 0

    def node(self, path: str) -> NodeStats:
        """The (created-on-demand) stats record for ``path``."""
        stats = self.nodes.get(path)
        if stats is None:
            stats = NodeStats()
            self.nodes[path] = stats
        return stats

    def _bump(self, path: str, field: str, amount: int = 1) -> None:
        for prefix in ancestor_paths(path):
            stats = self.node(prefix)
            setattr(stats, field, getattr(stats, field) + amount)

    def __call__(self, event: ev.Event) -> None:
        """Bus subscriber entry point: fold one event into the node table."""
        self.events_seen += 1
        kind = event.kind
        data = event.data
        if kind == ev.DISPATCH:
            self._bump(data["node"], "dispatches")
            overhead = data.get("overhead_ns", 0)
            if overhead:
                self._bump(data["node"], "overhead_ns", overhead)
        elif kind == ev.CHARGE:
            self._bump(data["node"], "charges")
            self._bump(data["node"], "service_work", data["work"])
        elif kind == ev.PREEMPT:
            self._bump(data["node"], "preemptions")
        elif kind == ev.BLOCK:
            self._bump(data["node"], "blocks")
        elif kind == ev.WAKE:
            node = data.get("node")
            if node is not None:
                self._bump(node, "wakes")
        elif kind == ev.TAG_UPDATE:
            stats = self.node(data["node"])
            stats.tag_updates += 1
            start = data.get("start")
            finish = data.get("finish")
            if start is not None and (stats.min_start is None
                                      or start < stats.min_start):
                stats.min_start = start
            if finish is not None and (stats.max_finish is None
                                       or finish > stats.max_finish):
                stats.max_finish = finish
        elif kind == ev.VTIME_ADVANCE:
            self.node(data["node"]).vtime = data["v"]
        elif kind == ev.VIOLATION:
            self.node(data.get("node", "/")).violations += 1
        elif kind == ev.INTERRUPT:
            self.interrupts += 1
            self.interrupt_ns += data.get("service", 0)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able snapshot of the whole collector (node table included)."""
        return {
            "nodes": {path: record.as_dict()
                      for path, record in sorted(self.nodes.items())},
            "interrupts": self.interrupts,
            "interrupt_ns": self.interrupt_ns,
            "events_seen": self.events_seen,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SchedStat":
        """Rebuild a collector from :meth:`to_dict` output.

        This is how cluster shard workers ship per-host statistics back
        to the runner: the collector crosses the process boundary as a
        plain dict, never as a pickled object graph.
        """
        stats = cls()
        for path, record in data.get("nodes", {}).items():
            stats.nodes[path] = NodeStats.from_dict(record)
        stats.interrupts = int(data.get("interrupts", 0))
        stats.interrupt_ns = int(data.get("interrupt_ns", 0))
        stats.events_seen = int(data.get("events_seen", 0))
        return stats


def merge_schedstats(per_host: Dict[str, SchedStat],
                     prefix: str = "/host") -> SchedStat:
    """Aggregate per-host collectors into one cluster-wide view.

    Every node path of host ``key`` reappears under ``<prefix>/<key>``
    (the host's root ``/`` becomes the ``<prefix>/<key>`` node itself),
    and each host's root counters also roll up into the cluster ``/``
    and ``<prefix>`` nodes — the same ancestor-attribution rule
    :class:`SchedStat` applies within one hierarchy, lifted one tier.
    ``repro.cluster report`` renders the result with
    :func:`render_schedstat_paths`.
    """
    merged = SchedStat()
    for key in sorted(per_host):
        stats = per_host[key]
        merged.interrupts += stats.interrupts
        merged.interrupt_ns += stats.interrupt_ns
        merged.events_seen += stats.events_seen
        base = "%s/%s" % (prefix, key)
        root = stats.nodes.get("/")
        if root is not None:
            merged.node("/").merge(root)
            merged.node(prefix).merge(root)
        for path, record in stats.nodes.items():
            mapped = base if path == "/" else base + path
            merged.node(mapped).merge(record)
    return merged


def _format_tag(value: Optional[float]) -> str:
    if value is None:
        return "-"
    return "%.3f" % value


def _node_lines(node: Any, stats: Optional[SchedStat], depth: int,
                lines: List[str]) -> None:
    indent = "  " * depth
    label = node.path
    kind = "leaf" if node.is_leaf else "internal"
    detail = ""
    if node.is_leaf:
        algorithm = getattr(node.scheduler, "algorithm", "?")
        detail = " sched=%s threads=%d" % (algorithm, len(node.threads))
    else:
        detail = " v=%s children=%d" % (
            _format_tag(float(node.queue.virtual_time)), len(node.children))
    lines.append("%s%s weight=%d %s runnable=%d%s"
                 % (indent, label, node.weight, kind, int(node.runnable),
                    detail))
    record = stats.nodes.get(node.path) if stats is not None else None
    if record is not None:
        lines.append(
            "%s  dispatches=%d preempt=%d service=%d charges=%d "
            "overhead_ns=%d blocks=%d wakes=%d violations=%d"
            % (indent, record.dispatches, record.preemptions,
               record.service_work, record.charges, record.overhead_ns,
               record.blocks, record.wakes, record.violations))
        lines.append(
            "%s  tags: S_min=%s F_max=%s v_last=%s updates=%d"
            % (indent, _format_tag(record.min_start),
               _format_tag(record.max_finish), _format_tag(record.vtime),
               record.tag_updates))
    if not node.is_leaf:
        for child in node.children.values():
            _node_lines(child, stats, depth + 1, lines)


def render_schedstat_paths(stats: SchedStat) -> str:
    """Structure-free schedstat view: the counter tree alone.

    Offline conversion (``python -m repro.obs convert --schedstat``)
    has no live :class:`~repro.core.structure.SchedulingStructure` to
    merge with, so this renders every node path the collector saw —
    indented by depth, ancestors first — with the same counter lines
    :func:`render_schedstat` prints under each node.
    """
    lines: List[str] = ["schedstat-hsfq version 1 (offline)"]
    for path in sorted(stats.nodes, key=ancestor_paths):
        record = stats.nodes[path]
        depth = len(ancestor_paths(path)) - 1
        indent = "  " * depth
        lines.append("%s%s" % (indent, path))
        lines.append(
            "%s  dispatches=%d preempt=%d service=%d charges=%d "
            "overhead_ns=%d blocks=%d wakes=%d violations=%d"
            % (indent, record.dispatches, record.preemptions,
               record.service_work, record.charges, record.overhead_ns,
               record.blocks, record.wakes, record.violations))
        lines.append(
            "%s  tags: S_min=%s F_max=%s v_last=%s updates=%d"
            % (indent, _format_tag(record.min_start),
               _format_tag(record.max_finish), _format_tag(record.vtime),
               record.tag_updates))
    lines.append("interrupts=%d interrupt_ns=%d events=%d"
                 % (stats.interrupts, stats.interrupt_ns, stats.events_seen))
    return "\n".join(lines)


def render_schedstat(structure: Any,
                     stats: Optional[SchedStat] = None) -> str:
    """A ``/proc/schedstat``-style text tree of ``structure``.

    ``structure`` is a :class:`~repro.core.structure.SchedulingStructure`
    (duck-typed: anything with a ``root`` node tree works).  When a
    :class:`SchedStat` collector is supplied its cumulative counters are
    printed under each node; otherwise only the live state (weights,
    runnable flags, virtual times) is shown.
    """
    lines: List[str] = ["schedstat-hsfq version 1"]
    _node_lines(structure.root, stats, 0, lines)
    if stats is not None:
        lines.append("interrupts=%d interrupt_ns=%d events=%d"
                     % (stats.interrupts, stats.interrupt_ns,
                        stats.events_seen))
    return "\n".join(lines)
