"""Streaming binary trace log: capture cheaply once, derive every view.

The in-memory collectors (:class:`~repro.obs.chrometrace.ChromeTraceBuilder`,
:class:`~repro.obs.schedstat.SchedStat`) are fine for demos but cost ~2.6x
a traced-off run and hold the whole trace in Python objects.  This module
is the production capture path: :class:`BinaryTraceWriter` subscribes to
the bus like any collector and streams each event to disk in a compact
pure-stdlib binary format; :class:`BinaryTraceReader` replays the file as
the exact :class:`~repro.obs.events.Event` sequence that was captured, so
every existing consumer can be fed offline::

    with BinaryTraceWriter("run.binlog") as writer, \\
            BUS.subscription(writer):
        machine.run_until(horizon)

    builder = ChromeTraceBuilder()
    replay("run.binlog", builder)          # identical to live collection

Format (``repro.binlog/1``; full record layout in docs/OBSERVABILITY.md):

* **varints** — unsigned LEB128; signed values zigzag-encoded first;
* **string table** — every string (event kinds, field names, node paths,
  thread names, string field values) is interned: an inline definition
  record on first use, a small integer id afterwards;
* **delta timestamps** — events store the signed delta from the previous
  event's timestamp, not the absolute time;
* **schema records** — emit sites pass a stable field tuple per event
  kind, so the writer defines a *schema* (kind, field names, field types)
  the first time a shape appears and thereafter encodes the whole event
  as one ``struct``-packed slab through a schema-specialized encoder —
  the hot path that keeps capture cheap enough to leave on.  Events that
  do not fit their schema (new shape, drifted type, out-of-range int)
  fall back to a self-describing generic record, so *any* event stream
  round-trips;
* **sealed footer** — event count plus a SHA-256 over every preceding
  byte, so a truncated or corrupted log is rejected on read instead of
  silently under-reporting.
"""

from __future__ import annotations

import hashlib
import struct
from types import TracebackType
from typing import (
    IO,
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Type,
)

from repro.obs.events import Event

#: format identifier: the file magic is this string's first four bytes
FORMAT = "repro.binlog/1"

#: file header: magic + one version byte
MAGIC = b"RBLG"
VERSION = 1

#: record type tags
_REC_STRING = 0x01
_REC_EVENT = 0x02
_REC_FOOTER = 0x03
_REC_SCHEMA = 0x04
_REC_FAST = 0x05

#: value type tags — used both inside generic event records and as the
#: per-field type codes of a schema definition
_VAL_NONE = 0x00
_VAL_BOOL = 0x01
_VAL_INT = 0x03
_VAL_FLOAT = 0x04
_VAL_STR = 0x05
#: generic records split bool into two zero-payload tags
_VAL_TRUE = 0x02

#: footer payload: u64-le event count + 32-byte SHA-256
_FOOTER_STRUCT = struct.Struct("<Q")
_DIGEST_SIZE = 32
_FLOAT_STRUCT = struct.Struct("<d")

#: writer buffer flush threshold (bytes)
_FLUSH_BYTES = 1 << 16


class BinlogError(ValueError):
    """A binary trace file that cannot be trusted: truncated, corrupted,
    wrong magic/version, or structurally malformed."""


class _FastPathMiss(Exception):
    """Raised by a schema encoder when the event does not fit its schema."""


def encode_varint(value: int) -> bytes:
    """Unsigned LEB128 bytes of ``value`` (must be >= 0)."""
    if value < 0:
        raise ValueError("varint value must be non-negative, got %d" % value)
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def encode_zigzag(value: int) -> bytes:
    """Signed integer as zigzag-mapped LEB128 bytes.

    Python ints are unbounded, so the mapping is written by sign rather
    than with the usual fixed-width shift trick; it agrees with protobuf
    zigzag on every 64-bit value and extends beyond.
    """
    return encode_varint((value << 1) if value >= 0
                         else ((-value << 1) - 1))


def decode_zigzag(value: int) -> int:
    """Inverse of the zigzag mapping used by :func:`encode_zigzag`."""
    return (value >> 1) if not (value & 1) else -((value + 1) >> 1)


# --- schema compilation ------------------------------------------------------


def _type_code(value: Any) -> int:
    """The schema type code describing ``value`` (bool before int!)."""
    value_type = type(value)
    if value_type is bool:
        return _VAL_BOOL
    if value_type is int:
        return _VAL_INT
    if value_type is float:
        return _VAL_FLOAT
    if value_type is str:
        return _VAL_STR
    if value is None:
        return _VAL_NONE
    raise TypeError("binlog cannot encode field of type %s"
                    % value_type.__name__)


#: struct format character indexed by schema type code: bool/int/str-id
#: pack as "q", float as "d", None takes no slot
_STRUCT_CHAR = ("", "q", "", "q", "d", "q")


class _Schema:
    """One compiled event shape: (kind, field names, field types).

    ``encode`` is an exec-generated function specialized to the shape: it
    reads each field by name (a missing key raises straight to the
    fallback), type-checks it (drift raises :class:`_FastPathMiss`),
    interns strings, and appends the pre-encoded record head plus one
    ``struct``-packed slab to the writer's buffer.  Field order is
    canonicalized to the schema's: a same-keys permutation encodes (and
    decodes) in schema order, which is invisible to dict equality.
    """

    __slots__ = ("kind", "keys", "types", "encode", "schema_id")

    def __init__(self, schema_id: int, kind: str, keys: Tuple[str, ...],
                 types: Tuple[int, ...],
                 writer: "BinaryTraceWriter") -> None:
        self.schema_id = schema_id
        self.kind = kind
        self.keys = keys
        self.types = types
        head = bytes((_REC_FAST,)) + encode_varint(schema_id)
        self.encode = _compile_encoder(kind, keys, types, head, writer)


def _compile_encoder(kind: str, keys: Tuple[str, ...],
                     types: Tuple[int, ...], head: bytes,
                     writer: "BinaryTraceWriter") -> Callable[..., None]:
    """Generate the specialized ``encoder(time, data)`` for one schema.

    The generated function is the whole capture hot path — the bus calls
    it directly through the writer's ``raw_encoders`` table, with no
    intermediate frame.  It delta-encodes the timestamp, reads each field
    by name, type-checks it, interns strings, and appends the record head
    plus one C-level ``struct``-packed slab in a single buffer append
    (the head rides along as an ``Ns`` field).  Everything it needs is
    bound as argument defaults so the body touches no ``self`` (the
    buffer is cleared in place by ``_flush``, so the binding stays valid
    for the writer's lifetime).  Any mismatch with the declared shape —
    missing key, drifted type, out-of-range int — is caught inside and
    routed to the writer's slow path, which emits a self-describing
    generic record instead; the writer's timestamp/count state advances
    only on success, so the fallback re-encodes from untouched state.
    """
    fmt = "<%dsq" % len(head) + "".join(_STRUCT_CHAR[t] for t in types
                                        if t != _VAL_NONE)
    pack = struct.Struct(fmt).pack
    lines = ["def encode(time, data, pack=pack, head=head, buf=buffer,"
             " sget=sget, intern=intern, state=state, fallback=fallback,"
             " flush=flush, _miss=_miss, _errs=_errs, _kind=_kind):",
             "    delta = time - state[0]",
             "    try:",
             "        if len(data) != %d: raise _miss" % len(keys)]
    packed = []
    for index, (key, code) in enumerate(zip(keys, types)):
        value = "v%d" % index
        lines.append("        %s = data[%r]" % (value, key))
        if code == _VAL_NONE:
            lines.append("        if %s is not None: raise _miss" % value)
            continue
        packed.append(value)
        if code == _VAL_STR:
            lines.append("        if %s.__class__ is not str: raise _miss"
                         % value)
            lines.append("        i%d = sget(%s)" % (index, value))
            lines.append("        if i%d is None: i%d = intern(%s)"
                         % (index, index, value))
            packed[-1] = "i%d" % index
        elif code == _VAL_INT:
            lines.append("        if %s.__class__ is not int: raise _miss"
                         % value)
        elif code == _VAL_BOOL:
            lines.append("        if %s.__class__ is not bool: raise _miss"
                         % value)
        else:  # _VAL_FLOAT
            lines.append("        if %s.__class__ is not float: raise _miss"
                         % value)
    # pack raises struct.error (e.g. an int beyond 64 bits) before the
    # append, so a rejected event leaves no partial record behind
    lines += ["        slab = pack(head, delta%s)"
              % "".join(", " + name for name in packed),
              "    except _errs:",
              "        fallback(_kind, time, data)",
              "        return",
              "    buf += slab",
              "    state[0] = time",
              "    n = state[1] + 1",
              "    state[1] = n",
              # The buffer-length check is amortized: schema records are
              # tens of bytes, so probing every 256th event still bounds
              # the buffer near _FLUSH_BYTES (the slow path, which can
              # write big string tables, checks unconditionally).
              "    if not n & 255 and len(buf) >= %d:" % _FLUSH_BYTES,
              "        flush()"]
    namespace: Dict[str, Any] = {
        "_miss": _FastPathMiss, "pack": pack, "head": head,
        "buffer": writer._buffer, "sget": writer._strings.get,
        "intern": writer._intern, "state": writer._state,
        "fallback": writer._slow_path, "flush": writer._flush,
        "_errs": (_FastPathMiss, KeyError, struct.error), "_kind": kind,
    }
    exec("\n".join(lines), namespace)  # noqa: S102 - trusted template
    return namespace["encode"]  # type: ignore[no-any-return]


# --- writer ------------------------------------------------------------------


class BinaryTraceWriter:
    """Event-bus subscriber streaming events into a sealed binary log.

    Use as a context manager (or call :meth:`close`) so the footer is
    written; an unsealed file is rejected by :class:`BinaryTraceReader`.
    The writer owns the file handle it opened from a path; when handed an
    open binary file object it writes and flushes but never closes it.

    Two capture modes, producing byte-identical sealed files:

    - **streaming** (default): events are encoded as they arrive and the
      buffer is flushed to disk incrementally — memory stays bounded no
      matter how many events the run emits.
    - **deferred** (``defer=True``): capture only appends the raw
      ``(kind, time, data)`` triple to a list; encoding and I/O happen at
      :meth:`close`.  This is the ``perf record`` model — the smallest
      possible in-run perturbation (~4x cheaper per event than inline
      encoding) at the cost of holding every captured event in memory
      (roughly 300 bytes each) until the log is sealed.  Prefer it for
      overhead-sensitive measurement runs of bounded length.
    """

    def __init__(self, path_or_file: Any, defer: bool = False) -> None:
        if hasattr(path_or_file, "write"):
            self._file: IO[bytes] = path_or_file
            self._owns_file = False
        else:
            self._file = open(path_or_file, "wb")
            self._owns_file = True
        self._buffer = bytearray(MAGIC)
        self._buffer.append(VERSION)
        self._hash = hashlib.sha256()
        self._strings: Dict[str, int] = {}
        #: per-kind encoder of the first schema seen for that kind — the
        #: hot dispatch table.  The bus reads this (as ``raw_encoders``)
        #: and calls encoders directly; the dict object must therefore
        #: stay the same for the writer's lifetime (it is only ever
        #: mutated in place).
        self._hot: Dict[str, Callable[[int, Dict[str, Any]], None]] = {}
        #: ``defer=True`` is the perf-record model: capture appends the
        #: raw ``(kind, time, data)`` triple here and all encoding happens
        #: at :meth:`close`, trading bounded memory for the smallest
        #: possible in-run perturbation.  The sealed file is byte-for-byte
        #: identical to streaming mode.  None in streaming mode.
        self._pending: Optional[List[Tuple[str, int, Dict[str, Any]]]] = (
            [] if defer else None)
        #: bus raw-consumer protocol: the live per-kind encoder table.
        #: Withheld in deferred mode so the bus routes every event through
        #: :meth:`emit_raw` (the table would encode inline).
        self.raw_encoders: Optional[Dict[str, Callable[
            [int, Dict[str, Any]], None]]] = None if defer else self._hot
        #: every schema, keyed by exact shape (kind, field-name tuple)
        self._by_shape: Dict[Tuple[str, Tuple[str, ...]], _Schema] = {}
        self._schema_count = 0
        #: [previous timestamp, events written] — shared mutable state
        #: the generated encoders update without attribute traffic
        self._state = [0, 0]
        self._sealed = False

    @property
    def event_count(self) -> int:
        """How many events have been written so far."""
        return self._state[1]

    # --- interning --------------------------------------------------------

    def _intern(self, text: str) -> int:
        """Interned id of ``text``, emitting a definition record first."""
        raw = text.encode("utf-8")
        buffer = self._buffer
        buffer.append(_REC_STRING)
        buffer += encode_varint(len(raw))
        buffer += raw
        sid = len(self._strings)
        self._strings[text] = sid
        return sid

    # --- encoding hot path ------------------------------------------------

    def emit_raw(self, kind: str, time: int, data: Dict[str, Any]) -> None:
        """Append one event without an :class:`Event` wrapper.

        In streaming mode the bus uses :attr:`raw_encoders` to skip even
        this frame on schema hits; this entry point covers kinds the
        table lacks and non-bus callers.  In deferred mode it is the
        whole hot path: one tuple build and a list append.
        """
        pending = self._pending
        if pending is not None:
            pending.append((kind, time, data))
            return
        encoder = self._hot.get(kind)
        if encoder is not None:
            encoder(time, data)
        else:
            self._slow_path(kind, time, data)

    def __call__(self, event: Event) -> None:
        """Bus subscriber entry point: append one encoded event."""
        pending = self._pending
        if pending is not None:
            pending.append((event.kind, event.time, event.data))
            return
        encoder = self._hot.get(event.kind)
        if encoder is not None:
            encoder(event.time, event.data)
        else:
            self._slow_path(event.kind, event.time, event.data)

    def _slow_path(self, kind: str, time: int,
                   data: Dict[str, Any]) -> None:
        """First sighting of a shape, or an event its schema rejects.

        Defines the schema on first sighting (so *future* events of the
        shape take the fast path) and writes the current event as a
        self-describing generic record — never recursing back through
        the freshly compiled encoder.
        """
        state = self._state
        delta = time - state[0]
        shape = (kind, tuple(data))
        if shape not in self._by_shape:
            # Raises TypeError on an unencodable value before any bytes
            # are written (the generic record would reject it too).
            self._define_schema(shape, data)
        self._generic(kind, data, delta)
        # state advances only after the event is fully in the buffer, so
        # a TypeError leaves the delta chain of written records intact
        state[0] = time
        state[1] += 1
        if len(self._buffer) >= _FLUSH_BYTES:
            self._flush()

    def _define_schema(self, shape: Tuple[str, Tuple[str, ...]],
                       data: Dict[str, Any]) -> _Schema:
        """Compile and register a schema; emits its definition record."""
        kind, keys = shape
        # Raises TypeError on an unencodable value before any bytes are
        # written, so the log stays valid.
        types = tuple(_type_code(value) for value in data.values())
        strings = self._strings
        kind_id = strings.get(kind)
        if kind_id is None:
            kind_id = self._intern(kind)
        key_ids = []
        for key in keys:
            key_id = strings.get(key)
            if key_id is None:
                key_id = self._intern(key)
            key_ids.append(key_id)
        schema = _Schema(self._schema_count, kind, keys, types, self)
        self._schema_count += 1
        buffer = self._buffer
        buffer.append(_REC_SCHEMA)
        buffer += encode_varint(kind_id)
        buffer += encode_varint(len(keys))
        for key_id, code in zip(key_ids, types):
            buffer += encode_varint(key_id)
            buffer.append(code)
        self._by_shape[shape] = schema
        self._hot.setdefault(kind, schema.encode)
        return schema

    def _generic(self, kind: str, data: Dict[str, Any], delta: int) -> None:
        """Self-describing record for events that fit no schema."""
        strings = self._strings
        record = bytearray()
        kind_id = strings.get(kind)
        if kind_id is None:
            kind_id = self._intern(kind)
        record.append(_REC_EVENT)
        record += encode_varint(kind_id)
        record += encode_zigzag(delta)
        record += encode_varint(len(data))
        for key, value in data.items():
            key_id = strings.get(key)
            if key_id is None:
                key_id = self._intern(key)
            record += encode_varint(key_id)
            value_type = type(value)
            if value_type is bool:
                record.append(_VAL_TRUE if value else _VAL_BOOL)
            elif value_type is int:
                record.append(_VAL_INT)
                record += encode_zigzag(value)
            elif value_type is str:
                value_id = strings.get(value)
                if value_id is None:
                    value_id = self._intern(value)
                record.append(_VAL_STR)
                record += encode_varint(value_id)
            elif value_type is float:
                record.append(_VAL_FLOAT)
                record += _FLOAT_STRUCT.pack(value)
            elif value is None:
                record.append(_VAL_NONE)
            else:
                raise TypeError(
                    "binlog cannot encode %s field %r of type %s"
                    % (kind, key, value_type.__name__))
        self._buffer += record

    # --- lifecycle --------------------------------------------------------

    def _flush(self) -> None:
        chunk = bytes(self._buffer)
        self._hash.update(chunk)
        self._file.write(chunk)
        del self._buffer[:]

    def close(self) -> None:
        """Seal the log: encode any deferred events, flush, write the
        footer, and release the file."""
        if self._sealed:
            return
        pending = self._pending
        if pending is not None:
            # Deferred capture: run the whole encoding pipeline now, in
            # capture order, through the same schema machinery streaming
            # mode uses — the sealed bytes come out identical.
            self._pending = None
            hot_get = self._hot.get
            slow_path = self._slow_path
            for kind, time, data in pending:
                encoder = hot_get(kind)
                if encoder is not None:
                    encoder(time, data)
                else:
                    slow_path(kind, time, data)
        self._sealed = True
        self._flush()
        footer = bytearray((_REC_FOOTER,))
        footer += _FOOTER_STRUCT.pack(self.event_count)
        footer += self._hash.digest()
        self._file.write(bytes(footer))
        self._file.flush()
        if self._owns_file:
            self._file.close()

    def __enter__(self) -> "BinaryTraceWriter":
        return self

    def __exit__(self, exc_type: Optional[Type[BaseException]],
                 exc: Optional[BaseException],
                 tb: Optional[TracebackType]) -> None:
        self.close()


# --- reader ------------------------------------------------------------------


class _ReadSchema:
    """Decoded schema definition: field names, types, slab geometry."""

    __slots__ = ("kind", "fields", "unpack", "size")

    def __init__(self, kind: str, fields: List[Tuple[str, int]]) -> None:
        self.kind = kind
        self.fields = fields
        fmt = "<q" + "".join(_STRUCT_CHAR[code] for __, code in fields
                             if code != _VAL_NONE)
        packer = struct.Struct(fmt)
        self.unpack = packer.unpack_from
        self.size = packer.size


class BinaryTraceReader:
    """Iterate a sealed binary log as the captured :class:`Event` stream.

    The whole file is validated up front — magic, version, structural
    integrity, footer count, and content hash — so iteration never yields
    events from a log that would later turn out to be truncated.  Events
    are decoded lazily, one per ``next()``.
    """

    def __init__(self, path_or_file: Any) -> None:
        if hasattr(path_or_file, "read"):
            raw = path_or_file.read()
        else:
            with open(path_or_file, "rb") as handle:
                raw = handle.read()
        self._raw = raw
        self._body_end = 0
        self._string_count = 0
        self._schema_count = 0
        self._kinds: Dict[str, int] = {}
        self._time_first: Optional[int] = None
        self._time_last: Optional[int] = None
        self.event_count = self._validate()

    # --- validation -------------------------------------------------------

    def _validate(self) -> int:
        raw = self._raw
        if len(raw) < len(MAGIC) + 1:
            raise BinlogError("not a binary trace: file shorter than header")
        if raw[:len(MAGIC)] != MAGIC:
            raise BinlogError("not a binary trace: bad magic %r"
                              % raw[:len(MAGIC)])
        if raw[len(MAGIC)] != VERSION:
            raise BinlogError("unsupported binlog version %d (expected %d)"
                              % (raw[len(MAGIC)], VERSION))
        footer_size = 1 + _FOOTER_STRUCT.size + _DIGEST_SIZE
        if len(raw) < len(MAGIC) + 1 + footer_size:
            raise BinlogError("truncated binary trace: no footer")
        footer_at = len(raw) - footer_size
        if raw[footer_at] != _REC_FOOTER:
            raise BinlogError("truncated binary trace: footer record missing "
                              "(log was not sealed or was cut short)")
        (count,) = _FOOTER_STRUCT.unpack_from(raw, footer_at + 1)
        digest = raw[footer_at + 1 + _FOOTER_STRUCT.size:]
        actual = hashlib.sha256(raw[:footer_at]).digest()
        if digest != actual:
            raise BinlogError("corrupted binary trace: content hash mismatch")
        self._body_end = footer_at
        # Structural pass: decode everything once so a malformed body (or
        # a count mismatch) fails here, not mid-iteration; summary stats
        # for info() fall out for free.
        kinds = self._kinds
        seen = 0
        for event in self._decode():
            kinds[event.kind] = kinds.get(event.kind, 0) + 1
            if seen == 0:
                self._time_first = event.time
            self._time_last = event.time
            seen += 1
        if seen != count:
            raise BinlogError(
                "corrupted binary trace: footer says %d events, body "
                "decodes %d" % (count, seen))
        return int(count)

    # --- decoding ---------------------------------------------------------

    def _read_varint(self, raw: bytes, pos: int) -> Tuple[int, int]:
        result = 0
        shift = 0
        end = self._body_end
        while True:
            if pos >= end:
                raise BinlogError("truncated binary trace: varint runs past "
                                  "the footer")
            byte = raw[pos]
            pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result, pos
            shift += 7

    def _decode(self) -> Iterator[Event]:
        raw = self._raw
        end = self._body_end
        read_varint = self._read_varint
        strings: List[str] = []
        schemas: List[_ReadSchema] = []
        last_time = 0
        pos = len(MAGIC) + 1
        while pos < end:
            tag = raw[pos]
            pos += 1
            if tag == _REC_FAST:
                schema_id, pos = read_varint(raw, pos)
                try:
                    schema = schemas[schema_id]
                except IndexError:
                    raise BinlogError("corrupted binary trace: event "
                                      "references undefined schema %d"
                                      % schema_id) from None
                if pos + schema.size > end:
                    raise BinlogError("truncated binary trace: event slab "
                                      "runs past the footer")
                values = schema.unpack(raw, pos)
                pos += schema.size
                last_time += values[0]
                data: Dict[str, Any] = {}
                index = 1
                try:
                    for key, code in schema.fields:
                        if code == _VAL_NONE:
                            data[key] = None
                            continue
                        value = values[index]
                        index += 1
                        if code == _VAL_STR:
                            data[key] = strings[value]
                        elif code == _VAL_BOOL:
                            data[key] = value != 0
                        else:  # int slab slot or float slab slot
                            data[key] = value
                except IndexError:
                    raise BinlogError("corrupted binary trace: string id "
                                      "references an undefined table entry"
                                      ) from None
                yield Event(schema.kind, last_time, data)
                continue
            if tag == _REC_STRING:
                length, pos = read_varint(raw, pos)
                if pos + length > end:
                    raise BinlogError("truncated binary trace: string runs "
                                      "past the footer")
                strings.append(raw[pos:pos + length].decode("utf-8"))
                pos += length
                self._string_count = len(strings)
                continue
            if tag == _REC_SCHEMA:
                kind_id, pos = read_varint(raw, pos)
                nfields, pos = read_varint(raw, pos)
                fields: List[Tuple[str, int]] = []
                try:
                    for __ in range(nfields):
                        key_id, pos = read_varint(raw, pos)
                        if pos >= end:
                            raise BinlogError("truncated binary trace: "
                                              "schema field type missing")
                        code = raw[pos]
                        pos += 1
                        if code not in (_VAL_NONE, _VAL_BOOL, _VAL_INT,
                                        _VAL_FLOAT, _VAL_STR):
                            raise BinlogError("corrupted binary trace: "
                                              "unknown schema type 0x%02x"
                                              % code)
                        fields.append((strings[key_id], code))
                    schemas.append(_ReadSchema(strings[kind_id], fields))
                except IndexError:
                    raise BinlogError("corrupted binary trace: string id "
                                      "references an undefined table entry"
                                      ) from None
                self._schema_count = len(schemas)
                continue
            if tag != _REC_EVENT:
                raise BinlogError("corrupted binary trace: unknown record "
                                  "tag 0x%02x at byte %d" % (tag, pos - 1))
            kind_id, pos = read_varint(raw, pos)
            zigzag, pos = read_varint(raw, pos)
            last_time += decode_zigzag(zigzag)
            nfields, pos = read_varint(raw, pos)
            generic: Dict[str, Any] = {}
            try:
                kind = strings[kind_id]
                for __ in range(nfields):
                    key_id, pos = read_varint(raw, pos)
                    if pos >= end:
                        raise BinlogError("truncated binary trace: field "
                                          "value missing")
                    value_tag = raw[pos]
                    pos += 1
                    value: Any
                    if value_tag == _VAL_INT:
                        value, pos = read_varint(raw, pos)
                        value = decode_zigzag(value)
                    elif value_tag == _VAL_STR:
                        sid, pos = read_varint(raw, pos)
                        value = strings[sid]
                    elif value_tag == _VAL_FLOAT:
                        if pos + _FLOAT_STRUCT.size > end:
                            raise BinlogError("truncated binary trace: "
                                              "float runs past the footer")
                        (value,) = _FLOAT_STRUCT.unpack_from(raw, pos)
                        pos += _FLOAT_STRUCT.size
                    elif value_tag == _VAL_TRUE:
                        value = True
                    elif value_tag == _VAL_BOOL:
                        value = False
                    elif value_tag == _VAL_NONE:
                        value = None
                    else:
                        raise BinlogError(
                            "corrupted binary trace: unknown value tag "
                            "0x%02x" % value_tag)
                    generic[strings[key_id]] = value
            except IndexError:
                raise BinlogError("corrupted binary trace: string id "
                                  "references an undefined table entry"
                                  ) from None
            yield Event(kind, last_time, generic)

    def __iter__(self) -> Iterator[Event]:
        return self._decode()

    def __len__(self) -> int:
        return self.event_count

    # --- summaries --------------------------------------------------------

    def info(self) -> Dict[str, Any]:
        """Log summary: counts, time range, kind histogram, table sizes."""
        return {
            "format": FORMAT,
            "events": self.event_count,
            "kinds": dict(self._kinds),
            "strings": self._string_count,
            "schemas": self._schema_count,
            "time_first_ns": self._time_first,
            "time_last_ns": self._time_last,
            "size_bytes": len(self._raw),
        }


# --- conveniences ------------------------------------------------------------


def read_events(path_or_file: Any) -> Iterator[Event]:
    """Validate ``path_or_file`` and iterate its events (convenience)."""
    return iter(BinaryTraceReader(path_or_file))


def replay(source: Any, *subscribers: Any) -> int:
    """Deliver a binlog's events to ``subscribers`` in capture order.

    ``source`` is a path, open binary file, or :class:`BinaryTraceReader`.
    Each subscriber is called exactly as the live bus would have called
    it, so replaying through :class:`ChromeTraceBuilder` or
    :class:`SchedStat` reproduces the live-collected state bit for bit.
    Returns the number of events delivered.
    """
    reader = (source if isinstance(source, BinaryTraceReader)
              else BinaryTraceReader(source))
    count = 0
    for event in reader:
        for subscriber in subscribers:
            subscriber(event)
        count += 1
    return count


def write_events(events: Iterable[Event], path_or_file: Any) -> int:
    """Encode an event stream into a sealed binlog (tests, converters).

    Returns the number of events written.
    """
    with BinaryTraceWriter(path_or_file) as writer:
        for event in events:
            writer(event)
        return writer.event_count
