"""Chrome-trace / Perfetto export of an observability event stream.

Converts bus events into `Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
JSON — the format ``chrome://tracing`` and ``ui.perfetto.dev`` load
natively.  Track layout:

* **pid 1 "threads"** — one track (tid = simulated thread id) per thread;
  execution slices are ``X`` complete events named after the thread, with
  the leaf pathname in ``args``; wakes/blocks/preempts are ``i`` instants
  on the same track.
* **pid 0 "cpus"** — one track per simulated CPU mirroring the slices, so
  per-CPU occupancy is visible at a glance; interrupts land here.
* **pid 2 "virtual-time"** — one ``C`` counter track per scheduling node,
  plotting SFQ virtual time; sanitizer violations are instants here, on
  tid 0.

Timestamps are microseconds (floats) as the format requires; simulation
times are nanoseconds, so sub-microsecond detail survives as fractions.

Typical use::

    builder = ChromeTraceBuilder()
    with BUS.subscription(builder):
        machine.run_until(horizon)
    builder.write("trace.json")      # open in ui.perfetto.dev
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.obs import events as ev

#: synthetic process ids of the three track groups
PID_CPUS = 0
PID_THREADS = 1
PID_VTIME = 2

#: event kinds rendered as instants on the emitting thread's track;
#: a read-only rendering table, reviewed as SL007-exempt
_INSTANT_KINDS = {  # schedlint: disable=SL007
    ev.WAKE: "wake",
    ev.BLOCK: "block",
    ev.PREEMPT: "preempt",
    ev.RUNNABLE: "runnable",
    ev.SPAWN: "spawn",
    ev.EXIT: "exit",
}


def _us(time_ns: int) -> float:
    """Nanoseconds -> Trace Event Format microseconds."""
    return time_ns / 1000.0


class ChromeTraceBuilder:
    """Event-bus subscriber building a Trace Event Format payload."""

    def __init__(self) -> None:
        self._events: List[Dict[str, Any]] = []
        self._thread_names: Dict[int, str] = {}
        self._cpu_seen: Dict[int, bool] = {}
        self._vtime_tracks: Dict[str, int] = {}
        self.event_count = 0

    # --- subscriber -------------------------------------------------------

    def __call__(self, event: ev.Event) -> None:
        """Bus subscriber entry point: translate one event."""
        self.event_count += 1
        kind = event.kind
        data = event.data
        if kind == ev.SLICE:
            self._on_slice(event.time, data)
        elif kind in _INSTANT_KINDS:
            self._instant(_INSTANT_KINDS[kind], event.time,
                          PID_THREADS, data.get("tid", 0), data)
        elif kind == ev.INTERRUPT:
            self._instant("interrupt", event.time,
                          PID_CPUS, data.get("cpu", 0), data)
        elif kind == ev.VTIME_ADVANCE:
            self._on_vtime(event.time, data)
        elif kind == ev.VIOLATION:
            self._instant("SCHEDSAN " + data.get("rule", "violation"),
                          event.time, PID_VTIME, 0, data)
        elif kind == ev.FAULT_INJECT:
            self._instant("FAULT " + data.get("fault", "unknown"),
                          event.time, PID_CPUS, 0, data)
        # dispatch/charge/tag-update carry no geometry of their own; the
        # execution span is the slice stream, which is exact.

    # --- translation ------------------------------------------------------

    def _remember_thread(self, tid: int, data: Dict[str, Any]) -> None:
        name = data.get("name")
        if name and tid not in self._thread_names:
            self._thread_names[tid] = name

    def _on_slice(self, end_ns: int, data: Dict[str, Any]) -> None:
        tid = data.get("tid", 0)
        cpu = data.get("cpu", 0)
        start_ns = data.get("start", end_ns)
        self._remember_thread(tid, data)
        self._cpu_seen[cpu] = True
        name = self._thread_names.get(tid, "tid-%d" % tid)
        duration = _us(end_ns) - _us(start_ns)
        args = {"node": data.get("node", "/"), "work": data.get("work", 0)}
        self._events.append({
            "name": name, "ph": "X", "ts": _us(start_ns), "dur": duration,
            "pid": PID_THREADS, "tid": tid, "cat": "exec", "args": args,
        })
        self._events.append({
            "name": name, "ph": "X", "ts": _us(start_ns), "dur": duration,
            "pid": PID_CPUS, "tid": cpu, "cat": "cpu", "args": args,
        })

    def _instant(self, name: str, time_ns: int, pid: int, tid: int,
                 data: Dict[str, Any]) -> None:
        self._remember_thread(data.get("tid", -1), data)
        self._events.append({
            "name": name, "ph": "i", "ts": _us(time_ns), "pid": pid,
            "tid": tid, "s": "t", "cat": "sched",
            "args": {k: v for k, v in data.items() if k != "name"},
        })

    def _on_vtime(self, time_ns: int, data: Dict[str, Any]) -> None:
        node = data["node"]
        track = self._vtime_tracks.setdefault(node, len(self._vtime_tracks))
        self._events.append({
            "name": "vtime %s" % node, "ph": "C", "ts": _us(time_ns),
            "pid": PID_VTIME, "tid": track, "cat": "vtime",
            "args": {"v": data["v"]},
        })

    # --- output -----------------------------------------------------------

    def _metadata(self) -> List[Dict[str, Any]]:
        meta: List[Dict[str, Any]] = []

        def name_event(name: str, pid: int, tid: Optional[int] = None,
                       what: str = "thread_name") -> Dict[str, Any]:
            event: Dict[str, Any] = {
                "name": what, "ph": "M", "ts": 0.0, "pid": pid,
                "args": {"name": name},
            }
            event["tid"] = 0 if tid is None else tid
            return event

        meta.append(name_event("cpus", PID_CPUS, what="process_name"))
        meta.append(name_event("threads", PID_THREADS, what="process_name"))
        meta.append(name_event("virtual-time", PID_VTIME,
                               what="process_name"))
        for cpu in sorted(self._cpu_seen):
            meta.append(name_event("cpu%d" % cpu, PID_CPUS, cpu))
        for tid in sorted(self._thread_names):
            meta.append(name_event(self._thread_names[tid], PID_THREADS, tid))
        return meta

    def to_dict(self) -> Dict[str, Any]:
        """The complete Trace Event Format payload (JSON object form)."""
        return {
            "traceEvents": self._metadata() + list(self._events),
            "displayTimeUnit": "ms",
            "otherData": {"source": "repro.obs", "format": "hsfq-sim"},
        }

    def to_json(self, indent: int = 0) -> str:
        """JSON text of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent or None,
                          sort_keys=True)

    def write(self, path: str, indent: int = 0) -> None:
        """Write the trace JSON to ``path`` (open it in ui.perfetto.dev)."""
        with open(path, "w") as handle:
            handle.write(self.to_json(indent))


#: trace-event phases this exporter may produce
_KNOWN_PHASES = ("X", "i", "C", "M")


def validate_chrome_trace(payload: Dict[str, Any]) -> int:
    """Validate a Trace Event Format payload; returns the event count.

    Checks the JSON-object container shape and, for every event, the
    required fields (``ph``/``ts``/``pid``/``tid``, ``dur`` on complete
    events, ``args.name`` on metadata).  Raises :class:`ValueError` on the
    first problem — used by tests, ``make obs-demo``, and the CLI
    ``report`` command before trusting a file.
    """
    if not isinstance(payload, dict):
        raise ValueError("trace payload must be a JSON object")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace payload missing 'traceEvents' list")
    for index, event in enumerate(events):
        where = "traceEvents[%d]" % index
        if not isinstance(event, dict):
            raise ValueError("%s is not an object" % where)
        phase = event.get("ph")
        if phase not in _KNOWN_PHASES:
            raise ValueError("%s has unknown phase %r" % (where, phase))
        for key in ("ts", "pid", "tid"):
            if not isinstance(event.get(key), (int, float)):
                raise ValueError("%s missing numeric %r" % (where, key))
        if phase == "X" and not isinstance(event.get("dur"), (int, float)):
            raise ValueError("%s complete event missing 'dur'" % where)
        if phase == "M" and "name" not in event.get("args", {}):
            raise ValueError("%s metadata event missing args.name" % where)
    return len(events)


def summarize_chrome_trace(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Aggregate a validated trace: per-track occupancy and instant counts.

    Returns ``{"tracks": [...], "instants": {...}, "counters": [...],
    "events": n}`` where each track row carries the resolved track name,
    slice count, and total busy microseconds — the summary the CLI
    ``report`` command prints.
    """
    validate_chrome_trace(payload)
    names: Dict[Any, str] = {}
    processes: Dict[Any, str] = {}
    tracks: Dict[Any, Dict[str, Any]] = {}
    instants: Dict[str, int] = {}
    counters: Dict[str, int] = {}
    for event in payload["traceEvents"]:
        phase = event["ph"]
        key = (event["pid"], event["tid"])
        if phase == "M":
            if event["name"] == "thread_name":
                names[key] = event["args"]["name"]
            elif event["name"] == "process_name":
                processes[event["pid"]] = event["args"]["name"]
        elif phase == "X":
            track = tracks.setdefault(key, {"slices": 0, "busy_us": 0.0})
            track["slices"] += 1
            track["busy_us"] += event["dur"]
        elif phase == "i":
            instants[event["name"]] = instants.get(event["name"], 0) + 1
        elif phase == "C":
            counters[event["name"]] = counters.get(event["name"], 0) + 1
    rows = []
    for key in sorted(tracks):
        pid, tid = key
        label = "%s/%s" % (processes.get(pid, "pid%s" % pid),
                           names.get(key, "tid%s" % tid))
        rows.append({"track": label, "slices": tracks[key]["slices"],
                     "busy_us": tracks[key]["busy_us"]})
    return {"tracks": rows, "instants": instants, "counters": counters,
            "events": len(payload["traceEvents"])}
