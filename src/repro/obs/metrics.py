"""Metrics: counters, gauges, and fixed-bucket histograms.

The registry is deliberately minimal — the ``/proc``-file school of
telemetry, not a time-series database: metrics are named, cumulative, and
cheap to update, and :meth:`MetricsRegistry.snapshot` returns plain dicts
ready for JSON or table rendering.

:class:`SchedulerMetrics` is an event-bus subscriber that derives the
latency distributions the paper reasons about (dispatch latency from
runnable to CPU, run delay from wakeup to CPU, per-charge service quanta)
from the structured event stream, so any instrumented run gets them for
free::

    metrics = SchedulerMetrics()
    with BUS.subscription(metrics):
        machine.run_until(horizon)
    print(metrics.registry.render())
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs import events as ev

#: default histogram bucket upper bounds for nanosecond latencies
#: (10 us .. 1 s, roughly logarithmic)
DEFAULT_LATENCY_BUCKETS_NS: Tuple[int, ...] = (
    10_000, 100_000, 1_000_000, 2_000_000, 5_000_000, 10_000_000,
    20_000_000, 50_000_000, 100_000_000, 500_000_000, 1_000_000_000,
)

#: default bucket upper bounds for per-quantum work (instructions)
DEFAULT_WORK_BUCKETS: Tuple[int, ...] = (
    1_000, 10_000, 100_000, 500_000, 1_000_000, 2_000_000, 5_000_000,
    10_000_000,
)


class Counter:
    """A monotonically increasing named value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError("counter increments must be non-negative")
        self.value += amount

    def __repr__(self) -> str:
        return "Counter(%s=%d)" % (self.name, self.value)


class Gauge:
    """A named value that can move in both directions."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def set(self, value: float) -> None:
        """Replace the gauge's current value."""
        self.value = value

    def __repr__(self) -> str:
        return "Gauge(%s=%r)" % (self.name, self.value)


class Histogram:
    """A fixed-bucket histogram of non-negative observations.

    ``bounds`` are inclusive upper edges of the buckets, strictly
    increasing; one implicit overflow bucket catches everything larger.
    Only bucket counts are stored (plus min/max/sum), so memory is O(len
    (bounds)) regardless of observation count — the standard
    kernel-histogram trade-off: percentiles are estimates interpolated
    within a bucket, exact at bucket edges.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total",
                 "min_value", "max_value")

    def __init__(self, name: str,
                 bounds: Sequence[int] = DEFAULT_LATENCY_BUCKETS_NS) -> None:
        bounds = tuple(bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("bucket bounds must be strictly increasing")
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1: overflow bucket
        self.count = 0
        self.total = 0
        self.min_value: Optional[float] = None
        self.max_value: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one observation (must be non-negative)."""
        if value < 0:
            raise ValueError("histogram observations must be non-negative")
        index = bisect.bisect_left(self.bounds, value)
        self.counts[index] += 1
        self.count += 1
        self.total += value
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def percentile(self, p: float) -> float:
        """Estimated value at percentile ``p`` (0..100).

        Walks the cumulative bucket counts to the target rank and
        interpolates linearly inside the containing bucket; the overflow
        bucket reports the maximum observed value.  Exact whenever all
        observations in the containing bucket sit on its upper edge (the
        property the tests pin down).
        """
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100], got %r" % (p,))
        if self.count == 0:
            return 0.0
        target = p / 100.0 * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= target and bucket_count > 0:
                if index >= len(self.bounds):  # overflow bucket
                    return float(self.max_value or 0)
                lower = self.bounds[index - 1] if index > 0 else 0
                upper = self.bounds[index]
                fraction = (target - previous) / bucket_count
                return lower + (upper - lower) * min(1.0, max(0.0, fraction))
        return float(self.max_value or 0)

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict view: counts per bucket plus summary statistics."""
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min_value,
            "max": self.max_value,
            "mean": self.mean,
            "buckets": [
                {"le": bound, "count": count}
                for bound, count in zip(self.bounds, self.counts)
            ] + [{"le": "inf", "count": self.counts[-1]}],
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def __repr__(self) -> str:
        return "Histogram(%s, n=%d)" % (self.name, self.count)


class MetricsRegistry:
    """A named collection of counters, gauges, and histograms.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: asking twice
    for the same name returns the same object, asking for an existing name
    as a different type raises.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    def _get_or_create(self, name: str, kind: type, *args: Any) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name, *args)
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise ValueError(
                "metric %r already registered as %s"
                % (name, type(metric).__name__))
        return metric

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str,
                  bounds: Sequence[int] = DEFAULT_LATENCY_BUCKETS_NS
                  ) -> Histogram:
        """Get or create the histogram called ``name``.

        ``bounds`` applies only at creation; a second call returns the
        existing histogram unchanged.
        """
        metric = self._metrics.get(name)
        if metric is None:
            metric = Histogram(name, bounds)
            self._metrics[name] = metric
        elif not isinstance(metric, Histogram):
            raise ValueError(
                "metric %r already registered as %s"
                % (name, type(metric).__name__))
        return metric

    def names(self) -> List[str]:
        """Sorted names of every registered metric."""
        return sorted(self._metrics)

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict view of every metric, keyed by name."""
        out: Dict[str, Any] = {}
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                out[name] = metric.snapshot()
            else:
                out[name] = metric.value
        return out

    def render(self) -> str:
        """Human-readable multi-line report of every metric."""
        lines: List[str] = []
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                lines.append(
                    "%-32s n=%-8d mean=%-12.1f p50=%-12.1f p95=%-12.1f "
                    "p99=%.1f" % (name, metric.count, metric.mean,
                                  metric.percentile(50), metric.percentile(95),
                                  metric.percentile(99)))
            else:
                lines.append("%-32s %s" % (name, metric.value))
        return "\n".join(lines)


class SchedulerMetrics:
    """Event-bus subscriber deriving scheduler metrics from the stream.

    Maintains, in a :class:`MetricsRegistry`:

    * ``sched.dispatches`` / ``sched.preemptions`` / ``sched.charges`` /
      ``sched.interrupts`` / ``sched.violations`` — counters;
    * ``sched.overhead_ns`` / ``sched.interrupt_ns`` — cumulative stolen
      time counters;
    * ``sched.dispatch_latency_ns`` — histogram of runnable→dispatch
      delays (the paper's scheduling-delay quantity, Figure 9's x-axis);
    * ``sched.run_delay_ns`` — histogram of wakeup→dispatch delays;
    * ``sched.quantum_work`` — histogram of per-charge service lengths;
    * ``sched.quantum_overrun_work`` — histogram of work charged beyond
      the granted quantum (0 everywhere in this simulator; the metric
      exists so a regressing machine shows up immediately).

    Subscribe it to a bus (``BUS.subscription(metrics)``) and read
    ``metrics.registry`` afterwards.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._runnable_at: Dict[int, int] = {}
        self._woke_at: Dict[int, int] = {}
        self._granted: Dict[int, int] = {}
        reg = self.registry
        self._dispatches = reg.counter("sched.dispatches")
        self._preemptions = reg.counter("sched.preemptions")
        self._charges = reg.counter("sched.charges")
        self._interrupts = reg.counter("sched.interrupts")
        self._violations = reg.counter("sched.violations")
        self._overhead = reg.counter("sched.overhead_ns")
        self._interrupt_ns = reg.counter("sched.interrupt_ns")
        self._dispatch_latency = reg.histogram("sched.dispatch_latency_ns")
        self._run_delay = reg.histogram("sched.run_delay_ns")
        self._quantum_work = reg.histogram("sched.quantum_work",
                                           DEFAULT_WORK_BUCKETS)
        self._overrun = reg.histogram("sched.quantum_overrun_work",
                                      DEFAULT_WORK_BUCKETS)

    def __call__(self, event: ev.Event) -> None:
        """Bus subscriber entry point: fold one event into the registry."""
        kind = event.kind
        data = event.data
        if kind == ev.RUNNABLE:
            self._runnable_at.setdefault(data["tid"], event.time)
        elif kind == ev.WAKE:
            self._woke_at[data["tid"]] = event.time
        elif kind == ev.DISPATCH:
            tid = data["tid"]
            self._dispatches.inc()
            self._overhead.inc(data.get("overhead_ns", 0))
            runnable_at = self._runnable_at.pop(tid, None)
            if runnable_at is not None:
                self._dispatch_latency.observe(event.time - runnable_at)
            woke_at = self._woke_at.pop(tid, None)
            if woke_at is not None:
                self._run_delay.observe(event.time - woke_at)
            self._granted[tid] = data.get("quantum_work", 0)
        elif kind == ev.CHARGE:
            tid = data["tid"]
            work = data["work"]
            self._charges.inc()
            self._quantum_work.observe(work)
            granted = self._granted.pop(tid, None)
            if granted:
                self._overrun.observe(max(0, work - granted))
        elif kind == ev.PREEMPT:
            self._preemptions.inc()
        elif kind == ev.INTERRUPT:
            self._interrupts.inc()
            self._interrupt_ns.inc(data.get("service", 0))
        elif kind == ev.VIOLATION:
            self._violations.inc()
        elif kind == ev.EXIT:
            tid = data.get("tid")
            self._runnable_at.pop(tid, None)
            self._woke_at.pop(tid, None)
            self._granted.pop(tid, None)
