"""The observability event bus: typed, timestamped structured events.

The bus is the kernel-tracepoint analogue of this reproduction: emit sites
are compiled into the machines, the hierarchy, the ``hsfq`` system-call
layer, the fair-queuing baselines, and SCHEDSAN, but every site is guarded
by :attr:`EventBus.active`::

    if BUS.active:
        BUS.emit(DISPATCH, now, tid=thread.tid, node=leaf.path, ...)

With no subscriber attached the guard is a single attribute read and no
event object (or keyword dict) is ever constructed, so traced-off runs are
byte-identical to an un-instrumented build.  Subscribers are plain
callables invoked synchronously, in subscription order, with one
:class:`Event`; they must observe, never mutate, simulation state.

The process-wide default bus is :data:`BUS`.  A module-level bus (rather
than one plumbed through every constructor) mirrors how kernel tracepoints
work and lets deeply nested components (SFQ queues, leaf schedulers) emit
without API changes; tests that subscribe temporarily should use
:meth:`EventBus.subscription` so the bus is always left clean.
"""

from __future__ import annotations

import contextlib
from typing import Any, Callable, Dict, Iterator, List, Optional

# --- event kinds (the catalogue; see docs/OBSERVABILITY.md) ------------------

#: thread created and admitted to its scheduler
SPAWN = "spawn"
#: thread became eligible to run
RUNNABLE = "runnable"
#: thread was given a CPU (fields: tid, node, cpu, depth, switched,
#: overhead_ns, quantum_work)
DISPATCH = "dispatch"
#: a contiguous run of execution finished (fields: tid, node, cpu, start, work)
SLICE = "slice"
#: the running thread was preempted mid-quantum
PREEMPT = "preempt"
#: thread blocked (fields: tid, node, wake; wake == -1 means a sync wait)
BLOCK = "block"
#: thread woke up
WAKE = "wake"
#: a completed quantum was charged to the scheduler (fields: tid, node, work)
CHARGE = "charge"
#: thread exited
EXIT = "exit"
#: an interrupt stole CPU time (fields: cpu, service)
INTERRUPT = "interrupt"
#: an SFQ (or fair-queuing) start/finish tag was restamped
#: (fields: node, start, finish, weight; tags as floats, for reporting only)
TAG_UPDATE = "tag-update"
#: a queue's virtual time moved forward (fields: node, v)
VTIME_ADVANCE = "vtime-advance"
#: SCHEDSAN detected an invariant violation (fields: rule, node, message)
VIOLATION = "sanitizer-violation"
#: a scheduling-structure node was created (hsfq_mknod)
NODE_CREATE = "node-create"
#: a scheduling-structure node was removed (hsfq_rmnod)
NODE_REMOVE = "node-remove"
#: a thread was moved between leaves (hsfq_move)
THREAD_MOVE = "thread-move"
#: a node's weight changed (hsfq_admin SETWEIGHT)
WEIGHT_CHANGE = "weight-change"
#: faultlab injected a fault (fields: fault, action, plus fault-specific)
FAULT_INJECT = "fault-inject"

#: every event kind the instrumented tree can emit
KINDS = (
    SPAWN, RUNNABLE, DISPATCH, SLICE, PREEMPT, BLOCK, WAKE, CHARGE, EXIT,
    INTERRUPT, TAG_UPDATE, VTIME_ADVANCE, VIOLATION, NODE_CREATE,
    NODE_REMOVE, THREAD_MOVE, WEIGHT_CHANGE, FAULT_INJECT,
)

Subscriber = Callable[["Event"], None]

#: bound allocator used by the emit hot path (see :meth:`EventBus.emit`)
_new_event = object.__new__


class Event:
    """One structured event: a kind, a simulation timestamp, and fields.

    ``time`` is integer simulation nanoseconds; ``data`` is a flat dict of
    event-kind-specific fields (see the kind constants above, or
    docs/OBSERVABILITY.md for the full catalogue).
    """

    __slots__ = ("kind", "time", "data")

    def __init__(self, kind: str, time: int, data: Dict[str, Any]) -> None:
        self.kind = kind
        self.time = time
        self.data = data

    def get(self, key: str, default: Any = None) -> Any:
        """Field accessor with a default, like ``dict.get``."""
        return self.data.get(key, default)

    def __repr__(self) -> str:
        return "Event(%s, t=%d, %r)" % (self.kind, self.time, self.data)


class EventBus:
    """A low-overhead synchronous pub/sub bus for :class:`Event` objects.

    Subscribers are invoked in subscription order; the order — and
    everything else about the bus — is deterministic.  Subscriber
    exceptions propagate to the emit site: the bus is a development tool
    and must not silently swallow errors.
    """

    __slots__ = ("_subscribers", "active", "_raw", "_raw_table")

    def __init__(self) -> None:
        self._subscribers: List[Subscriber] = []
        #: True when at least one subscriber is attached.  A plain attribute
        #: (not a property) kept in sync by subscribe/unsubscribe/clear: emit
        #: sites sit on per-dispatch paths and guard with ``BUS.active``, so
        #: the disabled cost must be a single attribute load — no descriptor
        #: call, no list truth test.  Never assign it from outside the bus.
        self.active: bool = False
        #: Raw-consumer fast path: when the *only* subscriber exposes an
        #: ``emit_raw(kind, time, data)`` method (the binlog writer does),
        #: emit hands it the fields directly and never allocates an Event.
        #: If it additionally exposes ``raw_encoders`` — a live dict
        #: mapping event kind to an ``encoder(time, data)`` callable —
        #: emit dispatches per kind with no intermediate frame at all,
        #: falling back to ``emit_raw`` for kinds the dict lacks.  Both
        #: are kept in sync by subscribe/unsubscribe/clear, like
        #: ``active``.
        self._raw: Optional[Callable[[str, int, Dict[str, Any]], None]] = None
        self._raw_table: Optional[Dict[str, Callable[[int, Dict[str, Any]],
                                                     None]]] = None

    def _refresh_raw(self) -> None:
        subscribers = self._subscribers
        if len(subscribers) == 1:
            only = subscribers[0]
            self._raw = getattr(only, "emit_raw", None)
            self._raw_table = (getattr(only, "raw_encoders", None)
                               if self._raw is not None else None)
        else:
            self._raw = None
            self._raw_table = None

    def subscribe(self, subscriber: Subscriber) -> Subscriber:
        """Attach ``subscriber`` (a callable taking one event); returns it."""
        if not callable(subscriber):
            raise TypeError("subscriber must be callable, got %r" % (subscriber,))
        self._subscribers.append(subscriber)
        self.active = True
        self._refresh_raw()
        return subscriber

    def unsubscribe(self, subscriber: Subscriber) -> None:
        """Detach ``subscriber``; unknown subscribers are ignored."""
        try:
            self._subscribers.remove(subscriber)
        except ValueError:
            pass
        self.active = bool(self._subscribers)
        self._refresh_raw()

    @contextlib.contextmanager
    def subscription(self, subscriber: Subscriber) -> Iterator[Subscriber]:
        """Context manager: subscribe on entry, always unsubscribe on exit.

        The recommended way to attach collectors in tests and scripts::

            with BUS.subscription(collector):
                machine.run_until(horizon)
        """
        self.subscribe(subscriber)
        try:
            yield subscriber
        finally:
            self.unsubscribe(subscriber)

    def clear(self) -> None:
        """Detach every subscriber (end-of-session cleanup)."""
        del self._subscribers[:]
        self.active = False
        self._raw = None
        self._raw_table = None

    def subscriber_count(self) -> int:
        """How many subscribers are attached.

        SCHEDSAN's isolation guard fingerprints this to detect worker
        code leaking subscriptions across a pool merge.
        """
        return len(self._subscribers)

    def emit(self, kind: str, time: int, **data: Any) -> None:
        """Deliver ``Event(kind, time, data)`` to every subscriber.

        A no-op when no subscriber is attached — but note the keyword dict
        has already been built by the call itself, which is why hot paths
        guard with :attr:`active` instead of calling unconditionally.
        """
        table = self._raw_table
        if table is not None:
            encoder = table.get(kind)
            if encoder is not None:
                encoder(time, data)
            else:
                self._raw(kind, time, data)  # type: ignore[misc]
            return
        raw = self._raw
        if raw is not None:
            raw(kind, time, data)
            return
        subscribers = self._subscribers
        if not subscribers:
            return
        # Per-dispatch path: build the Event without the __init__ call.
        # Each emit site pays for this, so a plain constructor's extra
        # frame is measurable (~4x) at the bench_obs_overhead event rate.
        event: Event = _new_event(Event)
        event.kind = kind
        event.time = time
        event.data = data
        for subscriber in subscribers:
            subscriber(event)


#: the process-wide default bus every emit site uses
BUS = EventBus()
