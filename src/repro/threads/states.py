"""Thread lifecycle states.

The state machine is the classic OS one, minus swapping::

    NEW -> RUNNABLE <-> RUNNING
              ^            |
              |            v
              +-------- SLEEPING
    RUNNING -> EXITED

Transitions are validated by :class:`repro.threads.thread.SimThread`; an
illegal transition raises :class:`repro.errors.SchedulingError`, which in
practice has caught every machine/scheduler bookkeeping bug early.
"""

from __future__ import annotations

import enum


class ThreadState(enum.Enum):
    """Lifecycle state of a simulated thread."""

    NEW = "new"
    RUNNABLE = "runnable"
    RUNNING = "running"
    SLEEPING = "sleeping"
    EXITED = "exited"


#: Legal state transitions: mapping from state to the set of allowed successors.
ALLOWED_TRANSITIONS = {
    ThreadState.NEW: {ThreadState.RUNNABLE, ThreadState.SLEEPING, ThreadState.EXITED},
    ThreadState.RUNNABLE: {ThreadState.RUNNING},
    ThreadState.RUNNING: {ThreadState.RUNNABLE, ThreadState.SLEEPING, ThreadState.EXITED},
    ThreadState.SLEEPING: {ThreadState.RUNNABLE, ThreadState.EXITED},
    ThreadState.EXITED: set(),
}
