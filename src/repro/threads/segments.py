"""Workload segments: the protocol between a workload and the CPU machine.

A workload describes a thread's behaviour as a sequence of segments:

* :class:`Compute` — execute ``work`` instructions (possibly preempted,
  possibly spread over many quanta);
* :class:`SleepFor` — block for a fixed duration (I/O, think time);
* :class:`SleepUntil` — block until an absolute instant (periodic release);
* :class:`Exit` — terminate the thread.

The machine asks for the next segment by calling
``workload.next_segment(now, thread)`` each time the previous one finishes.
Receiving the current time lets periodic workloads compute their next
release point, and receiving the thread lets workloads consult statistics
(e.g. frames decoded so far).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import WorkloadError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.threads.thread import SimThread


class Compute:
    """Execute ``work`` instructions."""

    __slots__ = ("work",)

    def __init__(self, work: int) -> None:
        if work <= 0:
            raise WorkloadError("Compute segment needs positive work, got %d" % work)
        self.work = work

    def __repr__(self) -> str:
        return "Compute(%d)" % self.work


class SleepFor:
    """Block for ``duration`` nanoseconds."""

    __slots__ = ("duration",)

    def __init__(self, duration: int) -> None:
        if duration < 0:
            raise WorkloadError("SleepFor needs non-negative duration, got %d" % duration)
        self.duration = duration

    def __repr__(self) -> str:
        return "SleepFor(%d)" % self.duration


class SleepUntil:
    """Block until absolute time ``wakeup``.

    A wakeup in the past is treated as "wake immediately"; periodic
    workloads use this to express "sleep until my next release, if it has
    not already passed" (an overrun).
    """

    __slots__ = ("wakeup",)

    def __init__(self, wakeup: int) -> None:
        self.wakeup = wakeup

    def __repr__(self) -> str:
        return "SleepUntil(%d)" % self.wakeup


class Exit:
    """Terminate the thread."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "Exit()"


class Workload:
    """Base class for workloads.

    Subclasses implement :meth:`next_segment`.  Returning ``None`` is
    equivalent to returning :class:`Exit`.
    """

    def next_segment(self, now: int, thread: "SimThread") -> Optional[object]:
        """Return the next segment to execute, or ``None``/``Exit`` to finish."""
        raise NotImplementedError

    def reset(self) -> None:
        """Reset internal state so the workload can be reused in a new run."""


class SegmentListWorkload(Workload):
    """A workload that replays a fixed list of segments, then exits.

    Mostly used by tests and examples where the exact behaviour matters
    (e.g. reproducing the Figure 3 tag-evolution example).
    """

    def __init__(self, segments) -> None:
        self._segments = list(segments)
        self._index = 0

    def next_segment(self, now: int, thread: "SimThread") -> Optional[object]:
        if self._index >= len(self._segments):
            return Exit()
        segment = self._segments[self._index]
        self._index += 1
        return segment

    def reset(self) -> None:
        self._index = 0
