"""Thread model: states, workload segments, and the simulated thread.

A :class:`~repro.threads.thread.SimThread` executes a *workload*: an object
that, asked for its next segment, answers with Compute / SleepFor /
SleepUntil / Exit.  The CPU machine (:mod:`repro.cpu.machine`) drives the
thread through its segments; schedulers only ever see state transitions.
"""

from repro.threads.segments import Compute, Exit, SleepFor, SleepUntil, Workload
from repro.threads.states import ThreadState
from repro.threads.thread import SimThread

__all__ = [
    "Compute",
    "Exit",
    "SleepFor",
    "SleepUntil",
    "Workload",
    "ThreadState",
    "SimThread",
]
