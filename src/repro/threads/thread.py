"""The simulated thread.

A :class:`SimThread` is a passive record: the CPU machine pulls segments
from its workload and moves it through the lifecycle states; schedulers read
its identity, weight, and scheduler-specific parameters.  The thread itself
never calls into the machine or a scheduler, which keeps ownership of every
transition in exactly one place (the machine).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Optional

from repro.errors import SchedulingError
from repro.threads.segments import Workload
from repro.threads.states import ALLOWED_TRANSITIONS, ThreadState

_tid_counter = itertools.count(1)


class ThreadStats:
    """Per-thread counters maintained by the machine.

    ``work_done`` counts instructions actually executed; ``cpu_time`` counts
    wall-clock nanoseconds spent running (these differ only through rounding
    at slice boundaries).  ``markers`` is a free-form counter dictionary
    workloads use to report domain progress (Dhrystone loops, MPEG frames).
    """

    __slots__ = ("work_done", "cpu_time", "dispatches", "preemptions",
                 "blocks", "wakeups", "segments_completed", "created_at",
                 "exited_at", "markers")

    def __init__(self, created_at: int = 0) -> None:
        self.work_done = 0
        self.cpu_time = 0
        self.dispatches = 0
        self.preemptions = 0
        self.blocks = 0
        self.wakeups = 0
        self.segments_completed = 0
        self.created_at = created_at
        self.exited_at: Optional[int] = None
        self.markers: Dict[str, int] = {}

    def bump_marker(self, name: str, amount: int = 1) -> None:
        """Increment a named progress counter (e.g. ``"loops"``)."""
        self.markers[name] = self.markers.get(name, 0) + amount


class SimThread:
    """A schedulable thread executing a workload.

    Parameters
    ----------
    name:
        Human-readable label used in traces and experiment output.
    workload:
        The :class:`~repro.threads.segments.Workload` describing behaviour.
    weight:
        Share weight used by proportional-share leaf schedulers (SFQ,
        lottery, stride).  Must be positive.
    params:
        Scheduler-specific parameters (e.g. ``{"period": ..., "wcet": ...}``
        for RMA/EDF leaves, ``{"priority": ...}`` for the SVR4 leaf).
    """

    __slots__ = ("tid", "name", "workload", "weight", "params", "state",
                 "stats", "remaining_work", "leaf", "wakeup_handle",
                 "held_mutexes", "last_runnable_at")

    def __init__(self, name: str, workload: Workload, weight: int = 1,
                 params: Optional[Dict[str, Any]] = None) -> None:
        if weight <= 0:
            raise ValueError("thread weight must be positive, got %r" % (weight,))
        self.tid = next(_tid_counter)
        self.name = name
        self.workload = workload
        self.weight = weight
        self.params: Dict[str, Any] = dict(params or {})
        self.state = ThreadState.NEW
        self.stats = ThreadStats()

        # --- fields owned by the CPU machine -----------------------------
        #: instructions left in the current Compute segment
        self.remaining_work = 0
        #: leaf node this thread is attached to (set by the machine/structure)
        self.leaf = None
        #: pending wakeup event handle while SLEEPING
        self.wakeup_handle = None
        #: mutexes currently held (acquisition order; machine-owned)
        self.held_mutexes = []
        #: time of the most recent RUNNABLE transition (for latency metrics)
        self.last_runnable_at = 0

    # --- state machine ----------------------------------------------------

    def transition(self, new_state: ThreadState) -> None:
        """Move to ``new_state``, validating against the lifecycle graph."""
        if new_state not in ALLOWED_TRANSITIONS[self.state]:
            raise SchedulingError(
                "illegal transition for %s: %s -> %s"
                % (self, self.state.value, new_state.value))
        self.state = new_state

    @property
    def is_runnable(self) -> bool:
        """True when the thread is waiting for (or holding) the CPU."""
        return self.state in (ThreadState.RUNNABLE, ThreadState.RUNNING)

    @property
    def alive(self) -> bool:
        """True until the thread exits."""
        return self.state is not ThreadState.EXITED

    def set_weight(self, weight: int) -> None:
        """Change the thread's share weight (takes effect at next stamping)."""
        if weight <= 0:
            raise ValueError("thread weight must be positive, got %r" % (weight,))
        self.weight = weight

    def __repr__(self) -> str:
        return "SimThread(tid=%d, name=%r, state=%s)" % (
            self.tid, self.name, self.state.value)
