"""The Start-time Fair Queuing queue.

An :class:`SfqQueue` schedules *entities* — anything with a positive
``weight`` attribute (scheduling-structure nodes, threads).  It implements
the three rules of the paper's Section 3:

1. when an entity requests service (becomes runnable), stamp it with a start
   tag ``S = max(v, F)`` where ``F`` is its finish tag (initially 0);
2. when a service quantum of length ``l`` completes, advance the finish tag
   ``F = S + l / w`` (and restamp ``S = F`` if the entity stays runnable —
   at completion ``v`` equals the entity's own start tag, so
   ``max(v, F) = F``);
3. dispatch in increasing start-tag order, breaking ties by arrival
   sequence (deterministic; the paper allows arbitrary tie-breaks).

Virtual time ``v`` follows the paper exactly: while the queue is busy it is
the start tag of the entity in service; when the queue goes idle it jumps to
the maximum finish tag ever assigned.

The queue never needs quantum lengths in advance — lengths are supplied at
:meth:`charge` time, which is the property that makes SFQ usable for CPU
scheduling (threads may block before exhausting their quantum).
"""

from __future__ import annotations

import itertools
from heapq import heappop, heappush
from typing import Any, Dict, List, Optional, Tuple

from repro.core.tags import EXACT, Tag, TagMath
from repro.errors import SchedulingError

_arrival_seq = itertools.count()


class _Record:
    """Internal per-entity scheduling state."""

    __slots__ = ("entity", "start", "finish", "runnable", "heap_version", "seq")

    def __init__(self, entity: Any, zero: Tag) -> None:
        self.entity = entity
        self.start: Tag = zero
        self.finish: Tag = zero
        self.runnable = False
        self.heap_version = 0
        self.seq = next(_arrival_seq)


class SfqQueue:
    """A single SFQ scheduling queue over weighted entities."""

    __slots__ = ("tags", "_records", "_heap", "_virtual_time", "_max_finish",
                 "_in_service", "_runnable_count", "_float_fast")

    def __init__(self, tag_math: Optional[TagMath] = None) -> None:
        self.tags = tag_math if tag_math is not None else EXACT
        self._records: Dict[int, _Record] = {}
        self._heap: List[Tuple[Tag, int, int, _Record]] = []
        self._virtual_time: Tag = self.tags.zero()
        self._max_finish: Tag = self.tags.zero()
        self._in_service: Optional[_Record] = None
        self._runnable_count = 0
        # Hot-path specialization: stock float-mode tag math is inlined in
        # charge() (`start + length / weight` — the exact expression
        # TagMath.advance computes), skipping two calls per charge per tree
        # level.  Exact mode and custom TagMath objects take the slow path.
        self._float_fast = (type(self.tags) is TagMath
                            and not self.tags.exact)

    # --- membership ---------------------------------------------------

    def add(self, entity: Any) -> None:
        """Register ``entity`` (initially not runnable, finish tag 0).

        New entities start with ``F = 0``; their first stamping takes
        ``max(v, 0) = v``, so a late joiner does not receive catch-up credit
        for the time before it arrived.
        """
        key = id(entity)
        if key in self._records:
            raise SchedulingError("entity %r already in SFQ queue" % (entity,))
        self._records[key] = _Record(entity, self.tags.zero())

    def remove(self, entity: Any) -> None:
        """Deregister ``entity``; it must not be runnable."""
        record = self._lookup(entity)
        if record.runnable:
            raise SchedulingError(
                "cannot remove runnable entity %r from SFQ queue" % (entity,))
        record.heap_version += 1  # invalidate any stale heap entries
        del self._records[id(entity)]

    def __contains__(self, entity: Any) -> bool:
        return id(entity) in self._records

    def __len__(self) -> int:
        return len(self._records)

    # --- introspection --------------------------------------------------

    @property
    def virtual_time(self) -> Tag:
        """Current virtual time ``v`` of this queue."""
        return self._virtual_time

    @property
    def runnable_count(self) -> int:
        """Number of entities currently eligible for service."""
        return self._runnable_count

    def has_runnable(self) -> bool:
        """True when at least one entity is eligible for service."""
        return self._runnable_count > 0

    def start_tag(self, entity: Any) -> Tag:
        """Current start tag of ``entity`` (for tests and tracing)."""
        return self._lookup(entity).start

    def finish_tag(self, entity: Any) -> Tag:
        """Current finish tag of ``entity`` (for tests and tracing)."""
        return self._lookup(entity).finish

    def is_runnable(self, entity: Any) -> bool:
        """True if ``entity`` is currently marked runnable in this queue."""
        return self._lookup(entity).runnable

    # --- the three SFQ rules ---------------------------------------------

    def set_runnable(self, entity: Any) -> None:
        """Rule 1: stamp a newly eligible entity with ``S = max(v, F)``."""
        record = self._records.get(id(entity))
        if record is None:
            record = self._lookup(entity)
        if record.runnable:
            return
        record.runnable = True
        self._runnable_count += 1
        start = record.finish
        if start < self._virtual_time:
            start = self._virtual_time
        record.start = start
        version = record.heap_version + 1
        record.heap_version = version
        heappush(self._heap, (start, record.seq, version, record))

    def set_blocked(self, entity: Any) -> None:
        """Mark an entity ineligible; updates idle virtual time if needed."""
        record = self._records.get(id(entity))
        if record is None:
            record = self._lookup(entity)
        if not record.runnable:
            return
        record.runnable = False
        record.heap_version += 1  # lazy-remove from heap
        self._runnable_count -= 1
        if record is self._in_service:
            self._in_service = None
        if self._runnable_count == 0:
            # Paper rule: when the server goes idle, v jumps to the maximum
            # finish tag assigned to any entity.
            if self._max_finish > self._virtual_time:
                self._virtual_time = self._max_finish

    def pick(self) -> Optional[Any]:
        """Rule 3: return the runnable entity with the smallest start tag.

        The entity stays queued; it is "in service" until the next
        :meth:`charge`.  Returns ``None`` when nothing is runnable.
        """
        heap = self._heap
        record = None
        while heap:
            head = heap[0]
            candidate = head[3]
            if candidate.runnable and head[2] == candidate.heap_version:
                record = candidate
                break
            heappop(heap)
        if record is None:
            return None
        self._in_service = record
        if record.start > self._virtual_time:
            self._virtual_time = record.start
        return record.entity

    def charge(self, entity: Any, length: int, weight: Optional[int] = None) -> None:
        """Rule 2: account ``length`` units of completed service.

        ``weight`` defaults to ``entity.weight`` read *now*, so dynamic
        weight changes (Figure 11) take effect at the next charge.
        """
        if length < 0:
            raise SchedulingError("negative charge length %d" % length)
        record = self._records.get(id(entity))
        if record is None:
            record = self._lookup(entity)
        if weight is None:
            weight = entity.weight
        if self._float_fast:
            if weight <= 0:
                raise ValueError("weight must be positive, got %r" % (weight,))
            # float-mode TagMath.advance, inlined:
            finish = record.start + length / weight  # schedlint: disable=SL004
        else:
            finish = self.tags.advance(record.start, length, weight)
        record.finish = finish
        if finish > self._max_finish:
            self._max_finish = finish
        if record is self._in_service:
            self._in_service = None
        if record.runnable:
            # Still hungry: the next quantum is requested immediately, and
            # at this instant v equals this entity's start tag, so the new
            # start tag is simply the finish tag.
            record.start = finish
            version = record.heap_version + 1
            record.heap_version = version
            heappush(self._heap, (finish, record.seq, version, record))

    # --- internals -----------------------------------------------------

    def _lookup(self, entity: Any) -> _Record:
        try:
            return self._records[id(entity)]
        except KeyError:
            raise SchedulingError("entity %r not in SFQ queue" % (entity,)) from None

    def _push(self, record: _Record) -> None:
        record.heap_version += 1
        heappush(
            self._heap, (record.start, record.seq, record.heap_version, record))

    def record_for(self, entity: Any) -> "_Record":
        """The live internal record for ``entity`` (chain-cache support).

        The record stays valid until the entity is removed from this queue;
        callers caching it must invalidate on removal (the hierarchy keys
        its caches to the structure's ``tree_version``).
        """
        return self._lookup(entity)

    def _peek_record(self) -> Optional[_Record]:
        heap = self._heap
        while heap:
            __, __, version, record = heap[0]
            if record.runnable and version == record.heap_version:
                return record
            heappop(heap)
        return None


#: one ancestor level of a cached chain: (queue, record, node, parent)
ChainEntry = Tuple["SfqQueue", _Record, Any, Any]


def build_ancestor_chain(leaf: Any) -> List[ChainEntry]:
    """Precompute ``(queue, record, node, parent)`` per ancestor of ``leaf``.

    ``leaf`` is a scheduling-structure node; each entry pairs an ancestor's
    SFQ queue with its live record for the child node at that level.  The
    chain mirrors the leaf-to-root walks the hierarchy performs on charge
    and eligibility changes, and stays valid until the tree shape changes
    (mknod/rmnod — the hierarchy keys its cache to ``tree_version``).
    """
    chain: List[ChainEntry] = []
    node = leaf
    while node.parent is not None:
        parent = node.parent
        queue = parent.queue
        chain.append((queue, queue.record_for(node), node, parent))
        node = parent
    return chain


def charge_chain(chain: List[ChainEntry], length: int) -> None:
    """Apply :meth:`SfqQueue.charge` along a precomputed ancestor chain.

    Semantically identical to calling ``queue.charge(entity, length)``
    level by level — weights are still read live at charge time, so
    dynamic weight changes keep Figure-11 behaviour — but with the per-call
    record lookups hoisted into the cached chain.  Preconditions (enforced
    by the machine and structure, not re-checked here): ``length >= 0``
    and every entity registered with a positive weight.
    """
    for queue, record, entity, __ in chain:
        weight = entity.weight
        if queue._float_fast:
            finish = record.start + length / weight  # schedlint: disable=SL004
        else:
            finish = queue.tags.advance(record.start, length, weight)
        record.finish = finish
        if finish > queue._max_finish:
            queue._max_finish = finish
        if record is queue._in_service:
            queue._in_service = None
        if record.runnable:
            record.start = finish
            version = record.heap_version + 1
            record.heap_version = version
            heappush(queue._heap, (finish, record.seq, version, record))


def wake_chain(chain: List[ChainEntry]) -> None:
    """Propagate leaf eligibility up a cached chain (``hsfq_setrun``).

    Per level: :meth:`SfqQueue.set_runnable` for the child, stopping after
    the first parent that was already runnable — exactly the walk in
    :meth:`HierarchicalScheduler.setrun`.
    """
    for queue, record, __, parent in chain:
        if not record.runnable:
            record.runnable = True
            queue._runnable_count += 1
            start = record.finish
            if start < queue._virtual_time:
                start = queue._virtual_time
            record.start = start
            version = record.heap_version + 1
            record.heap_version = version
            heappush(queue._heap, (start, record.seq, version, record))
        if parent.runnable:
            return
        parent.runnable = True


def pick_leaf(root: Any, leaf_type: type) -> Tuple[Optional[Any], int]:
    """Descend from ``root``, picking the min-start child at every level.

    Inlines :meth:`SfqQueue.pick` per level (the per-dispatch descent is
    the hierarchy's hottest read path).  Returns ``(leaf, depth)``; if some
    internal queue has no runnable child — corrupted eligibility state —
    returns ``(None, depth)`` and the caller re-walks with the method API
    to raise its usual diagnostic (pick is peek-like, so the partial
    descent's virtual-time updates match what the re-walk recomputes).
    ``leaf_type`` is passed in (the node classes live downstream of this
    module); nodes are exactly ``InternalNode`` or ``leaf_type``.
    """
    node = root
    depth = 1
    while type(node) is not leaf_type:
        queue = node.queue
        heap = queue._heap
        record = None
        while heap:
            head = heap[0]
            candidate = head[3]
            if candidate.runnable and head[2] == candidate.heap_version:
                record = candidate
                break
            heappop(heap)
        if record is None:
            return None, depth
        queue._in_service = record
        if record.start > queue._virtual_time:
            queue._virtual_time = record.start
        node = record.entity
        depth += 1
    return node, depth


def sleep_chain(chain: List[ChainEntry]) -> None:
    """Propagate leaf idleness up a cached chain (``hsfq_sleep``).

    Per level: :meth:`SfqQueue.set_blocked` for the child, stopping at the
    first ancestor queue that still has runnable children — exactly the
    walk in :meth:`HierarchicalScheduler.sleep`.
    """
    for queue, record, __, parent in chain:
        if record.runnable:
            record.runnable = False
            record.heap_version += 1  # lazy-remove from heap
            queue._runnable_count -= 1
            if record is queue._in_service:
                queue._in_service = None
            if queue._runnable_count == 0:
                if queue._max_finish > queue._virtual_time:
                    queue._virtual_time = queue._max_finish
        if queue._runnable_count > 0:
            return
        parent.runnable = False
