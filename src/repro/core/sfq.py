"""The Start-time Fair Queuing queue.

An :class:`SfqQueue` schedules *entities* — anything with a positive
``weight`` attribute (scheduling-structure nodes, threads).  It implements
the three rules of the paper's Section 3:

1. when an entity requests service (becomes runnable), stamp it with a start
   tag ``S = max(v, F)`` where ``F`` is its finish tag (initially 0);
2. when a service quantum of length ``l`` completes, advance the finish tag
   ``F = S + l / w`` (and restamp ``S = F`` if the entity stays runnable —
   at completion ``v`` equals the entity's own start tag, so
   ``max(v, F) = F``);
3. dispatch in increasing start-tag order, breaking ties by arrival
   sequence (deterministic; the paper allows arbitrary tie-breaks).

Virtual time ``v`` follows the paper exactly: while the queue is busy it is
the start tag of the entity in service; when the queue goes idle it jumps to
the maximum finish tag ever assigned.

The queue never needs quantum lengths in advance — lengths are supplied at
:meth:`charge` time, which is the property that makes SFQ usable for CPU
scheduling (threads may block before exhausting their quantum).

Storage layout (since the columnar-arena refactor)
--------------------------------------------------
Per-entity state lives in the flat parallel columns of a
:class:`~repro.core.arena.SfqArena`, indexed by a dense slot id; the queue
object is a façade that maps ``id(entity)`` to a slot at the API edge and
then works purely on lists.  The dispatch heap holds ``(start, seq,
version, slot)`` tuples; mutable queue scalars (virtual time, max finish
tag, in-service slot, runnable count) sit in the four-element ``_state``
list so the compiled engine (``repro.core.engine``) can read and write
them without attribute protocol.  Queues with a single registered entity
run in *solo* mode: ordering is trivial, so the heap stays empty and
stamping skips heap pushes entirely — observable behaviour (picks, tags,
virtual time) is identical, which the golden-trace suite pins.

Engine seam
-----------
The module-level hot functions (:func:`pick_leaf`, :func:`charge_chain`,
:func:`wake_chain`, :func:`sleep_chain`, and the ``queue_*`` per-queue
operations) are rebound to their C implementations at import time when
``REPRO_ENGINE=compiled`` — see ``repro/core/engine.py``.  The pure-python
definitions below are the always-available fallback and the behavioural
reference the compiled engine is gated against.
"""

from __future__ import annotations

import itertools
from heapq import heappop, heappush
from typing import Any, Dict, List, Optional, Tuple

from repro.core.arena import SfqArena
from repro.core.tags import EXACT, Tag, TagMath
from repro.errors import SchedulingError

_arrival_seq = itertools.count()

# Indices into SfqQueue._state (mirrored by the compiled engine).
_VT = 0    # virtual time v
_MF = 1    # maximum finish tag ever assigned
_SRV = 2   # slot currently in service, -1 when none
_RC = 3    # count of runnable entities

# Indices into SfqQueue._cview (mirrored by the compiled engine).
_CV_HEAP = 0
_CV_STATE = 1
_CV_ENT = 2
_CV_START = 3
_CV_FIN = 4
_CV_RUN = 5
_CV_VER = 6
_CV_SEQ = 7
_CV_SOLO = 8
_CV_FLOAT = 9
_CV_TAGS = 10
_CV_SLOTS = 11


class SfqQueue:
    """A single SFQ scheduling queue over weighted entities."""

    __slots__ = ("tags", "arena", "_slots", "_heap", "_state", "_solo",
                 "_float_fast", "_cview")

    def __init__(self, tag_math: Optional[TagMath] = None) -> None:
        self.tags = tag_math if tag_math is not None else EXACT
        self.arena = arena = SfqArena()
        #: id(entity) -> slot; the only object-keyed structure on the queue
        self._slots: Dict[int, int] = {}
        self._heap: List[Tuple[Tag, int, int, int]] = []
        zero = self.tags.zero()
        self._state: List[Any] = [zero, zero, -1, 0]
        #: the single live slot while exactly one entity is registered
        #: (solo mode: empty heap, no pushes), else -1
        self._solo = -1
        # Hot-path specialization: stock float-mode tag math is inlined in
        # charge() (`start + length / weight` — the exact expression
        # TagMath.advance computes), skipping two calls per charge per tree
        # level.  Exact mode and custom TagMath objects take the slow path.
        self._float_fast = (type(self.tags) is TagMath
                            and not self.tags.exact)
        # Column view for the descent/compiled hot paths: stable references
        # to the heap, state vector and arena columns (none of which are
        # ever rebound), plus the solo slot mirrored at _CV_SOLO.  The
        # compiled engine reads *only* this list, so it is the complete
        # C-visible descriptor of the queue.
        self._cview: List[Any] = [self._heap, self._state, arena.ent,
                                  arena.start, arena.fin, arena.run,
                                  arena.ver, arena.seq, -1,
                                  1 if self._float_fast else 0,
                                  self.tags, self._slots]

    # --- membership ---------------------------------------------------

    def add(self, entity: Any) -> None:
        """Register ``entity`` (initially not runnable, finish tag 0).

        New entities start with ``F = 0``; their first stamping takes
        ``max(v, 0) = v``, so a late joiner does not receive catch-up credit
        for the time before it arrived.
        """
        key = id(entity)
        slots = self._slots
        if key in slots:
            raise SchedulingError("entity %r already in SFQ queue" % (entity,))
        arena = self.arena
        slot = arena.alloc(entity, self.tags.zero(), next(_arrival_seq))
        slots[key] = slot
        count = len(slots)
        if count == 1:
            self._solo = slot
            self._cview[_CV_SOLO] = slot
        elif count == 2:
            # Leaving solo mode: restore the invariant that every runnable
            # entity has a valid heap entry.
            solo = self._solo
            self._solo = -1
            self._cview[_CV_SOLO] = -1
            if arena.run[solo]:
                version = arena.ver[solo] + 1
                arena.ver[solo] = version
                heappush(self._heap,
                         (arena.start[solo], arena.seq[solo], version, solo))

    def remove(self, entity: Any) -> None:
        """Deregister ``entity``; it must not be runnable."""
        slot = self._slot_of(entity)
        arena = self.arena
        if arena.run[slot]:
            raise SchedulingError(
                "cannot remove runnable entity %r from SFQ queue" % (entity,))
        del self._slots[id(entity)]
        if self._state[_SRV] == slot:
            self._state[_SRV] = -1
        arena.release(slot)  # bumps the version: stale heap entries die
        count = len(self._slots)
        if count == 1:
            # Entering solo mode: the heap is no longer consulted, so drop
            # it in place (the cview/chain references stay valid).
            remaining = next(iter(self._slots.values()))
            del self._heap[:]
            self._solo = remaining
            self._cview[_CV_SOLO] = remaining
        elif count == 0:
            del self._heap[:]
            self._solo = -1
            self._cview[_CV_SOLO] = -1

    def __contains__(self, entity: Any) -> bool:
        return id(entity) in self._slots

    def __len__(self) -> int:
        return len(self._slots)

    # --- introspection --------------------------------------------------

    @property
    def virtual_time(self) -> Tag:
        """Current virtual time ``v`` of this queue."""
        return self._state[_VT]

    @property
    def runnable_count(self) -> int:
        """Number of entities currently eligible for service."""
        return self._state[_RC]

    def has_runnable(self) -> bool:
        """True when at least one entity is eligible for service."""
        return self._state[_RC] > 0

    def start_tag(self, entity: Any) -> Tag:
        """Current start tag of ``entity`` (for tests and tracing)."""
        return self.arena.start[self._slot_of(entity)]

    def finish_tag(self, entity: Any) -> Tag:
        """Current finish tag of ``entity`` (for tests and tracing)."""
        return self.arena.fin[self._slot_of(entity)]

    def is_runnable(self, entity: Any) -> bool:
        """True if ``entity`` is currently marked runnable in this queue."""
        return bool(self.arena.run[self._slot_of(entity)])

    # --- the three SFQ rules ---------------------------------------------

    def set_runnable(self, entity: Any) -> None:
        """Rule 1: stamp a newly eligible entity with ``S = max(v, F)``."""
        slot = self._slots.get(id(entity))
        if slot is None:
            slot = self._slot_of(entity)
        arena = self.arena
        if arena.run[slot]:
            return
        arena.run[slot] = 1
        state = self._state
        state[_RC] += 1
        start = arena.fin[slot]
        if start < state[_VT]:
            start = state[_VT]
        arena.start[slot] = start
        version = arena.ver[slot] + 1
        arena.ver[slot] = version
        if self._solo < 0:
            heappush(self._heap, (start, arena.seq[slot], version, slot))

    def set_blocked(self, entity: Any) -> None:
        """Mark an entity ineligible; updates idle virtual time if needed."""
        slot = self._slots.get(id(entity))
        if slot is None:
            slot = self._slot_of(entity)
        arena = self.arena
        if not arena.run[slot]:
            return
        arena.run[slot] = 0
        arena.ver[slot] += 1  # lazy-remove from heap
        state = self._state
        state[_RC] -= 1
        if state[_SRV] == slot:
            state[_SRV] = -1
        if state[_RC] == 0:
            # Paper rule: when the server goes idle, v jumps to the maximum
            # finish tag assigned to any entity.
            if state[_MF] > state[_VT]:
                state[_VT] = state[_MF]

    def pick(self) -> Optional[Any]:
        """Rule 3: return the runnable entity with the smallest start tag.

        The entity stays queued; it is "in service" until the next
        :meth:`charge`.  Returns ``None`` when nothing is runnable.
        """
        arena = self.arena
        state = self._state
        solo = self._solo
        if solo >= 0:
            if not arena.run[solo]:
                return None
            state[_SRV] = solo
            start = arena.start[solo]
            if start > state[_VT]:
                state[_VT] = start
            return arena.ent[solo]
        heap = self._heap
        run = arena.run
        ver = arena.ver
        slot = -1
        while heap:
            head = heap[0]
            candidate = head[3]
            if run[candidate] and head[2] == ver[candidate]:
                slot = candidate
                break
            heappop(heap)
        if slot < 0:
            return None
        state[_SRV] = slot
        start = head[0]  # valid entries carry the entity's current start tag
        if start > state[_VT]:
            state[_VT] = start
        return arena.ent[slot]

    def charge(self, entity: Any, length: int, weight: Optional[int] = None) -> None:
        """Rule 2: account ``length`` units of completed service.

        ``weight`` defaults to ``entity.weight`` read *now*, so dynamic
        weight changes (Figure 11) take effect at the next charge.
        """
        if length < 0:
            raise SchedulingError("negative charge length %d" % length)
        slot = self._slots.get(id(entity))
        if slot is None:
            slot = self._slot_of(entity)
        if weight is None:
            weight = entity.weight
        arena = self.arena
        if self._float_fast:
            if weight <= 0:
                raise ValueError("weight must be positive, got %r" % (weight,))
            # float-mode TagMath.advance, inlined:
            finish = arena.start[slot] + length / weight  # schedlint: disable=SL004
        else:
            finish = self.tags.advance(arena.start[slot], length, weight)
        arena.fin[slot] = finish
        state = self._state
        if finish > state[_MF]:
            state[_MF] = finish
        if state[_SRV] == slot:
            state[_SRV] = -1
        if arena.run[slot]:
            # Still hungry: the next quantum is requested immediately, and
            # at this instant v equals this entity's start tag, so the new
            # start tag is simply the finish tag.
            arena.start[slot] = finish
            version = arena.ver[slot] + 1
            arena.ver[slot] = version
            if self._solo < 0:
                heappush(self._heap, (finish, arena.seq[slot], version, slot))

    # --- internals -----------------------------------------------------

    def _slot_of(self, entity: Any) -> int:
        try:
            return self._slots[id(entity)]
        except KeyError:
            raise SchedulingError("entity %r not in SFQ queue" % (entity,)) from None

    def slot_of(self, entity: Any) -> int:
        """The live arena slot of ``entity`` (chain-cache support).

        The slot stays valid until the entity is removed from this queue;
        callers caching it must invalidate on removal (the hierarchy keys
        its caches to the structure's ``tree_version``).
        """
        return self._slot_of(entity)


# --- module-level per-queue operations (engine-swappable) --------------------
#
# The leaf SFQ scheduler and the hierarchy's traced paths go through these
# module-level names instead of the bound methods, so selecting the
# compiled engine routes every hot per-queue operation — including the ones
# exercised while the observability bus is attached — through one seam.

queue_pick = SfqQueue.pick
queue_set_runnable = SfqQueue.set_runnable
queue_set_blocked = SfqQueue.set_blocked


def queue_charge(queue: SfqQueue, entity: Any, length: int) -> None:
    """``queue.charge(entity, length)`` with the weight read live."""
    SfqQueue.charge(queue, entity, length)


#: one ancestor level of a cached chain (see :func:`build_ancestor_chain`)
ChainEntry = Tuple[Any, ...]

# Indices into a chain entry (mirrored by the compiled engine).
_CH_QUEUE = 0
_CH_FLOAT = 1
_CH_SOLO = 2
_CH_HEAP = 3
_CH_STATE = 4
_CH_START = 5
_CH_FIN = 6
_CH_RUN = 7
_CH_VER = 8
_CH_SEQ = 9
_CH_SLOT = 10
_CH_ENTITY = 11
_CH_PARENT = 12


def build_ancestor_chain(leaf: Any) -> List[ChainEntry]:
    """Precompute one flat entry per ancestor of ``leaf``.

    Each entry pre-resolves everything the chain walks touch — the
    ancestor's queue object, its solo slot, heap, state vector, the arena
    columns, the child's slot — so the per-level work is pure list
    indexing.  The chain mirrors the leaf-to-root walks the hierarchy
    performs on charge and eligibility changes, and stays valid until the
    tree shape changes (mknod/rmnod — the hierarchy keys its cache to
    ``tree_version``; solo membership also only changes with the shape, so
    baking it here is safe).
    """
    chain: List[ChainEntry] = []
    node = leaf
    while node.parent is not None:
        parent = node.parent
        queue = parent.queue
        arena = queue.arena
        chain.append((queue, queue._float_fast, queue._solo, queue._heap,
                      queue._state, arena.start, arena.fin, arena.run,
                      arena.ver, arena.seq, queue.slot_of(node), node,
                      parent))
        node = parent
    return chain


def charge_chain(chain: List[ChainEntry], length: int) -> None:
    """Apply :meth:`SfqQueue.charge` along a precomputed ancestor chain.

    Semantically identical to calling ``queue.charge(entity, length)``
    level by level — weights are still read live at charge time, so
    dynamic weight changes keep Figure-11 behaviour — but with the per-call
    record lookups hoisted into the cached chain.  Preconditions (enforced
    by the machine and structure, not re-checked here): ``length >= 0``
    and every entity registered with a positive weight.
    """
    for (queue, float_fast, solo, heap, state, start_col, fin_col, run_col,
         ver_col, seq_col, slot, entity, __) in chain:
        weight = entity.weight
        if float_fast:
            finish = start_col[slot] + length / weight  # schedlint: disable=SL004
        else:
            finish = queue.tags.advance(start_col[slot], length, weight)
        fin_col[slot] = finish
        if finish > state[_MF]:
            state[_MF] = finish
        if state[_SRV] == slot:
            state[_SRV] = -1
        if run_col[slot]:
            start_col[slot] = finish
            version = ver_col[slot] + 1
            ver_col[slot] = version
            if solo < 0:
                heappush(heap, (finish, seq_col[slot], version, slot))


def wake_chain(chain: List[ChainEntry]) -> None:
    """Propagate leaf eligibility up a cached chain (``hsfq_setrun``).

    Per level: :meth:`SfqQueue.set_runnable` for the child, stopping after
    the first parent that was already runnable — exactly the walk in
    :meth:`HierarchicalScheduler.setrun`.
    """
    for (__, ___, solo, heap, state, start_col, fin_col, run_col,
         ver_col, seq_col, slot, ____, parent) in chain:
        if not run_col[slot]:
            run_col[slot] = 1
            state[_RC] += 1
            start = fin_col[slot]
            if start < state[_VT]:
                start = state[_VT]
            start_col[slot] = start
            version = ver_col[slot] + 1
            ver_col[slot] = version
            if solo < 0:
                heappush(heap, (start, seq_col[slot], version, slot))
        if parent.runnable:
            return
        parent.runnable = True


def pick_leaf(root: Any, leaf_type: type) -> Tuple[Optional[Any], int]:
    """Descend from ``root``, picking the min-start child at every level.

    Inlines :meth:`SfqQueue.pick` per level (the per-dispatch descent is
    the hierarchy's hottest read path).  Returns ``(leaf, depth)``; if some
    internal queue has no runnable child — corrupted eligibility state —
    returns ``(None, depth)`` and the caller re-walks with the method API
    to raise its usual diagnostic (pick is peek-like, so the partial
    descent's virtual-time updates match what the re-walk recomputes).
    ``leaf_type`` is passed in (the node classes live downstream of this
    module); nodes are exactly ``InternalNode`` or ``leaf_type``.
    """
    node = root
    depth = 1
    while type(node) is not leaf_type:
        cview = node.queue._cview
        state = cview[_CV_STATE]
        start_col = cview[_CV_START]
        run_col = cview[_CV_RUN]
        ent_col = cview[_CV_ENT]
        solo = cview[_CV_SOLO]
        if solo >= 0:
            if not run_col[solo]:
                return None, depth
            state[_SRV] = solo
            start = start_col[solo]
            if start > state[_VT]:
                state[_VT] = start
            node = ent_col[solo]
            depth += 1
            continue
        heap = cview[_CV_HEAP]
        ver_col = cview[_CV_VER]
        slot = -1
        while heap:
            head = heap[0]
            candidate = head[3]
            if run_col[candidate] and head[2] == ver_col[candidate]:
                slot = candidate
                break
            heappop(heap)
        if slot < 0:
            return None, depth
        state[_SRV] = slot
        start = head[0]
        if start > state[_VT]:
            state[_VT] = start
        node = ent_col[slot]
        depth += 1
    return node, depth


def sleep_chain(chain: List[ChainEntry]) -> None:
    """Propagate leaf idleness up a cached chain (``hsfq_sleep``).

    Per level: :meth:`SfqQueue.set_blocked` for the child, stopping at the
    first ancestor queue that still has runnable children — exactly the
    walk in :meth:`HierarchicalScheduler.sleep`.
    """
    for (__, ___, ____, _____, state, ______, _______, run_col,
         ver_col, ________, slot, _________, parent) in chain:
        if run_col[slot]:
            run_col[slot] = 0
            ver_col[slot] += 1  # lazy-remove from heap
            state[_RC] -= 1
            if state[_SRV] == slot:
                state[_SRV] = -1
            if state[_RC] == 0:
                if state[_MF] > state[_VT]:
                    state[_VT] = state[_MF]
        if state[_RC] > 0:
            return
        parent.runnable = False


# --- engine selection --------------------------------------------------------
#
# Keep references to the pure implementations (tests and the equivalence
# gate call them explicitly), then let the selected engine rebind the
# public hot-path names.  Downstream modules import these names *after*
# this module body runs, so the rebinding is visible everywhere.

pick_leaf_pure = pick_leaf
charge_chain_pure = charge_chain
wake_chain_pure = wake_chain
sleep_chain_pure = sleep_chain
queue_pick_pure = queue_pick
queue_charge_pure = queue_charge
queue_set_runnable_pure = queue_set_runnable
queue_set_blocked_pure = queue_set_blocked

from repro.core import engine as _engine  # noqa: E402  (needs SfqQueue defined)

if _engine.OPS is not None:
    pick_leaf = _engine.OPS.pick_leaf
    charge_chain = _engine.OPS.charge_chain
    wake_chain = _engine.OPS.wake_chain
    sleep_chain = _engine.OPS.sleep_chain
    queue_pick = _engine.OPS.queue_pick
    queue_charge = _engine.OPS.queue_charge
    queue_set_runnable = _engine.OPS.queue_set_runnable
    queue_set_blocked = _engine.OPS.queue_set_blocked
