"""The Start-time Fair Queuing queue.

An :class:`SfqQueue` schedules *entities* — anything with a positive
``weight`` attribute (scheduling-structure nodes, threads).  It implements
the three rules of the paper's Section 3:

1. when an entity requests service (becomes runnable), stamp it with a start
   tag ``S = max(v, F)`` where ``F`` is its finish tag (initially 0);
2. when a service quantum of length ``l`` completes, advance the finish tag
   ``F = S + l / w`` (and restamp ``S = F`` if the entity stays runnable —
   at completion ``v`` equals the entity's own start tag, so
   ``max(v, F) = F``);
3. dispatch in increasing start-tag order, breaking ties by arrival
   sequence (deterministic; the paper allows arbitrary tie-breaks).

Virtual time ``v`` follows the paper exactly: while the queue is busy it is
the start tag of the entity in service; when the queue goes idle it jumps to
the maximum finish tag ever assigned.

The queue never needs quantum lengths in advance — lengths are supplied at
:meth:`charge` time, which is the property that makes SFQ usable for CPU
scheduling (threads may block before exhausting their quantum).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Dict, List, Optional, Tuple

from repro.core.tags import EXACT, Tag, TagMath
from repro.errors import SchedulingError

_arrival_seq = itertools.count()


class _Record:
    """Internal per-entity scheduling state."""

    __slots__ = ("entity", "start", "finish", "runnable", "heap_version", "seq")

    def __init__(self, entity: Any, zero: Tag) -> None:
        self.entity = entity
        self.start: Tag = zero
        self.finish: Tag = zero
        self.runnable = False
        self.heap_version = 0
        self.seq = next(_arrival_seq)


class SfqQueue:
    """A single SFQ scheduling queue over weighted entities."""

    def __init__(self, tag_math: Optional[TagMath] = None) -> None:
        self.tags = tag_math if tag_math is not None else EXACT
        self._records: Dict[int, _Record] = {}
        self._heap: List[Tuple[Tag, int, int, _Record]] = []
        self._virtual_time: Tag = self.tags.zero()
        self._max_finish: Tag = self.tags.zero()
        self._in_service: Optional[_Record] = None
        self._runnable_count = 0

    # --- membership ---------------------------------------------------

    def add(self, entity: Any) -> None:
        """Register ``entity`` (initially not runnable, finish tag 0).

        New entities start with ``F = 0``; their first stamping takes
        ``max(v, 0) = v``, so a late joiner does not receive catch-up credit
        for the time before it arrived.
        """
        key = id(entity)
        if key in self._records:
            raise SchedulingError("entity %r already in SFQ queue" % (entity,))
        self._records[key] = _Record(entity, self.tags.zero())

    def remove(self, entity: Any) -> None:
        """Deregister ``entity``; it must not be runnable."""
        record = self._lookup(entity)
        if record.runnable:
            raise SchedulingError(
                "cannot remove runnable entity %r from SFQ queue" % (entity,))
        record.heap_version += 1  # invalidate any stale heap entries
        del self._records[id(entity)]

    def __contains__(self, entity: Any) -> bool:
        return id(entity) in self._records

    def __len__(self) -> int:
        return len(self._records)

    # --- introspection --------------------------------------------------

    @property
    def virtual_time(self) -> Tag:
        """Current virtual time ``v`` of this queue."""
        return self._virtual_time

    @property
    def runnable_count(self) -> int:
        """Number of entities currently eligible for service."""
        return self._runnable_count

    def has_runnable(self) -> bool:
        """True when at least one entity is eligible for service."""
        return self._runnable_count > 0

    def start_tag(self, entity: Any) -> Tag:
        """Current start tag of ``entity`` (for tests and tracing)."""
        return self._lookup(entity).start

    def finish_tag(self, entity: Any) -> Tag:
        """Current finish tag of ``entity`` (for tests and tracing)."""
        return self._lookup(entity).finish

    def is_runnable(self, entity: Any) -> bool:
        """True if ``entity`` is currently marked runnable in this queue."""
        return self._lookup(entity).runnable

    # --- the three SFQ rules ---------------------------------------------

    def set_runnable(self, entity: Any) -> None:
        """Rule 1: stamp a newly eligible entity with ``S = max(v, F)``."""
        record = self._lookup(entity)
        if record.runnable:
            return
        record.runnable = True
        self._runnable_count += 1
        start = record.finish
        if start < self._virtual_time:
            start = self._virtual_time
        record.start = start
        self._push(record)

    def set_blocked(self, entity: Any) -> None:
        """Mark an entity ineligible; updates idle virtual time if needed."""
        record = self._lookup(entity)
        if not record.runnable:
            return
        record.runnable = False
        record.heap_version += 1  # lazy-remove from heap
        self._runnable_count -= 1
        if record is self._in_service:
            self._in_service = None
        if self._runnable_count == 0:
            # Paper rule: when the server goes idle, v jumps to the maximum
            # finish tag assigned to any entity.
            if self._max_finish > self._virtual_time:
                self._virtual_time = self._max_finish

    def pick(self) -> Optional[Any]:
        """Rule 3: return the runnable entity with the smallest start tag.

        The entity stays queued; it is "in service" until the next
        :meth:`charge`.  Returns ``None`` when nothing is runnable.
        """
        record = self._peek_record()
        if record is None:
            return None
        self._in_service = record
        if record.start > self._virtual_time:
            self._virtual_time = record.start
        return record.entity

    def charge(self, entity: Any, length: int, weight: Optional[int] = None) -> None:
        """Rule 2: account ``length`` units of completed service.

        ``weight`` defaults to ``entity.weight`` read *now*, so dynamic
        weight changes (Figure 11) take effect at the next charge.
        """
        if length < 0:
            raise SchedulingError("negative charge length %d" % length)
        record = self._lookup(entity)
        if weight is None:
            weight = entity.weight
        record.finish = self.tags.advance(record.start, length, weight)
        if record.finish > self._max_finish:
            self._max_finish = record.finish
        if record is self._in_service:
            self._in_service = None
        if record.runnable:
            # Still hungry: the next quantum is requested immediately, and
            # at this instant v equals this entity's start tag, so the new
            # start tag is simply the finish tag.
            record.start = record.finish
            self._push(record)

    # --- internals -----------------------------------------------------

    def _lookup(self, entity: Any) -> _Record:
        try:
            return self._records[id(entity)]
        except KeyError:
            raise SchedulingError("entity %r not in SFQ queue" % (entity,)) from None

    def _push(self, record: _Record) -> None:
        record.heap_version += 1
        heapq.heappush(
            self._heap, (record.start, record.seq, record.heap_version, record))

    def _peek_record(self) -> Optional[_Record]:
        heap = self._heap
        while heap:
            __, __, version, record = heap[0]
            if record.runnable and version == record.heap_version:
                return record
            heapq.heappop(heap)
        return None
