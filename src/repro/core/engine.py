"""Engine selection for the SFQ hot path (``REPRO_ENGINE=pure|compiled``).

The scheduler core has two interchangeable engines for its hot functions
(the per-dispatch tree descent, the ancestor-chain walks, and the
per-queue SFQ operations in :mod:`repro.core.sfq`):

``pure``
    The pure-python reference implementations defined in ``sfq.py``.
    Always available; the behavioural source of truth.

``compiled``
    A hand-written CPython extension (``repro/core/_sfqc.c``) operating
    directly on the arena columns through each queue's ``_cview``
    descriptor.  Built on demand with the platform C compiler — no
    third-party build dependency — and cached under ``build/engine/``
    keyed on a hash of the C source and the interpreter ABI.

Selection is explicit and happens once, at import time: ``sfq.py``
imports this module at the end of its body and rebinds its module-level
hot names to the compiled entry points when ``OPS`` is not ``None``.
There is no per-call dispatch — downstream modules simply import the
names and get whichever engine the process selected.

``REPRO_ENGINE=compiled`` is a hard request: if the extension cannot be
built or loaded the import **fails** rather than silently falling back,
so a CI leg that asks for the compiled engine cannot accidentally test
the pure one.  Unset (or ``pure``) never touches the compiler.

Byte-identity between the engines is a hard contract, pinned three ways:
the golden-trace fixtures run under both engines in CI, the
``enginediff`` devtool replays Figure-5 and a depth-8 workload under
both and diffs traces and schedstat, and the property suite
cross-checks queue observables after random operation sequences.
"""

from __future__ import annotations

import hashlib
import importlib.util
import os
import shlex
import subprocess
import sys
import sysconfig
from types import ModuleType
from typing import Any, Optional

__all__ = ["EngineError", "ENGINE", "OPS", "active_engine",
           "build_extension", "load_compiled_module"]


class EngineError(RuntimeError):
    """Raised when ``REPRO_ENGINE=compiled`` cannot be honoured."""


_C_SOURCE = os.path.join(os.path.dirname(os.path.abspath(__file__)), "_sfqc.c")

#: the hot-path entry points every compiled engine must provide
_OP_NAMES = ("pick_leaf", "charge_chain", "wake_chain", "sleep_chain",
             "queue_pick", "queue_charge", "queue_set_runnable",
             "queue_set_blocked", "machine_tick", "machine_wake", "sim_drain")


def _cache_dir() -> str:
    """Directory for built engine artifacts (override: REPRO_ENGINE_CACHE)."""
    override = os.environ.get("REPRO_ENGINE_CACHE")
    if override:
        return override
    # src/repro/core/engine.py -> repo root is three levels up from core/;
    # `make clean` removes build/.
    root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(_C_SOURCE))))
    return os.path.join(root, "build", "engine")


def build_key() -> str:
    """Cache key: C source hash x interpreter ABI.

    Any edit to ``_sfqc.c`` or interpreter change produces a new key, so
    stale binaries can never be loaded against newer source — this is
    also what the CI build cache is keyed on.
    """
    digest = hashlib.sha256()
    with open(_C_SOURCE, "rb") as handle:
        digest.update(handle.read())
    digest.update(("\0%s\0%s" % (sys.version,
                                 sysconfig.get_config_var("EXT_SUFFIX"))
                   ).encode("utf-8"))
    return digest.hexdigest()[:20]


def _artifact_path() -> str:
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    return os.path.join(_cache_dir(), "_sfqc-%s%s" % (build_key(), suffix))


def build_extension(force: bool = False, quiet: bool = True) -> str:
    """Compile ``_sfqc.c``; return the artifact path (cached by key)."""
    if not os.path.exists(_C_SOURCE):
        raise EngineError("compiled engine source missing: %s" % _C_SOURCE)
    artifact = _artifact_path()
    if os.path.exists(artifact) and not force:
        return artifact
    os.makedirs(os.path.dirname(artifact), exist_ok=True)
    cc = sysconfig.get_config_var("CC") or "cc"
    include = sysconfig.get_paths()["include"]
    command = shlex.split(cc) + [
        "-O2", "-fno-strict-aliasing", "-fPIC", "-shared",
        "-I", include, _C_SOURCE, "-o", artifact + ".tmp",
    ]
    try:
        result = subprocess.run(
            command, stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    except OSError as exc:
        raise EngineError(
            "cannot run C compiler %r for REPRO_ENGINE=compiled: %s"
            % (cc, exc)) from exc
    output = result.stdout.decode("utf-8", "replace")
    if result.returncode != 0:
        raise EngineError(
            "compiling %s failed (exit %d):\n%s"
            % (_C_SOURCE, result.returncode, output))
    if output.strip() and not quiet:
        sys.stderr.write(output)
    os.replace(artifact + ".tmp", artifact)
    return artifact


def load_compiled_module(force_build: bool = False) -> ModuleType:
    """Build (if needed) and import the ``_sfqc`` extension module."""
    artifact = build_extension(force=force_build)
    spec = importlib.util.spec_from_file_location("repro.core._sfqc", artifact)
    if spec is None or spec.loader is None:
        raise EngineError("cannot load compiled engine from %s" % artifact)
    module = importlib.util.module_from_spec(spec)
    try:
        spec.loader.exec_module(module)
    except ImportError as exc:
        raise EngineError(
            "compiled engine failed to import (%s); rebuild with "
            "build_extension(force=True)" % exc) from exc
    missing = [name for name in _OP_NAMES if not hasattr(module, name)]
    if missing:
        raise EngineError(
            "compiled engine is missing entry points: %s" % ", ".join(missing))
    return module


def _resolve() -> Optional[Any]:
    requested = os.environ.get("REPRO_ENGINE", "pure").strip().lower() or "pure"
    if requested == "pure":
        return None
    if requested != "compiled":
        raise EngineError(
            "unknown REPRO_ENGINE %r (expected 'pure' or 'compiled')"
            % requested)
    return load_compiled_module()


#: the compiled-engine module, or ``None`` when running pure
OPS: Optional[Any] = _resolve()

#: which engine this process selected
ENGINE: str = "compiled" if OPS is not None else "pure"


def active_engine() -> str:
    """The engine name this process runs with (``pure`` or ``compiled``)."""
    return ENGINE
