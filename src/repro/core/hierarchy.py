"""The hierarchical scheduler (paper §2 and §4).

Scheduling happens recursively: the root picks the runnable child with the
smallest SFQ start tag, that child picks among *its* children, and so on
until a leaf node's class-specific scheduler picks a thread
(``hsfq_schedule``).  When a quantum completes, the executed length is
charged to the leaf's scheduler and to every ancestor's SFQ queue
(``hsfq_update``).  Eligibility propagates up the tree lazily: marking a
leaf runnable walks up only until an already-runnable ancestor is found
(``hsfq_setrun``), and marking it idle walks up only while ancestors lose
their last runnable child (``hsfq_sleep``) — exactly the optimization the
paper describes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.core.node import InternalNode, LeafNode, Node, require_leaf
from repro.core.sfq import (
    build_ancestor_chain,
    charge_chain,
    pick_leaf,
    queue_charge,
    queue_pick,
    queue_set_runnable,
    sleep_chain,
    wake_chain,
)
from repro.core.structure import SchedulingStructure
from repro.cpu.interface import TopScheduler
from repro.errors import SchedulingError
from repro.obs import events as obs
from repro.threads.states import ThreadState

#: module-level alias of the process-wide bus: emit-site guards are on
#: the per-dispatch hot path, and `_BUS.active` is one attribute lookup
#: cheaper than `obs.BUS.active`.
_BUS = obs.BUS

if TYPE_CHECKING:  # pragma: no cover
    from repro.threads.thread import SimThread

#: never preempt within a quantum (the paper's behaviour)
PREEMPT_NONE = "none"
#: allow a leaf scheduler to preempt the running thread of the *same* leaf
PREEMPT_LEAF = "leaf"


class HierarchicalScheduler(TopScheduler):
    """Drives a :class:`~repro.core.structure.SchedulingStructure`.

    Parameters
    ----------
    structure:
        The scheduling-structure tree.  This scheduler registers itself as
        ``structure.hierarchy`` so ``hsfq_move`` stays consistent.
    preempt_policy:
        ``PREEMPT_NONE`` (default, as in the paper) or ``PREEMPT_LEAF``
        (extension: intra-leaf preemption for EDF/RMA leaves).
    """

    def __init__(self, structure: SchedulingStructure,
                 preempt_policy: str = PREEMPT_NONE) -> None:
        if preempt_policy not in (PREEMPT_NONE, PREEMPT_LEAF):
            raise ValueError("unknown preempt policy %r" % (preempt_policy,))
        self.structure = structure
        self.preempt_policy = preempt_policy
        structure.hierarchy = self
        self._decision_depth = 1
        #: clock callable; the machine installs its engine's clock here
        self.clock: Callable[[], int] = lambda: 0
        # Per-leaf charge chains (see repro.core.sfq.build_charge_chain),
        # keyed by leaf id.  The tree shape only changes through
        # mknod/rmnod, which bump structure.tree_version; charge() rebuilds
        # lazily when the versions diverge.
        self._charge_chains: Dict[int, list] = {}
        self._charge_chains_version = structure.tree_version

    # --- TopScheduler protocol --------------------------------------------

    def admit(self, thread: "SimThread") -> None:
        if thread.leaf is None:
            raise SchedulingError(
                "thread %r must be attached to a leaf before admission; "
                "use LeafNode.attach_thread or SchedulingStructure.move" % (thread,))

    def retire(self, thread: "SimThread", now: int) -> None:
        leaf = require_leaf(thread.leaf)
        leaf.scheduler.on_block(thread, now)
        self._sleep_if_idle(leaf)
        leaf.detach_thread(thread)

    def thread_runnable(self, thread: "SimThread", now: int) -> None:
        leaf = require_leaf(thread.leaf)
        leaf.scheduler.on_runnable(thread, now)
        self.setrun(leaf)

    def thread_blocked(self, thread: "SimThread", now: int) -> None:
        leaf = require_leaf(thread.leaf)
        leaf.scheduler.on_block(thread, now)
        self._sleep_if_idle(leaf)

    def pick_next(self, now: int) -> Optional["SimThread"]:
        root = self.structure.root
        if not root.runnable:
            return None
        if _BUS.active:
            # Traced walk: per-level emits, but the queue operations still
            # go through the engine-swappable module functions so the
            # compiled engine is exercised (and gated) under tracing too.
            node: Node = root
            depth = 1
            while isinstance(node, InternalNode):
                child = queue_pick(node.queue)
                if child is None:
                    raise SchedulingError(
                        "node %r is marked runnable but has no runnable "
                        "children" % (node.path,))
                _BUS.emit(obs.VTIME_ADVANCE, now, node=node.path,
                          v=float(node.queue.virtual_time))
                node = child
                depth += 1
            leaf = require_leaf(node)
        else:
            leaf, depth = pick_leaf(root, LeafNode)
            if leaf is None:
                # Re-walk with the method API for the standard diagnostic.
                node = root
                while isinstance(node, InternalNode):
                    child = node.queue.pick()
                    if child is None:
                        raise SchedulingError(
                            "node %r is marked runnable but has no runnable "
                            "children" % (node.path,))
                    node = child
                leaf = require_leaf(node)
        thread = leaf.scheduler.pick_next(now)
        if thread is None:
            raise SchedulingError(
                "leaf %r is marked runnable but its scheduler has no thread"
                % (leaf.path,))
        self._decision_depth = depth
        return thread

    def charge(self, thread: "SimThread", work: int, now: int) -> None:
        leaf = require_leaf(thread.leaf)
        leaf.scheduler.charge(thread, work, now)
        if _BUS.active:
            node: Node = leaf
            while node.parent is not None:
                parent = node.parent
                queue_charge(parent.queue, node, work)
                _BUS.emit(obs.TAG_UPDATE, now, node=node.path,
                          start=float(parent.queue.start_tag(node)),
                          finish=float(parent.queue.finish_tag(node)),
                          work=work)
                _BUS.emit(obs.VTIME_ADVANCE, now, node=parent.path,
                          v=float(parent.queue.virtual_time))
                node = parent
            return
        # Traced-off hot path: charge the static ancestor chain in one call
        # (same levels, same order, same arithmetic as the walk above).
        charge_chain(self._chain_for(leaf), work)

    def _chain_for(self, leaf: LeafNode) -> list:
        """The cached ancestor chain of ``leaf``, rebuilt on tree changes."""
        if self._charge_chains_version != self.structure.tree_version:
            self._charge_chains.clear()
            self._charge_chains_version = self.structure.tree_version
        chain = self._charge_chains.get(id(leaf))
        if chain is None:
            chain = build_ancestor_chain(leaf)
            self._charge_chains[id(leaf)] = chain
        return chain

    def quantum_for(self, thread: "SimThread") -> Optional[int]:
        leaf = thread.leaf
        if type(leaf) is not LeafNode:  # unusual: subclass or detached thread
            leaf = require_leaf(leaf)
        return leaf.scheduler.quantum_for(thread)

    def should_preempt(self, current: "SimThread", candidate: "SimThread",
                       now: int) -> bool:
        if self.preempt_policy == PREEMPT_LEAF and current.leaf is candidate.leaf:
            return require_leaf(current.leaf).scheduler.should_preempt(
                current, candidate, now)
        return False

    def has_runnable(self) -> bool:
        return self.structure.root.runnable

    @property
    def decision_depth(self) -> int:
        return self._decision_depth

    # --- hsfq_setrun / hsfq_sleep ------------------------------------------

    def setrun(self, leaf: LeafNode) -> None:
        """Mark ``leaf`` eligible and propagate up to the first runnable ancestor."""
        if leaf.runnable:
            return
        leaf.runnable = True
        if _BUS.active:
            node: Node = leaf
            while node.parent is not None:
                parent = node.parent
                queue_set_runnable(parent.queue, node)
                _BUS.emit(obs.TAG_UPDATE, self.clock(), node=node.path,
                          start=float(parent.queue.start_tag(node)),
                          finish=float(parent.queue.finish_tag(node)),
                          work=0)
                if parent.runnable:
                    break
                parent.runnable = True
                node = parent
            return
        wake_chain(self._chain_for(leaf))

    def sleep(self, leaf: LeafNode) -> None:
        """Mark ``leaf`` idle and propagate up while ancestors become idle."""
        if not leaf.runnable:
            return
        leaf.runnable = False
        sleep_chain(self._chain_for(leaf))

    def _sleep_if_idle(self, leaf: LeafNode) -> None:
        if leaf.runnable and not leaf.scheduler.has_runnable():
            self.sleep(leaf)

    # --- hsfq_move ----------------------------------------------------------

    def move_thread(self, thread: "SimThread", dest: LeafNode,
                    now: Optional[int] = None) -> None:
        """Move ``thread`` to ``dest``, keeping eligibility consistent.

        The running thread cannot be moved (the machine owns it until its
        quantum is charged); move it after it blocks or is preempted.
        """
        if thread.state is ThreadState.RUNNING:
            raise SchedulingError("cannot move the running thread %r" % (thread,))
        if now is None:
            now = self.clock()
        source = thread.leaf
        was_runnable = thread.state is ThreadState.RUNNABLE
        if source is not None:
            source_leaf = require_leaf(source)
            if was_runnable:
                source_leaf.scheduler.on_block(thread, now)
                self._sleep_if_idle(source_leaf)
            source_leaf.detach_thread(thread)
        dest.attach_thread(thread)
        if was_runnable:
            dest.scheduler.on_runnable(thread, now)
            self.setrun(dest)
