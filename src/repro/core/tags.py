"""Tag arithmetic for start-time fair queuing.

SFQ tags are sums of ``length / weight`` terms.  Two arithmetic modes are
provided:

* **exact** (default): tags are :class:`fractions.Fraction`.  The fairness
  theorem of the paper then holds *exactly* in tests, with no epsilon.
* **float**: tags are machine floats.  Faster, and what a kernel would use;
  the drift it introduces is quantified by the EXP-AB4 ablation.

Both modes share the same interface so queues are generic over it.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Union

Tag = Union[Fraction, float]


class TagMath:
    """Strategy object for tag arithmetic.

    Parameters
    ----------
    exact:
        When True, tags are :class:`~fractions.Fraction`; otherwise floats.
    """

    __slots__ = ("exact",)

    def __init__(self, exact: bool = True) -> None:
        self.exact = exact

    def zero(self) -> Tag:
        """The initial value of every tag and of virtual time."""
        return Fraction(0) if self.exact else 0.0

    def ratio(self, length: int, weight: int) -> Tag:
        """``length / weight`` in this mode's representation."""
        if weight <= 0:
            raise ValueError("weight must be positive, got %r" % (weight,))
        if self.exact:
            return Fraction(length, weight)
        return length / weight

    def advance(self, tag: Tag, length: int, weight: int) -> Tag:
        """Return ``tag + length / weight`` — the finish-tag update rule."""
        return tag + self.ratio(length, weight)

    def __repr__(self) -> str:
        return "TagMath(exact=%r)" % self.exact


#: Shared default instance (exact arithmetic).
EXACT = TagMath(exact=True)

#: Shared float-mode instance.
FLOAT = TagMath(exact=False)
