/* _sfqc: the compiled SFQ engine (REPRO_ENGINE=compiled).
 *
 * Hand-written CPython extension implementing the eight hot-path entry
 * points of repro/core/sfq.py over the columnar arena.  Every function
 * here is a behavioural mirror of the pure-python definition — same
 * state writes in the same order, same heap entry tuples, same
 * arithmetic — so the two engines are byte-identical on traces and
 * schedstat (gated in CI by the golden fixtures and enginediff).
 *
 * Data contract (see sfq.py for the authoritative index tables):
 *   queue._cview = [heap, state, ent, start, fin, run, ver, seq,
 *                   solo, float_fast, tags, slots]
 *   queue._state = [vt, max_finish, in_service_slot, runnable_count]
 *   heap entries = (start_tag, arrival_seq, version, slot)
 *   chain entry  = (queue, float_fast, solo, heap, state, start, fin,
 *                   run, ver, seq, slot, entity, parent)
 *
 * Arithmetic: float-mode tag math runs on C doubles, which is exact
 * w.r.t. CPython because ints below 2^53 convert exactly and IEEE
 * division of exact operands is correctly rounded — the same value
 * CPython's long_true_divide produces.  Anything outside that range
 * (or exact/Fraction mode) falls back to the Python object protocol,
 * i.e. literally the same code paths the pure engine uses.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

/* ---- index tables (mirrors of sfq.py constants) ------------------------- */

enum { CV_HEAP, CV_STATE, CV_ENT, CV_START, CV_FIN, CV_RUN, CV_VER,
       CV_SEQ, CV_SOLO, CV_FLOAT, CV_TAGS, CV_SLOTS, CV_LEN };

enum { ST_VT, ST_MF, ST_SRV, ST_RC, ST_LEN };

enum { CH_QUEUE, CH_FLOAT, CH_SOLO, CH_HEAP, CH_STATE, CH_START, CH_FIN,
       CH_RUN, CH_VER, CH_SEQ, CH_SLOT, CH_ENTITY, CH_PARENT, CH_LEN };

/* interned attribute names, created at module init */
static PyObject *str_cview, *str_weight, *str_advance, *str_runnable,
    *str_queue, *str_parent;
/* repro.errors.SchedulingError, resolved at module init */
static PyObject *SchedulingError;
/* cached small ints */
static PyObject *long_zero;

/* exact-double range: |int| <= 2^53 converts to double losslessly */
#define EXACT_DOUBLE_MAX 9007199254740992LL /* 2^53 */

/* ---- small helpers ------------------------------------------------------ */

static int
as_ssize(PyObject *obj, Py_ssize_t *out)
{
    Py_ssize_t value = PyLong_AsSsize_t(obj);
    if (value == -1 && PyErr_Occurred())
        return -1;
    *out = value;
    return 0;
}

/* obj < other for tag values (floats fast, object protocol otherwise).
 * Returns 1/0, or -1 with an exception set. */
static int
tag_lt(PyObject *a, PyObject *b)
{
    if (PyFloat_CheckExact(a) && PyFloat_CheckExact(b))
        return PyFloat_AS_DOUBLE(a) < PyFloat_AS_DOUBLE(b);
    return PyObject_RichCompareBool(a, b, Py_LT);
}

static int
tag_gt(PyObject *a, PyObject *b)
{
    if (PyFloat_CheckExact(a) && PyFloat_CheckExact(b))
        return PyFloat_AS_DOUBLE(a) > PyFloat_AS_DOUBLE(b);
    return PyObject_RichCompareBool(a, b, Py_GT);
}

/* strict-weak order on heap entries (start, seq, version, slot): compare
 * start tags, then the integer tie-breakers.  Returns 1 if a < b. */
static int
entry_lt(PyObject *a, PyObject *b)
{
    PyObject *sa = PyTuple_GET_ITEM(a, 0);
    PyObject *sb = PyTuple_GET_ITEM(b, 0);
    int cmp = tag_lt(sa, sb);
    if (cmp != 0)
        return cmp; /* 1 or -1 */
    cmp = tag_gt(sa, sb);
    if (cmp < 0)
        return -1;
    if (cmp)
        return 0;
    for (int idx = 1; idx < 4; idx++) {
        Py_ssize_t va, vb;
        if (as_ssize(PyTuple_GET_ITEM(a, idx), &va) < 0 ||
            as_ssize(PyTuple_GET_ITEM(b, idx), &vb) < 0)
            return -1;
        if (va != vb)
            return va < vb;
    }
    return 0;
}

/* Event-queue entries are (time, priority, seq, handle): compare the
 * three leading ints lexicographically.  seq is unique, so the order is
 * total and the pop sequence is layout-independent (same argument as
 * for the SFQ heap keys). */
static int
event_entry_lt(PyObject *a, PyObject *b)
{
    for (int idx = 0; idx < 3; idx++) {
        PyObject *pa = PyTuple_GET_ITEM(a, idx);
        PyObject *pb = PyTuple_GET_ITEM(b, idx);
        if (PyLong_CheckExact(pa) && PyLong_CheckExact(pb)) {
            int oa = 0, ob = 0;
            long long va = PyLong_AsLongLongAndOverflow(pa, &oa);
            long long vb = PyLong_AsLongLongAndOverflow(pb, &ob);
            if (!oa && !ob) {
                if (va != vb)
                    return va < vb;
                continue;
            }
        }
        int lt = PyObject_RichCompareBool(pa, pb, Py_LT);
        if (lt != 0)
            return lt; /* 1 or -1 */
        int gt = PyObject_RichCompareBool(pa, pb, Py_GT);
        if (gt < 0)
            return -1;
        if (gt)
            return 0;
    }
    return 0;
}

typedef int (*entry_cmp)(PyObject *, PyObject *);

/* heappush(heap, item): append + sift toward the root.  Steals no
 * references (caller keeps ownership of item; the list increfs).
 * List size is re-read around every comparison in case a user-defined
 * tag __lt__ mutates the heap (mirrors CPython's own heapq caution). */
static int
heap_push_cmp(PyObject *heap, PyObject *item, entry_cmp lt_fn)
{
    if (PyList_Append(heap, item) < 0)
        return -1;
    Py_ssize_t pos = PyList_GET_SIZE(heap) - 1;
    while (pos > 0) {
        Py_ssize_t parent = (pos - 1) >> 1;
        if (pos >= PyList_GET_SIZE(heap)) {
            PyErr_SetString(PyExc_RuntimeError,
                            "heap mutated during push comparison");
            return -1;
        }
        PyObject *child_entry = PyList_GET_ITEM(heap, pos);
        PyObject *parent_entry = PyList_GET_ITEM(heap, parent);
        int lt = lt_fn(child_entry, parent_entry);
        if (lt < 0)
            return -1;
        if (!lt)
            break;
        /* ownership swap: both pointers stay owned by the list */
        PyList_SET_ITEM(heap, pos, parent_entry);
        PyList_SET_ITEM(heap, parent, child_entry);
        pos = parent;
    }
    return 0;
}

static int
heap_push(PyObject *heap, PyObject *item)
{
    return heap_push_cmp(heap, item, entry_lt);
}

/* heappop(heap) discarding the result (the engines only pop stale
 * entries).  Standard sift-down of the relocated tail element. */
static int
heap_discard_min_cmp(PyObject *heap, entry_cmp lt_fn)
{
    Py_ssize_t size = PyList_GET_SIZE(heap);
    if (size == 0) {
        PyErr_SetString(PyExc_IndexError, "pop from empty heap");
        return -1;
    }
    PyObject *tail = PyList_GET_ITEM(heap, size - 1);
    Py_INCREF(tail);
    if (PyList_SetSlice(heap, size - 1, size, NULL) < 0) {
        Py_DECREF(tail);
        return -1;
    }
    size -= 1;
    if (size == 0) {
        Py_DECREF(tail);
        return 0;
    }
    /* replace the root with the tail; the root's reference transfers to
     * this decref, the tail's extra reference transfers to the list */
    PyObject *root = PyList_GET_ITEM(heap, 0);
    PyList_SET_ITEM(heap, 0, tail);
    Py_DECREF(root);
    Py_ssize_t pos = 0;
    for (;;) {
        Py_ssize_t child = 2 * pos + 1;
        if (child >= size)
            break;
        if (size != PyList_GET_SIZE(heap)) {
            PyErr_SetString(PyExc_RuntimeError,
                            "heap mutated during pop comparison");
            return -1;
        }
        if (child + 1 < size) {
            int right_lt = lt_fn(PyList_GET_ITEM(heap, child + 1),
                                 PyList_GET_ITEM(heap, child));
            if (right_lt < 0)
                return -1;
            if (right_lt)
                child += 1;
        }
        int child_lt = lt_fn(PyList_GET_ITEM(heap, child),
                             PyList_GET_ITEM(heap, pos));
        if (child_lt < 0)
            return -1;
        if (!child_lt)
            break;
        PyObject *a = PyList_GET_ITEM(heap, pos);
        PyObject *b = PyList_GET_ITEM(heap, child);
        PyList_SET_ITEM(heap, pos, b);
        PyList_SET_ITEM(heap, child, a);
        pos = child;
    }
    return 0;
}

static int
heap_discard_min(PyObject *heap)
{
    return heap_discard_min_cmp(heap, entry_lt);
}

/* finish = start + length / weight, matching the pure engine bit for bit.
 * float_fast: C doubles when everything is exactly representable,
 * object-protocol arithmetic otherwise; exact mode: tags.advance().
 * Returns a new reference. */
static PyObject *
advance_tag(PyObject *tags, int float_fast, PyObject *start,
            PyObject *length, PyObject *weight)
{
    if (float_fast) {
        if (PyFloat_CheckExact(start) && PyLong_CheckExact(length) &&
            PyLong_CheckExact(weight)) {
            int oflow_l = 0, oflow_w = 0;
            long long lval = PyLong_AsLongLongAndOverflow(length, &oflow_l);
            long long wval = PyLong_AsLongLongAndOverflow(weight, &oflow_w);
            if (!oflow_l && !oflow_w &&
                lval >= 0 && lval <= EXACT_DOUBLE_MAX &&
                wval > 0 && wval <= EXACT_DOUBLE_MAX) {
                double quotient = (double)lval / (double)wval;
                return PyFloat_FromDouble(PyFloat_AS_DOUBLE(start) + quotient);
            }
            if ((!oflow_w && wval <= 0)) {
                /* mirror the pure engine's validation message */
                PyErr_Format(PyExc_ValueError,
                             "weight must be positive, got %R", weight);
                return NULL;
            }
        }
        /* same expression through the object protocol */
        int sign = PyObject_RichCompareBool(weight, long_zero, Py_GT);
        if (sign < 0)
            return NULL;
        if (!sign) {
            PyErr_Format(PyExc_ValueError,
                         "weight must be positive, got %R", weight);
            return NULL;
        }
        PyObject *quotient = PyNumber_TrueDivide(length, weight);
        if (quotient == NULL)
            return NULL;
        PyObject *finish = PyNumber_Add(start, quotient);
        Py_DECREF(quotient);
        return finish;
    }
    return PyObject_CallMethodObjArgs(tags, str_advance, start, length,
                                      weight, NULL);
}

/* read list[i] borrowed with bounds responsibility on the caller */
#define COL(list, i) PyList_GET_ITEM((list), (i))

/* store an owned reference into a list column (decrefs the old value) */
static int
col_store(PyObject *list, Py_ssize_t i, PyObject *owned)
{
    if (owned == NULL)
        return -1;
    return PyList_SetItem(list, i, owned); /* steals owned, decrefs old */
}

static int
bump_version(PyObject *ver_col, Py_ssize_t slot, Py_ssize_t *out)
{
    Py_ssize_t version;
    if (as_ssize(COL(ver_col, slot), &version) < 0)
        return -1;
    version += 1;
    if (col_store(ver_col, slot, PyLong_FromSsize_t(version)) < 0)
        return -1;
    *out = version;
    return 0;
}

/* push (tag, seq, version, slot) for a slot; tag is borrowed */
static int
push_entry(PyObject *heap, PyObject *tag, PyObject *seq_col,
           Py_ssize_t slot, Py_ssize_t version)
{
    PyObject *entry = PyTuple_New(4);
    if (entry == NULL)
        return -1;
    Py_INCREF(tag);
    PyTuple_SET_ITEM(entry, 0, tag);
    PyObject *seq = COL(seq_col, slot);
    Py_INCREF(seq);
    PyTuple_SET_ITEM(entry, 1, seq);
    PyObject *version_obj = PyLong_FromSsize_t(version);
    PyObject *slot_obj = PyLong_FromSsize_t(slot);
    if (version_obj == NULL || slot_obj == NULL) {
        Py_XDECREF(version_obj);
        Py_XDECREF(slot_obj);
        Py_DECREF(entry);
        return -1;
    }
    PyTuple_SET_ITEM(entry, 2, version_obj);
    PyTuple_SET_ITEM(entry, 3, slot_obj);
    int rc = heap_push(heap, entry);
    Py_DECREF(entry);
    return rc;
}

/* ---- per-queue operations ---------------------------------------------- */

/* Validate and fetch queue._cview as a borrowed-from-new-ref list.  The
 * caller must Py_DECREF(*cview) when done. */
static int
get_cview(PyObject *queue, PyObject **cview)
{
    PyObject *view = PyObject_GetAttr(queue, str_cview);
    if (view == NULL)
        return -1;
    if (!PyList_Check(view) || PyList_GET_SIZE(view) != CV_LEN) {
        Py_DECREF(view);
        PyErr_SetString(PyExc_TypeError, "malformed SfqQueue._cview");
        return -1;
    }
    *cview = view;
    return 0;
}

static Py_ssize_t
slot_for_entity(PyObject *slots, PyObject *entity)
{
    PyObject *key = PyLong_FromVoidPtr(entity); /* == id(entity) */
    if (key == NULL)
        return -1;
    PyObject *slot_obj = PyDict_GetItemWithError(slots, key); /* borrowed */
    Py_DECREF(key);
    if (slot_obj == NULL) {
        if (!PyErr_Occurred())
            PyErr_Format(SchedulingError, "entity %R not in SFQ queue",
                         entity);
        return -1;
    }
    Py_ssize_t slot;
    if (as_ssize(slot_obj, &slot) < 0)
        return -1;
    return slot;
}

/* core of SfqQueue.pick over an unpacked cview; returns a *borrowed*
 * reference to the picked entity, Py_None borrowed if nothing runnable,
 * NULL on error. */
static PyObject *
pick_from_cview(PyObject *cview)
{
    PyObject *heap = COL(cview, CV_HEAP);
    PyObject *state = COL(cview, CV_STATE);
    PyObject *ent_col = COL(cview, CV_ENT);
    PyObject *start_col = COL(cview, CV_START);
    PyObject *run_col = COL(cview, CV_RUN);
    PyObject *ver_col = COL(cview, CV_VER);
    Py_ssize_t solo;
    if (as_ssize(COL(cview, CV_SOLO), &solo) < 0)
        return NULL;

    Py_ssize_t slot = -1;
    PyObject *start = NULL; /* borrowed */
    if (solo >= 0) {
        int runnable = PyObject_IsTrue(COL(run_col, solo));
        if (runnable < 0)
            return NULL;
        if (!runnable)
            return Py_None;
        slot = solo;
        start = COL(start_col, solo);
    }
    else {
        while (PyList_GET_SIZE(heap) > 0) {
            PyObject *head = COL(heap, 0);
            Py_ssize_t candidate, entry_version, live_version;
            if (as_ssize(PyTuple_GET_ITEM(head, 3), &candidate) < 0 ||
                as_ssize(PyTuple_GET_ITEM(head, 2), &entry_version) < 0 ||
                as_ssize(COL(ver_col, candidate), &live_version) < 0)
                return NULL;
            int runnable = PyObject_IsTrue(COL(run_col, candidate));
            if (runnable < 0)
                return NULL;
            if (runnable && entry_version == live_version) {
                slot = candidate;
                start = PyTuple_GET_ITEM(head, 0);
                break;
            }
            if (heap_discard_min(heap) < 0)
                return NULL;
        }
        if (slot < 0)
            return Py_None;
    }
    if (col_store(state, ST_SRV, PyLong_FromSsize_t(slot)) < 0)
        return NULL;
    int ahead = tag_gt(start, COL(state, ST_VT));
    if (ahead < 0)
        return NULL;
    if (ahead) {
        Py_INCREF(start);
        if (col_store(state, ST_VT, start) < 0)
            return NULL;
    }
    return COL(ent_col, slot);
}

static PyObject *
sfqc_queue_pick(PyObject *Py_UNUSED(module), PyObject *queue)
{
    PyObject *cview;
    if (get_cview(queue, &cview) < 0)
        return NULL;
    PyObject *picked = pick_from_cview(cview);
    Py_DECREF(cview);
    if (picked == NULL)
        return NULL;
    Py_INCREF(picked);
    return picked;
}

/* shared tail of charge(): store finish, advance max-finish, clear the
 * in-service marker, restamp + repush while runnable.  finish is owned
 * by the caller and stolen here. */
static int
charge_slot(PyObject *heap, PyObject *state, PyObject *start_col,
            PyObject *fin_col, PyObject *run_col, PyObject *ver_col,
            PyObject *seq_col, Py_ssize_t solo, Py_ssize_t slot,
            PyObject *finish)
{
    if (col_store(fin_col, slot, finish) < 0)
        return -1; /* finish consumed even on failure */
    /* finish is now borrowed from the column */
    finish = COL(fin_col, slot);
    int beyond = tag_gt(finish, COL(state, ST_MF));
    if (beyond < 0)
        return -1;
    if (beyond) {
        Py_INCREF(finish);
        if (col_store(state, ST_MF, finish) < 0)
            return -1;
    }
    Py_ssize_t in_service;
    if (as_ssize(COL(state, ST_SRV), &in_service) < 0)
        return -1;
    if (in_service == slot) {
        if (col_store(state, ST_SRV, PyLong_FromSsize_t(-1)) < 0)
            return -1;
    }
    int runnable = PyObject_IsTrue(COL(run_col, slot));
    if (runnable < 0)
        return -1;
    if (runnable) {
        Py_INCREF(finish);
        if (col_store(start_col, slot, finish) < 0)
            return -1;
        finish = COL(start_col, slot);
        Py_ssize_t version;
        if (bump_version(ver_col, slot, &version) < 0)
            return -1;
        if (solo < 0 && push_entry(heap, finish, seq_col, slot, version) < 0)
            return -1;
    }
    return 0;
}

static int
queue_charge_impl(PyObject *queue, PyObject *entity, PyObject *length)
{
    /* mirror the pure precondition: negative lengths are rejected */
    int negative = PyObject_RichCompareBool(length, long_zero, Py_LT);
    if (negative < 0)
        return -1;
    if (negative) {
        PyErr_Format(SchedulingError, "negative charge length %S", length);
        return -1;
    }
    PyObject *cview;
    if (get_cview(queue, &cview) < 0)
        return -1;
    PyObject *slots = COL(cview, CV_SLOTS);
    Py_ssize_t slot = slot_for_entity(slots, entity);
    if (slot < 0)
        goto fail;
    PyObject *weight = PyObject_GetAttr(entity, str_weight);
    if (weight == NULL)
        goto fail;
    Py_ssize_t float_fast, solo;
    if (as_ssize(COL(cview, CV_FLOAT), &float_fast) < 0 ||
        as_ssize(COL(cview, CV_SOLO), &solo) < 0) {
        Py_DECREF(weight);
        goto fail;
    }
    PyObject *start_col = COL(cview, CV_START);
    PyObject *finish = advance_tag(COL(cview, CV_TAGS), (int)float_fast,
                                   COL(start_col, slot), length, weight);
    Py_DECREF(weight);
    if (finish == NULL)
        goto fail;
    if (charge_slot(COL(cview, CV_HEAP), COL(cview, CV_STATE), start_col,
                    COL(cview, CV_FIN), COL(cview, CV_RUN),
                    COL(cview, CV_VER), COL(cview, CV_SEQ), solo, slot,
                    finish) < 0)
        goto fail;
    Py_DECREF(cview);
    return 0;
fail:
    Py_DECREF(cview);
    return -1;
}

static PyObject *
sfqc_queue_charge(PyObject *Py_UNUSED(module), PyObject *const *args,
                  Py_ssize_t nargs)
{
    if (nargs != 3) {
        PyErr_SetString(PyExc_TypeError,
                        "queue_charge expects (queue, entity, length)");
        return NULL;
    }
    if (queue_charge_impl(args[0], args[1], args[2]) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static int
queue_set_runnable_impl(PyObject *queue, PyObject *entity)
{
    PyObject *cview;
    if (get_cview(queue, &cview) < 0)
        return -1;
    Py_ssize_t slot = slot_for_entity(COL(cview, CV_SLOTS), entity);
    if (slot < 0)
        goto fail;
    PyObject *run_col = COL(cview, CV_RUN);
    int runnable = PyObject_IsTrue(COL(run_col, slot));
    if (runnable < 0)
        goto fail;
    if (runnable) {
        Py_DECREF(cview);
        return 0;
    }
    PyObject *state = COL(cview, CV_STATE);
    PyObject *start_col = COL(cview, CV_START);
    PyObject *fin_col = COL(cview, CV_FIN);
    PyObject *ver_col = COL(cview, CV_VER);
    Py_ssize_t solo, count;
    if (as_ssize(COL(cview, CV_SOLO), &solo) < 0 ||
        as_ssize(COL(state, ST_RC), &count) < 0)
        goto fail;
    if (col_store(run_col, slot, PyLong_FromLong(1)) < 0 ||
        col_store(state, ST_RC, PyLong_FromSsize_t(count + 1)) < 0)
        goto fail;
    /* start = max(v, F) */
    PyObject *start = COL(fin_col, slot);
    int behind = tag_lt(start, COL(state, ST_VT));
    if (behind < 0)
        goto fail;
    if (behind)
        start = COL(state, ST_VT);
    Py_INCREF(start);
    if (col_store(start_col, slot, start) < 0)
        goto fail;
    start = COL(start_col, slot);
    Py_ssize_t version;
    if (bump_version(ver_col, slot, &version) < 0)
        goto fail;
    if (solo < 0 && push_entry(COL(cview, CV_HEAP), start,
                               COL(cview, CV_SEQ), slot, version) < 0)
        goto fail;
    Py_DECREF(cview);
    return 0;
fail:
    Py_DECREF(cview);
    return -1;
}

static PyObject *
sfqc_queue_set_runnable(PyObject *Py_UNUSED(module), PyObject *const *args,
                        Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError,
                        "queue_set_runnable expects (queue, entity)");
        return NULL;
    }
    if (queue_set_runnable_impl(args[0], args[1]) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static int
queue_set_blocked_impl(PyObject *queue, PyObject *entity)
{
    PyObject *cview;
    if (get_cview(queue, &cview) < 0)
        return -1;
    Py_ssize_t slot = slot_for_entity(COL(cview, CV_SLOTS), entity);
    if (slot < 0)
        goto fail;
    PyObject *run_col = COL(cview, CV_RUN);
    int runnable = PyObject_IsTrue(COL(run_col, slot));
    if (runnable < 0)
        goto fail;
    if (!runnable) {
        Py_DECREF(cview);
        return 0;
    }
    PyObject *state = COL(cview, CV_STATE);
    Py_ssize_t version, count, in_service;
    if (col_store(run_col, slot, PyLong_FromLong(0)) < 0 ||
        bump_version(COL(cview, CV_VER), slot, &version) < 0 ||
        as_ssize(COL(state, ST_RC), &count) < 0)
        goto fail;
    count -= 1;
    if (col_store(state, ST_RC, PyLong_FromSsize_t(count)) < 0 ||
        as_ssize(COL(state, ST_SRV), &in_service) < 0)
        goto fail;
    if (in_service == slot &&
        col_store(state, ST_SRV, PyLong_FromSsize_t(-1)) < 0)
        goto fail;
    if (count == 0) {
        int jump = tag_gt(COL(state, ST_MF), COL(state, ST_VT));
        if (jump < 0)
            goto fail;
        if (jump) {
            PyObject *max_finish = COL(state, ST_MF);
            Py_INCREF(max_finish);
            if (col_store(state, ST_VT, max_finish) < 0)
                goto fail;
        }
    }
    Py_DECREF(cview);
    return 0;
fail:
    Py_DECREF(cview);
    return -1;
}

static PyObject *
sfqc_queue_set_blocked(PyObject *Py_UNUSED(module), PyObject *const *args,
                       Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError,
                        "queue_set_blocked expects (queue, entity)");
        return NULL;
    }
    if (queue_set_blocked_impl(args[0], args[1]) < 0)
        return NULL;
    Py_RETURN_NONE;
}

/* ---- tree descent ------------------------------------------------------- */

/* Min-start descent from root until a node of leaf_type is reached.
 * Returns a NEW reference to the leaf (or Py_None when some queue ran
 * empty mid-walk), with the decision depth in *depth_out. */
static PyObject *
pick_leaf_walk(PyObject *root, PyTypeObject *leaf_type, Py_ssize_t *depth_out)
{
    PyObject *node = root;
    Py_INCREF(node);
    Py_ssize_t depth = 1;
    while (Py_TYPE(node) != leaf_type) {
        PyObject *queue = PyObject_GetAttr(node, str_queue);
        if (queue == NULL) {
            Py_DECREF(node);
            return NULL;
        }
        PyObject *cview;
        int rc = get_cview(queue, &cview);
        Py_DECREF(queue);
        if (rc < 0) {
            Py_DECREF(node);
            return NULL;
        }
        PyObject *child = pick_from_cview(cview); /* borrowed */
        if (child == NULL) {
            Py_DECREF(cview);
            Py_DECREF(node);
            return NULL;
        }
        if (child == Py_None) {
            Py_DECREF(cview);
            Py_DECREF(node);
            *depth_out = depth;
            Py_RETURN_NONE;
        }
        Py_INCREF(child);
        Py_DECREF(cview);
        Py_DECREF(node);
        node = child;
        depth += 1;
    }
    *depth_out = depth;
    return node;
}

static PyObject *
sfqc_pick_leaf(PyObject *Py_UNUSED(module), PyObject *const *args,
               Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError,
                        "pick_leaf expects (root, leaf_type)");
        return NULL;
    }
    if (!PyType_Check(args[1])) {
        PyErr_SetString(PyExc_TypeError, "leaf_type must be a type");
        return NULL;
    }
    Py_ssize_t depth = 0;
    PyObject *leaf = pick_leaf_walk(args[0], (PyTypeObject *)args[1], &depth);
    if (leaf == NULL)
        return NULL;
    PyObject *result = Py_BuildValue("On", leaf, depth);
    Py_DECREF(leaf);
    return result;
}

/* ---- chain walks -------------------------------------------------------- */

static int
check_chain(PyObject *chain)
{
    if (!PyList_Check(chain)) {
        PyErr_SetString(PyExc_TypeError, "chain must be a list");
        return -1;
    }
    for (Py_ssize_t i = 0; i < PyList_GET_SIZE(chain); i++) {
        PyObject *entry = PyList_GET_ITEM(chain, i);
        if (!PyTuple_Check(entry) || PyTuple_GET_SIZE(entry) != CH_LEN) {
            PyErr_SetString(PyExc_TypeError, "malformed chain entry");
            return -1;
        }
    }
    return 0;
}

static int
charge_chain_impl(PyObject *chain, PyObject *length)
{
    if (check_chain(chain) < 0)
        return -1;
    for (Py_ssize_t i = 0; i < PyList_GET_SIZE(chain); i++) {
        PyObject *entry = PyList_GET_ITEM(chain, i);
        PyObject *queue = PyTuple_GET_ITEM(entry, CH_QUEUE);
        PyObject *entity = PyTuple_GET_ITEM(entry, CH_ENTITY);
        Py_ssize_t float_fast, solo, slot;
        if (as_ssize(PyTuple_GET_ITEM(entry, CH_FLOAT), &float_fast) < 0 ||
            as_ssize(PyTuple_GET_ITEM(entry, CH_SOLO), &solo) < 0 ||
            as_ssize(PyTuple_GET_ITEM(entry, CH_SLOT), &slot) < 0)
            return -1;
        PyObject *weight = PyObject_GetAttr(entity, str_weight);
        if (weight == NULL)
            return -1;
        PyObject *start_col = PyTuple_GET_ITEM(entry, CH_START);
        PyObject *tags = NULL;
        if (!float_fast) {
            tags = PyObject_GetAttrString(queue, "tags");
            if (tags == NULL) {
                Py_DECREF(weight);
                return -1;
            }
        }
        PyObject *finish = advance_tag(tags, (int)float_fast,
                                       COL(start_col, slot), length, weight);
        Py_XDECREF(tags);
        Py_DECREF(weight);
        if (finish == NULL)
            return -1;
        if (charge_slot(PyTuple_GET_ITEM(entry, CH_HEAP),
                        PyTuple_GET_ITEM(entry, CH_STATE), start_col,
                        PyTuple_GET_ITEM(entry, CH_FIN),
                        PyTuple_GET_ITEM(entry, CH_RUN),
                        PyTuple_GET_ITEM(entry, CH_VER),
                        PyTuple_GET_ITEM(entry, CH_SEQ),
                        solo, slot, finish) < 0)
            return -1;
    }
    return 0;
}

static PyObject *
sfqc_charge_chain(PyObject *Py_UNUSED(module), PyObject *const *args,
                  Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError,
                        "charge_chain expects (chain, length)");
        return NULL;
    }
    if (charge_chain_impl(args[0], args[1]) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static int
wake_chain_impl(PyObject *chain)
{
    if (check_chain(chain) < 0)
        return -1;
    for (Py_ssize_t i = 0; i < PyList_GET_SIZE(chain); i++) {
        PyObject *entry = PyList_GET_ITEM(chain, i);
        PyObject *state = PyTuple_GET_ITEM(entry, CH_STATE);
        PyObject *run_col = PyTuple_GET_ITEM(entry, CH_RUN);
        PyObject *parent = PyTuple_GET_ITEM(entry, CH_PARENT);
        Py_ssize_t solo, slot;
        if (as_ssize(PyTuple_GET_ITEM(entry, CH_SOLO), &solo) < 0 ||
            as_ssize(PyTuple_GET_ITEM(entry, CH_SLOT), &slot) < 0)
            return -1;
        int runnable = PyObject_IsTrue(COL(run_col, slot));
        if (runnable < 0)
            return -1;
        if (!runnable) {
            Py_ssize_t count, version;
            if (as_ssize(COL(state, ST_RC), &count) < 0 ||
                col_store(run_col, slot, PyLong_FromLong(1)) < 0 ||
                col_store(state, ST_RC, PyLong_FromSsize_t(count + 1)) < 0)
                return -1;
            PyObject *fin_col = PyTuple_GET_ITEM(entry, CH_FIN);
            PyObject *start_col = PyTuple_GET_ITEM(entry, CH_START);
            PyObject *start = COL(fin_col, slot);
            int behind = tag_lt(start, COL(state, ST_VT));
            if (behind < 0)
                return -1;
            if (behind)
                start = COL(state, ST_VT);
            Py_INCREF(start);
            if (col_store(start_col, slot, start) < 0)
                return -1;
            start = COL(start_col, slot);
            if (bump_version(PyTuple_GET_ITEM(entry, CH_VER), slot,
                             &version) < 0)
                return -1;
            if (solo < 0 &&
                push_entry(PyTuple_GET_ITEM(entry, CH_HEAP), start,
                           PyTuple_GET_ITEM(entry, CH_SEQ), slot,
                           version) < 0)
                return -1;
        }
        int parent_runnable = -1;
        PyObject *flag = PyObject_GetAttr(parent, str_runnable);
        if (flag == NULL)
            return -1;
        parent_runnable = PyObject_IsTrue(flag);
        Py_DECREF(flag);
        if (parent_runnable < 0)
            return -1;
        if (parent_runnable)
            return 0;
        if (PyObject_SetAttr(parent, str_runnable, Py_True) < 0)
            return -1;
    }
    return 0;
}

static PyObject *
sfqc_wake_chain(PyObject *Py_UNUSED(module), PyObject *chain)
{
    if (wake_chain_impl(chain) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static int
sleep_chain_impl(PyObject *chain)
{
    if (check_chain(chain) < 0)
        return -1;
    for (Py_ssize_t i = 0; i < PyList_GET_SIZE(chain); i++) {
        PyObject *entry = PyList_GET_ITEM(chain, i);
        PyObject *state = PyTuple_GET_ITEM(entry, CH_STATE);
        PyObject *run_col = PyTuple_GET_ITEM(entry, CH_RUN);
        PyObject *parent = PyTuple_GET_ITEM(entry, CH_PARENT);
        Py_ssize_t slot;
        if (as_ssize(PyTuple_GET_ITEM(entry, CH_SLOT), &slot) < 0)
            return -1;
        int runnable = PyObject_IsTrue(COL(run_col, slot));
        if (runnable < 0)
            return -1;
        Py_ssize_t count;
        if (as_ssize(COL(state, ST_RC), &count) < 0)
            return -1;
        if (runnable) {
            Py_ssize_t version, in_service;
            if (col_store(run_col, slot, PyLong_FromLong(0)) < 0 ||
                bump_version(PyTuple_GET_ITEM(entry, CH_VER), slot,
                             &version) < 0)
                return -1;
            count -= 1;
            if (col_store(state, ST_RC, PyLong_FromSsize_t(count)) < 0 ||
                as_ssize(COL(state, ST_SRV), &in_service) < 0)
                return -1;
            if (in_service == slot &&
                col_store(state, ST_SRV, PyLong_FromSsize_t(-1)) < 0)
                return -1;
            if (count == 0) {
                int jump = tag_gt(COL(state, ST_MF), COL(state, ST_VT));
                if (jump < 0)
                    return -1;
                if (jump) {
                    PyObject *max_finish = COL(state, ST_MF);
                    Py_INCREF(max_finish);
                    if (col_store(state, ST_VT, max_finish) < 0)
                        return -1;
                }
            }
        }
        if (count > 0)
            return 0;
        if (PyObject_SetAttr(parent, str_runnable, Py_False) < 0)
            return -1;
    }
    return 0;
}

static PyObject *
sfqc_sleep_chain(PyObject *Py_UNUSED(module), PyObject *chain)
{
    if (sleep_chain_impl(chain) < 0)
        return NULL;
    Py_RETURN_NONE;
}

/* ---- machine turbo tick -------------------------------------------------
 *
 * machine_tick is the compiled mirror of the uniprocessor Machine's
 * burst-completion cycle: _on_burst_complete -> _account_burst ->
 * _finish_dispatch -> _maybe_dispatch -> _begin_burst.  Machine._begin_burst
 * installs it as the completion callback when nothing unusual is attached;
 * the tick re-checks every dynamic condition at fire time and bails back
 * to the exact Python method that owns the uncommon path:
 *
 *   - bus tracing active or a tracer attached  -> Machine._on_burst_complete
 *   - schedsan wrapper / non-hierarchical top  -> per-call scheduler methods
 *   - non-SFQ leaf scheduler                   -> HierarchicalScheduler.*
 *   - costed dispatch model                    -> Machine._maybe_dispatch
 *   - interrupt service in progress            -> Machine._defer_dispatch
 *
 * The bail-outs happen at method-call granularity, so the observable
 * sequence of scheduler interactions (and therefore traces, schedstat
 * and SCHEDSAN's pick/charge pairing) is identical to the pure path.
 */

static PyObject *str_active, *str_tracer, *str_engine, *str_now,
    *str_current, *str_stats, *str_burst_planned, *str_burst_compute_start,
    *str_burst_handle, *str_quantum_work_left, *str_quantum_work_done,
    *str_paused, *str_intr_busy_until, *str_remaining_work, *str_state,
    *str_leaf, *str_scheduler, *str_wakeup_handle, *str_held_mutexes,
    *str_work_done, *str_cpu_time, *str_busy_time, *str_dispatches,
    *str_context_switches, *str_segments_completed, *str_blocks,
    *str_exited_at, *str_capacity_ips, *str_default_quantum,
    *str_default_quantum_work, *str_quantum_attr, *str_structure, *str_root,
    *str_tree_version, *str_charge_chains, *str_charge_chains_version,
    *str_chain_for, *str_decision_depth, *str_last_ran, *str_cost_model,
    *str_turbo, *str_advance_workload, *str_maybe_dispatch,
    *str_on_burst_complete, *str_on_wakeup, *str_defer_dispatch,
    *str_release_held_mutexes, *str_retire, *str_charge,
    *str_thread_blocked, *str_equeue, *str_eheap, *str_eseq, *str_elive,
    *str_fired, *str_callback, *str_arg, *str_cancelled, *str_time,
    *str_priority, *str_seq_attr, *str_turbo_wake, *str_wakeups,
    *str_transition, *str_last_runnable_at, *str_thread_runnable,
    *str_preempt_policy, *str_should_preempt, *str_preempt_current;
static PyObject *long_one, *long_neg_one, *long_second, *empty_tuple;

/* lazily resolved classes/objects (the repro modules that define them
 * import this extension, so they cannot be imported at module init) */
static int machine_ready = 0;
static PyObject *TS_NEW, *TS_RUNNABLE, *TS_RUNNING, *TS_SLEEPING, *TS_EXITED;
static PyTypeObject *HierType, *LeafNodeType, *SfqLeafType, *CostBaseType,
    *EventHandleType;
static PyObject *SimulationErrorC, *BUS_obj;
static PyObject *OUT_RUN, *OUT_SLEEP, *OUT_WAIT, *OUT_EXIT;
static PyObject *PRIO_COMPLETION, *PRIO_WAKEUP;

static PyObject *
import_attr(const char *module, const char *name)
{
    PyObject *mod = PyImport_ImportModule(module);
    if (mod == NULL)
        return NULL;
    PyObject *value = PyObject_GetAttrString(mod, name);
    Py_DECREF(mod);
    return value;
}

static int
ensure_machine_state(void)
{
    if (machine_ready)
        return 0;
    PyObject *ts = import_attr("repro.threads.states", "ThreadState");
    if (ts == NULL)
        return -1;
    TS_NEW = PyObject_GetAttrString(ts, "NEW");
    TS_RUNNABLE = TS_NEW ? PyObject_GetAttrString(ts, "RUNNABLE") : NULL;
    TS_RUNNING = TS_RUNNABLE ? PyObject_GetAttrString(ts, "RUNNING") : NULL;
    TS_SLEEPING = TS_RUNNING ? PyObject_GetAttrString(ts, "SLEEPING") : NULL;
    TS_EXITED = TS_SLEEPING ? PyObject_GetAttrString(ts, "EXITED") : NULL;
    Py_DECREF(ts);
    if (TS_EXITED == NULL)
        return -1;
    HierType = (PyTypeObject *)import_attr("repro.core.hierarchy",
                                           "HierarchicalScheduler");
    if (HierType == NULL)
        return -1;
    LeafNodeType = (PyTypeObject *)import_attr("repro.core.node", "LeafNode");
    if (LeafNodeType == NULL)
        return -1;
    SfqLeafType = (PyTypeObject *)import_attr("repro.schedulers.sfq_leaf",
                                              "SfqScheduler");
    if (SfqLeafType == NULL)
        return -1;
    CostBaseType = (PyTypeObject *)import_attr("repro.cpu.costs",
                                               "SchedulingCostModel");
    if (CostBaseType == NULL)
        return -1;
    EventHandleType = (PyTypeObject *)import_attr("repro.sim.events",
                                                  "EventHandle");
    if (EventHandleType == NULL)
        return -1;
    SimulationErrorC = import_attr("repro.errors", "SimulationError");
    if (SimulationErrorC == NULL)
        return -1;
    BUS_obj = import_attr("repro.obs.events", "BUS");
    if (BUS_obj == NULL)
        return -1;
    OUT_RUN = import_attr("repro.cpu.machine", "_OUTCOME_RUN");
    if (OUT_RUN == NULL)
        return -1;
    OUT_SLEEP = import_attr("repro.cpu.machine", "_OUTCOME_SLEEP");
    if (OUT_SLEEP == NULL)
        return -1;
    OUT_WAIT = import_attr("repro.cpu.machine", "_OUTCOME_WAIT");
    if (OUT_WAIT == NULL)
        return -1;
    OUT_EXIT = import_attr("repro.cpu.machine", "_OUTCOME_EXIT");
    if (OUT_EXIT == NULL)
        return -1;
    PyObject *machine_cls = import_attr("repro.cpu.machine", "Machine");
    if (machine_cls == NULL)
        return -1;
    PRIO_COMPLETION = PyObject_GetAttrString(machine_cls,
                                             "PRIORITY_COMPLETION");
    PRIO_WAKEUP = PRIO_COMPLETION
        ? PyObject_GetAttrString(machine_cls, "PRIORITY_WAKEUP") : NULL;
    Py_DECREF(machine_cls);
    if (PRIO_WAKEUP == NULL)
        return -1;
    if (!PyType_Check((PyObject *)HierType) ||
        !PyType_Check((PyObject *)LeafNodeType) ||
        !PyType_Check((PyObject *)SfqLeafType) ||
        !PyType_Check((PyObject *)CostBaseType) ||
        !PyType_Check((PyObject *)EventHandleType)) {
        PyErr_SetString(PyExc_TypeError,
                        "repro scheduler classes are not types");
        return -1;
    }
    machine_ready = 1;
    return 0;
}

/* obj.<name> += delta (new int object; never in-place mutation) */
static int
attr_iadd(PyObject *obj, PyObject *name, PyObject *delta)
{
    PyObject *old = PyObject_GetAttr(obj, name);
    if (old == NULL)
        return -1;
    PyObject *updated = PyNumber_Add(old, delta);
    Py_DECREF(old);
    if (updated == NULL)
        return -1;
    int rc = PyObject_SetAttr(obj, name, updated);
    Py_DECREF(updated);
    return rc;
}

static int
attr_isub(PyObject *obj, PyObject *name, PyObject *delta)
{
    PyObject *old = PyObject_GetAttr(obj, name);
    if (old == NULL)
        return -1;
    PyObject *updated = PyNumber_Subtract(old, delta);
    Py_DECREF(old);
    if (updated == NULL)
        return -1;
    int rc = PyObject_SetAttr(obj, name, updated);
    Py_DECREF(updated);
    return rc;
}

/* call obj.<name>(...) discarding the result */
static int
call0(PyObject *obj, PyObject *name)
{
    PyObject *result = PyObject_CallMethodObjArgs(obj, name, NULL);
    if (result == NULL)
        return -1;
    Py_DECREF(result);
    return 0;
}

static int
call1(PyObject *obj, PyObject *name, PyObject *a)
{
    PyObject *result = PyObject_CallMethodObjArgs(obj, name, a, NULL);
    if (result == NULL)
        return -1;
    Py_DECREF(result);
    return 0;
}

static int
call2(PyObject *obj, PyObject *name, PyObject *a, PyObject *b)
{
    PyObject *result = PyObject_CallMethodObjArgs(obj, name, a, b, NULL);
    if (result == NULL)
        return -1;
    Py_DECREF(result);
    return 0;
}

static int
call3(PyObject *obj, PyObject *name, PyObject *a, PyObject *b, PyObject *c)
{
    PyObject *result = PyObject_CallMethodObjArgs(obj, name, a, b, c, NULL);
    if (result == NULL)
        return -1;
    Py_DECREF(result);
    return 0;
}

enum { OC_RUN, OC_SLEEP, OC_WAIT, OC_EXIT, OC_OTHER };

static int
outcome_code(PyObject *outcome)
{
    if (outcome == OUT_RUN)
        return OC_RUN;
    if (outcome == OUT_SLEEP)
        return OC_SLEEP;
    if (outcome == OUT_WAIT)
        return OC_WAIT;
    if (outcome == OUT_EXIT)
        return OC_EXIT;
    if (PyUnicode_Check(outcome)) {
        if (PyUnicode_CompareWithASCIIString(outcome, "run") == 0)
            return OC_RUN;
        if (PyUnicode_CompareWithASCIIString(outcome, "sleep") == 0)
            return OC_SLEEP;
        if (PyUnicode_CompareWithASCIIString(outcome, "wait") == 0)
            return OC_WAIT;
        if (PyUnicode_CompareWithASCIIString(outcome, "exit") == 0)
            return OC_EXIT;
    }
    return OC_OTHER; /* mirrors the Python else-branches */
}

/* HierarchicalScheduler._chain_for, with the cache hit done inline */
static PyObject *
chain_for(PyObject *sched, PyObject *leaf)
{
    PyObject *cached_version = PyObject_GetAttr(sched,
                                                str_charge_chains_version);
    if (cached_version == NULL)
        return NULL;
    PyObject *structure = PyObject_GetAttr(sched, str_structure);
    if (structure == NULL) {
        Py_DECREF(cached_version);
        return NULL;
    }
    PyObject *tree_version = PyObject_GetAttr(structure, str_tree_version);
    Py_DECREF(structure);
    if (tree_version == NULL) {
        Py_DECREF(cached_version);
        return NULL;
    }
    int fresh = PyObject_RichCompareBool(cached_version, tree_version, Py_EQ);
    Py_DECREF(cached_version);
    Py_DECREF(tree_version);
    if (fresh < 0)
        return NULL;
    if (fresh) {
        PyObject *chains = PyObject_GetAttr(sched, str_charge_chains);
        if (chains == NULL)
            return NULL;
        PyObject *key = PyLong_FromVoidPtr(leaf); /* == id(leaf) */
        if (key == NULL) {
            Py_DECREF(chains);
            return NULL;
        }
        PyObject *chain = PyDict_GetItemWithError(chains, key); /* borrowed */
        Py_DECREF(key);
        Py_DECREF(chains);
        if (chain != NULL) {
            Py_INCREF(chain);
            return chain;
        }
        if (PyErr_Occurred())
            return NULL;
    }
    /* stale cache or miss: the Python method rebuilds and re-caches */
    return PyObject_CallMethodObjArgs(sched, str_chain_for, leaf, NULL);
}

/* HierarchicalScheduler.charge for the traced-off path; bails to the
 * scheduler's own charge() for anything that is not an SFQ leaf under
 * the hierarchical scheduler. */
static int
h_charge(PyObject *sched, PyObject *thread, PyObject *work, PyObject *now)
{
    if (Py_TYPE(sched) != HierType)
        return call3(sched, str_charge, thread, work, now);
    PyObject *leaf = PyObject_GetAttr(thread, str_leaf);
    if (leaf == NULL)
        return -1;
    if (Py_TYPE(leaf) != LeafNodeType) {
        Py_DECREF(leaf);
        return call3(sched, str_charge, thread, work, now);
    }
    PyObject *lsched = PyObject_GetAttr(leaf, str_scheduler);
    if (lsched == NULL) {
        Py_DECREF(leaf);
        return -1;
    }
    if (Py_TYPE(lsched) != SfqLeafType) {
        Py_DECREF(lsched);
        Py_DECREF(leaf);
        return call3(sched, str_charge, thread, work, now);
    }
    PyObject *lqueue = PyObject_GetAttr(lsched, str_queue);
    Py_DECREF(lsched);
    if (lqueue == NULL) {
        Py_DECREF(leaf);
        return -1;
    }
    int rc = queue_charge_impl(lqueue, thread, work);
    Py_DECREF(lqueue);
    if (rc < 0) {
        Py_DECREF(leaf);
        return -1;
    }
    PyObject *chain = chain_for(sched, leaf);
    Py_DECREF(leaf);
    if (chain == NULL)
        return -1;
    rc = charge_chain_impl(chain, work);
    Py_DECREF(chain);
    return rc;
}

/* HierarchicalScheduler.thread_blocked + _sleep_if_idle */
static int
h_thread_blocked(PyObject *sched, PyObject *thread, PyObject *now)
{
    if (Py_TYPE(sched) != HierType)
        return call2(sched, str_thread_blocked, thread, now);
    PyObject *leaf = PyObject_GetAttr(thread, str_leaf);
    if (leaf == NULL)
        return -1;
    if (Py_TYPE(leaf) != LeafNodeType) {
        Py_DECREF(leaf);
        return call2(sched, str_thread_blocked, thread, now);
    }
    PyObject *lsched = PyObject_GetAttr(leaf, str_scheduler);
    if (lsched == NULL) {
        Py_DECREF(leaf);
        return -1;
    }
    if (Py_TYPE(lsched) != SfqLeafType) {
        Py_DECREF(lsched);
        Py_DECREF(leaf);
        return call2(sched, str_thread_blocked, thread, now);
    }
    PyObject *lqueue = PyObject_GetAttr(lsched, str_queue);
    Py_DECREF(lsched);
    if (lqueue == NULL) {
        Py_DECREF(leaf);
        return -1;
    }
    if (queue_set_blocked_impl(lqueue, thread) < 0) {
        Py_DECREF(lqueue);
        Py_DECREF(leaf);
        return -1;
    }
    /* _sleep_if_idle: leaf.runnable and not leaf.scheduler.has_runnable() */
    PyObject *flag = PyObject_GetAttr(leaf, str_runnable);
    if (flag == NULL) {
        Py_DECREF(lqueue);
        Py_DECREF(leaf);
        return -1;
    }
    int leaf_runnable = PyObject_IsTrue(flag);
    Py_DECREF(flag);
    if (leaf_runnable < 0) {
        Py_DECREF(lqueue);
        Py_DECREF(leaf);
        return -1;
    }
    int rc = 0;
    if (leaf_runnable) {
        PyObject *cview;
        if (get_cview(lqueue, &cview) < 0) {
            rc = -1;
        }
        else {
            Py_ssize_t runnable_count;
            rc = as_ssize(COL(COL(cview, CV_STATE), ST_RC), &runnable_count);
            Py_DECREF(cview);
            if (rc == 0 && runnable_count == 0) {
                if (PyObject_SetAttr(leaf, str_runnable, Py_False) < 0) {
                    rc = -1;
                }
                else {
                    PyObject *chain = chain_for(sched, leaf);
                    if (chain == NULL)
                        rc = -1;
                    else {
                        rc = sleep_chain_impl(chain);
                        Py_DECREF(chain);
                    }
                }
            }
        }
    }
    Py_DECREF(lqueue);
    Py_DECREF(leaf);
    return rc;
}

/* Simulator.at + EventQueue.push: schedule callback(arg) and return a
 * new reference to the EventHandle. */
static PyObject *
sched_at(PyObject *engine, PyObject *time, PyObject *callback, PyObject *arg,
         PyObject *priority)
{
    PyObject *now = PyObject_GetAttr(engine, str_now);
    if (now == NULL)
        return NULL;
    int past = PyObject_RichCompareBool(time, now, Py_LT);
    if (past != 0) {
        if (past > 0)
            PyErr_Format(SimulationErrorC,
                         "cannot schedule event in the past: t=%S < now=%S",
                         time, now);
        Py_DECREF(now);
        return NULL;
    }
    Py_DECREF(now);
    int negative = PyObject_RichCompareBool(time, long_zero, Py_LT);
    if (negative != 0) {
        if (negative > 0)
            PyErr_Format(SimulationErrorC,
                         "cannot schedule event at negative time %S", time);
        return NULL;
    }
    PyObject *queue = PyObject_GetAttr(engine, str_equeue);
    if (queue == NULL)
        return NULL;
    PyObject *seq = PyObject_GetAttr(queue, str_eseq);
    if (seq == NULL)
        goto fail_queue;
    {
        PyObject *next_seq = PyNumber_Add(seq, long_one);
        if (next_seq == NULL)
            goto fail_seq;
        int rc = PyObject_SetAttr(queue, str_eseq, next_seq);
        Py_DECREF(next_seq);
        if (rc < 0)
            goto fail_seq;
    }
    {
        PyObject *handle = EventHandleType->tp_new(EventHandleType,
                                                   empty_tuple, NULL);
        if (handle == NULL)
            goto fail_seq;
        if (PyObject_SetAttr(handle, str_time, time) < 0 ||
            PyObject_SetAttr(handle, str_priority, priority) < 0 ||
            PyObject_SetAttr(handle, str_seq_attr, seq) < 0 ||
            PyObject_SetAttr(handle, str_callback, callback) < 0 ||
            PyObject_SetAttr(handle, str_arg, arg) < 0 ||
            PyObject_SetAttr(handle, str_cancelled, Py_False) < 0) {
            Py_DECREF(handle);
            goto fail_seq;
        }
        PyObject *entry = PyTuple_New(4);
        if (entry == NULL) {
            Py_DECREF(handle);
            goto fail_seq;
        }
        Py_INCREF(time);
        PyTuple_SET_ITEM(entry, 0, time);
        Py_INCREF(priority);
        PyTuple_SET_ITEM(entry, 1, priority);
        Py_INCREF(seq);
        PyTuple_SET_ITEM(entry, 2, seq);
        Py_INCREF(handle);
        PyTuple_SET_ITEM(entry, 3, handle);
        PyObject *heap = PyObject_GetAttr(queue, str_eheap);
        if (heap == NULL) {
            Py_DECREF(entry);
            Py_DECREF(handle);
            goto fail_seq;
        }
        int rc = heap_push_cmp(heap, entry, event_entry_lt);
        Py_DECREF(heap);
        Py_DECREF(entry);
        if (rc < 0 || attr_iadd(queue, str_elive, long_one) < 0) {
            Py_DECREF(handle);
            goto fail_seq;
        }
        Py_DECREF(seq);
        Py_DECREF(queue);
        return handle;
    }
fail_seq:
    Py_DECREF(seq);
fail_queue:
    Py_DECREF(queue);
    return NULL;
}

/* Machine._schedule_wakeup with tracing known to be off: schedule the
 * compiled wake entry (or _on_wakeup when no turbo is installed) and
 * store the handle on the thread. */
static int
schedule_wake(PyObject *machine, PyObject *engine, PyObject *thread,
              PyObject *wake)
{
    PyObject *wake_cb = PyObject_GetAttr(machine, str_turbo_wake);
    if (wake_cb == NULL)
        return -1;
    PyObject *handle;
    if (wake_cb == Py_None) {
        Py_DECREF(wake_cb);
        PyObject *on_wakeup = PyObject_GetAttr(machine, str_on_wakeup);
        if (on_wakeup == NULL)
            return -1;
        handle = sched_at(engine, wake, on_wakeup, thread, PRIO_WAKEUP);
        Py_DECREF(on_wakeup);
    }
    else {
        PyObject *pair = PyTuple_Pack(2, machine, thread);
        if (pair == NULL) {
            Py_DECREF(wake_cb);
            return -1;
        }
        handle = sched_at(engine, wake, wake_cb, pair, PRIO_WAKEUP);
        Py_DECREF(wake_cb);
        Py_DECREF(pair);
    }
    if (handle == NULL)
        return -1;
    int rc = PyObject_SetAttr(thread, str_wakeup_handle, handle);
    Py_DECREF(handle);
    return rc;
}

/* _account_burst(self._burst_planned), with tracing known to be off */
static int
tick_account(PyObject *machine, PyObject *cur, PyObject *now)
{
    PyObject *planned = PyObject_GetAttr(machine, str_burst_planned);
    if (planned == NULL)
        return -1;
    int executed = PyObject_RichCompareBool(planned, long_zero, Py_GT);
    if (executed <= 0) {
        Py_DECREF(planned);
        return executed; /* 0: nothing to book; <0: comparison error */
    }
    PyObject *remaining = PyObject_GetAttr(cur, str_remaining_work);
    if (remaining == NULL)
        goto fail;
    {
        PyObject *updated = PyNumber_Subtract(remaining, planned);
        Py_DECREF(remaining);
        if (updated == NULL)
            goto fail;
        int negative = PyObject_RichCompareBool(updated, long_zero, Py_LT);
        if (negative < 0) {
            Py_DECREF(updated);
            goto fail;
        }
        if (negative) {
            Py_DECREF(updated);
            PyErr_SetString(SimulationErrorC,
                            "burst executed more work than remained");
            goto fail;
        }
        int rc = PyObject_SetAttr(cur, str_remaining_work, updated);
        Py_DECREF(updated);
        if (rc < 0)
            goto fail;
    }
    if (attr_isub(machine, str_quantum_work_left, planned) < 0 ||
        attr_iadd(machine, str_quantum_work_done, planned) < 0)
        goto fail;
    {
        PyObject *compute_start = PyObject_GetAttr(machine,
                                                   str_burst_compute_start);
        if (compute_start == NULL)
            goto fail;
        PyObject *elapsed = PyNumber_Subtract(now, compute_start);
        Py_DECREF(compute_start);
        if (elapsed == NULL)
            goto fail;
        int negative = PyObject_RichCompareBool(elapsed, long_zero, Py_LT);
        if (negative < 0) {
            Py_DECREF(elapsed);
            goto fail;
        }
        if (negative) { /* max(0, ...) */
            Py_DECREF(elapsed);
            elapsed = long_zero;
            Py_INCREF(elapsed);
        }
        PyObject *tstats = PyObject_GetAttr(cur, str_stats);
        if (tstats == NULL) {
            Py_DECREF(elapsed);
            goto fail;
        }
        int rc = attr_iadd(tstats, str_work_done, planned);
        if (rc == 0)
            rc = attr_iadd(tstats, str_cpu_time, elapsed);
        Py_DECREF(tstats);
        if (rc == 0) {
            PyObject *mstats = PyObject_GetAttr(machine, str_stats);
            if (mstats == NULL)
                rc = -1;
            else {
                rc = attr_iadd(mstats, str_busy_time, elapsed);
                Py_DECREF(mstats);
            }
        }
        Py_DECREF(elapsed);
        if (rc < 0)
            goto fail;
    }
    Py_DECREF(planned);
    return 0;
fail:
    Py_DECREF(planned);
    return -1;
}

/* The dispatch half of the tick (Machine._maybe_dispatch +
 * _begin_burst with a zero-cost model).  Returns 0 on success (which
 * includes the graceful fallbacks to Python) or -1 with an exception. */
static int
tick_dispatch(PyObject *machine, PyObject *engine, PyObject *sched,
              PyObject *now)
{
    PyObject *check = PyObject_GetAttr(machine, str_current);
    if (check == NULL)
        return -1;
    int busy = (check != Py_None);
    Py_DECREF(check);
    if (busy)
        return 0;
    PyObject *busy_until = PyObject_GetAttr(machine, str_intr_busy_until);
    if (busy_until == NULL)
        return -1;
    int in_service = PyObject_RichCompareBool(now, busy_until, Py_LT);
    if (in_service < 0) {
        Py_DECREF(busy_until);
        return -1;
    }
    if (in_service) {
        int rc = call1(machine, str_defer_dispatch, busy_until);
        Py_DECREF(busy_until);
        return rc;
    }
    Py_DECREF(busy_until);
    /* a costed model or a wrapped/non-hierarchical scheduler: Python owns
     * the full decision */
    PyObject *cost_model = PyObject_GetAttr(machine, str_cost_model);
    if (cost_model == NULL)
        return -1;
    int zero_cost = (Py_TYPE(cost_model) == CostBaseType);
    Py_DECREF(cost_model);
    if (!zero_cost || Py_TYPE(sched) != HierType)
        return call0(machine, str_maybe_dispatch);
    PyObject *structure = PyObject_GetAttr(sched, str_structure);
    if (structure == NULL)
        return -1;
    PyObject *root = PyObject_GetAttr(structure, str_root);
    Py_DECREF(structure);
    if (root == NULL)
        return -1;
    {
        PyObject *flag = PyObject_GetAttr(root, str_runnable);
        if (flag == NULL) {
            Py_DECREF(root);
            return -1;
        }
        int root_runnable = PyObject_IsTrue(flag);
        Py_DECREF(flag);
        if (root_runnable < 0) {
            Py_DECREF(root);
            return -1;
        }
        if (!root_runnable) {
            /* pick_next -> None and has_runnable() agrees: nothing to do */
            Py_DECREF(root);
            return 0;
        }
    }
    Py_ssize_t depth = 0;
    PyObject *leaf = pick_leaf_walk(root, LeafNodeType, &depth);
    Py_DECREF(root);
    if (leaf == NULL)
        return -1;
    if (leaf == Py_None) {
        /* empty queue mid-descent: the Python re-walk raises the
         * standard diagnostic (the descent so far is idempotent) */
        Py_DECREF(leaf);
        return call0(machine, str_maybe_dispatch);
    }
    PyObject *lsched = PyObject_GetAttr(leaf, str_scheduler);
    if (lsched == NULL) {
        Py_DECREF(leaf);
        return -1;
    }
    if (Py_TYPE(lsched) != SfqLeafType) {
        Py_DECREF(lsched);
        Py_DECREF(leaf);
        return call0(machine, str_maybe_dispatch);
    }
    PyObject *lqueue = PyObject_GetAttr(lsched, str_queue);
    if (lqueue == NULL) {
        Py_DECREF(lsched);
        Py_DECREF(leaf);
        return -1;
    }
    /* scheduler.quantum_for(thread) inlined for the verified SFQ leaf:
     * nothing can rebind the leaf quantum between here and burst start */
    PyObject *quantum_ns = PyObject_GetAttr(lsched, str_quantum_attr);
    Py_DECREF(lsched);
    Py_DECREF(leaf);
    if (quantum_ns == NULL) {
        Py_DECREF(lqueue);
        return -1;
    }
    PyObject *cview;
    if (get_cview(lqueue, &cview) < 0) {
        Py_DECREF(lqueue);
        Py_DECREF(quantum_ns);
        return -1;
    }
    Py_DECREF(lqueue);
    PyObject *thread = pick_from_cview(cview); /* borrowed from columns */
    if (thread == NULL) {
        Py_DECREF(cview);
        Py_DECREF(quantum_ns);
        return -1;
    }
    Py_INCREF(thread);
    Py_DECREF(cview);
    if (thread == Py_None) {
        /* leaf marked runnable with no thread: Python raises */
        Py_DECREF(thread);
        Py_DECREF(quantum_ns);
        return call0(machine, str_maybe_dispatch);
    }
    {
        PyObject *depth_obj = PyLong_FromSsize_t(depth);
        if (depth_obj == NULL)
            goto fail_quantum;
        int rc = PyObject_SetAttr(sched, str_decision_depth, depth_obj);
        Py_DECREF(depth_obj);
        if (rc < 0)
            goto fail_quantum;
    }
    {
        PyObject *state = PyObject_GetAttr(thread, str_state);
        if (state == NULL)
            goto fail_quantum;
        int runnable = (state == TS_RUNNABLE);
        Py_DECREF(state);
        if (!runnable) {
            /* Python re-picks (idempotent) and raises the contract error */
            Py_DECREF(thread);
            Py_DECREF(quantum_ns);
            return call0(machine, str_maybe_dispatch);
        }
    }
    int switched;
    {
        PyObject *last = PyObject_GetAttr(machine, str_last_ran);
        if (last == NULL)
            goto fail_quantum;
        switched = (thread != last);
        Py_DECREF(last);
    }
    if (PyObject_SetAttr(thread, str_state, TS_RUNNING) < 0 ||
        PyObject_SetAttr(machine, str_current, thread) < 0 ||
        PyObject_SetAttr(machine, str_last_ran, thread) < 0)
        goto fail_quantum;
    {
        PyObject *mstats = PyObject_GetAttr(machine, str_stats);
        if (mstats == NULL)
            goto fail_quantum;
        int rc = attr_iadd(mstats, str_dispatches, long_one);
        if (rc == 0 && switched)
            rc = attr_iadd(mstats, str_context_switches, long_one);
        Py_DECREF(mstats);
        if (rc < 0)
            goto fail_quantum;
        PyObject *tstats = PyObject_GetAttr(thread, str_stats);
        if (tstats == NULL)
            goto fail_quantum;
        rc = attr_iadd(tstats, str_dispatches, long_one);
        Py_DECREF(tstats);
        if (rc < 0)
            goto fail_quantum;
        /* stats.overhead_time += 0 elided: the zero-cost model was
         * verified above, so the value cannot change */
    }
    PyObject *capacity = PyObject_GetAttr(machine, str_capacity_ips);
    if (capacity == NULL)
        goto fail_quantum;
    PyObject *quantum_work = NULL, *planned = NULL;
    if (quantum_ns == Py_None) {
        Py_DECREF(quantum_ns);
        quantum_ns = PyObject_GetAttr(machine, str_default_quantum);
        if (quantum_ns == NULL)
            goto fail_capacity;
        quantum_work = PyObject_GetAttr(machine, str_default_quantum_work);
        if (quantum_work == NULL)
            goto fail_capacity;
    }
    else {
        /* work_from_time(quantum_ns, capacity), mirrored */
        int negative = PyObject_RichCompareBool(quantum_ns, long_zero, Py_LT);
        if (negative < 0)
            goto fail_capacity;
        if (negative) {
            PyErr_Format(PyExc_ValueError,
                         "duration must be non-negative, got %S", quantum_ns);
            goto fail_capacity;
        }
        PyObject *product = PyNumber_Multiply(quantum_ns, capacity);
        if (product == NULL)
            goto fail_capacity;
        quantum_work = PyNumber_FloorDivide(product, long_second);
        Py_DECREF(product);
        if (quantum_work == NULL)
            goto fail_capacity;
    }
    {
        int positive = PyObject_RichCompareBool(quantum_work, long_zero,
                                                Py_GT);
        if (positive < 0)
            goto fail_capacity;
        if (!positive) {
            PyErr_Format(SimulationErrorC,
                         "quantum of %S ns yields zero instructions at "
                         "%S ips", quantum_ns, capacity);
            goto fail_capacity;
        }
    }
    if (PyObject_SetAttr(machine, str_quantum_work_left, quantum_work) < 0 ||
        PyObject_SetAttr(machine, str_quantum_work_done, long_zero) < 0)
        goto fail_capacity;
    Py_DECREF(quantum_ns);
    quantum_ns = NULL;
    /* _begin_burst(0) */
    {
        PyObject *remaining = PyObject_GetAttr(thread, str_remaining_work);
        if (remaining == NULL)
            goto fail_capacity;
        int rem_smaller = PyObject_RichCompareBool(remaining, quantum_work,
                                                   Py_LT);
        if (rem_smaller < 0) {
            Py_DECREF(remaining);
            goto fail_capacity;
        }
        planned = rem_smaller ? remaining : quantum_work;
        Py_INCREF(planned);
        Py_DECREF(remaining);
        Py_DECREF(quantum_work);
        quantum_work = NULL;
    }
    {
        int positive = PyObject_RichCompareBool(planned, long_zero, Py_GT);
        if (positive < 0)
            goto fail_planned;
        if (!positive) {
            PyErr_Format(SimulationErrorC,
                         "attempted to start an empty burst for %R", thread);
            goto fail_planned;
        }
    }
    if (PyObject_SetAttr(machine, str_burst_planned, planned) < 0 ||
        PyObject_SetAttr(machine, str_burst_compute_start, now) < 0 ||
        PyObject_SetAttr(machine, str_paused, Py_False) < 0)
        goto fail_planned;
    {
        /* duration = -((-planned * SECOND) // capacity)  (ceil division) */
        PyObject *negated = PyNumber_Negative(planned);
        if (negated == NULL)
            goto fail_planned;
        PyObject *product = PyNumber_Multiply(negated, long_second);
        Py_DECREF(negated);
        if (product == NULL)
            goto fail_planned;
        PyObject *quotient = PyNumber_FloorDivide(product, capacity);
        Py_DECREF(product);
        if (quotient == NULL)
            goto fail_planned;
        PyObject *duration = PyNumber_Negative(quotient);
        Py_DECREF(quotient);
        if (duration == NULL)
            goto fail_planned;
        PyObject *fire_at = PyNumber_Add(now, duration);
        Py_DECREF(duration);
        if (fire_at == NULL)
            goto fail_planned;
        PyObject *turbo = PyObject_GetAttr(machine, str_turbo);
        if (turbo == NULL) {
            Py_DECREF(fire_at);
            goto fail_planned;
        }
        PyObject *handle = sched_at(engine, fire_at, turbo, machine,
                                    PRIO_COMPLETION);
        Py_DECREF(turbo);
        Py_DECREF(fire_at);
        if (handle == NULL)
            goto fail_planned;
        int rc = PyObject_SetAttr(machine, str_burst_handle, handle);
        Py_DECREF(handle);
        if (rc < 0)
            goto fail_planned;
    }
    Py_DECREF(planned);
    Py_DECREF(capacity);
    Py_DECREF(thread);
    return 0;
fail_planned:
    Py_XDECREF(planned);
fail_capacity:
    Py_XDECREF(quantum_work);
    Py_DECREF(capacity);
fail_quantum:
    Py_XDECREF(quantum_ns);
    Py_DECREF(thread);
    return -1;
}

static PyObject *
machine_tick_impl(PyObject *machine)
{
    if (ensure_machine_state() < 0)
        return NULL;
    /* dynamic bail-outs: observation machinery owns the Python path */
    {
        PyObject *flag = PyObject_GetAttr(BUS_obj, str_active);
        if (flag == NULL)
            return NULL;
        int bus_on = PyObject_IsTrue(flag);
        Py_DECREF(flag);
        if (bus_on < 0)
            return NULL;
        int traced = 0;
        if (!bus_on) {
            PyObject *tracer = PyObject_GetAttr(machine, str_tracer);
            if (tracer == NULL)
                return NULL;
            traced = (tracer != Py_None);
            Py_DECREF(tracer);
        }
        if (bus_on || traced)
            return PyObject_CallMethodObjArgs(machine, str_on_burst_complete,
                                              NULL);
    }
    PyObject *engine = NULL, *now = NULL, *cur = NULL, *sched = NULL;
    PyObject *wake = NULL;
    int outcome = OC_RUN;
    engine = PyObject_GetAttr(machine, str_engine);
    if (engine == NULL)
        return NULL;
    now = PyObject_GetAttr(engine, str_now);
    if (now == NULL)
        goto fail;
    cur = PyObject_GetAttr(machine, str_current);
    if (cur == NULL)
        goto fail;
    if (cur == Py_None) {
        /* no dispatch in flight: the Python handler owns the assertion */
        Py_DECREF(engine);
        Py_DECREF(now);
        Py_DECREF(cur);
        return PyObject_CallMethodObjArgs(machine, str_on_burst_complete,
                                          NULL);
    }
    if (PyObject_SetAttr(machine, str_burst_handle, Py_None) < 0)
        goto fail;
    if (tick_account(machine, cur, now) < 0)
        goto fail;
    /* ---- _finish_dispatch ------------------------------------------- */
    if (PyObject_SetAttr(machine, str_current, Py_None) < 0 ||
        PyObject_SetAttr(machine, str_paused, Py_False) < 0)
        goto fail;
    {
        PyObject *remaining = PyObject_GetAttr(cur, str_remaining_work);
        if (remaining == NULL)
            goto fail;
        int has_work = PyObject_RichCompareBool(remaining, long_zero, Py_GT);
        Py_DECREF(remaining);
        if (has_work < 0)
            goto fail;
        if (has_work) {
            outcome = OC_RUN;
            wake = Py_None;
            Py_INCREF(wake);
        }
        else {
            PyObject *tstats = PyObject_GetAttr(cur, str_stats);
            if (tstats == NULL)
                goto fail;
            int rc = attr_iadd(tstats, str_segments_completed, long_one);
            Py_DECREF(tstats);
            if (rc < 0)
                goto fail;
            PyObject *result = PyObject_CallMethodObjArgs(
                machine, str_advance_workload, cur, NULL);
            if (result == NULL)
                goto fail;
            if (!PyTuple_Check(result) || PyTuple_GET_SIZE(result) != 2) {
                Py_DECREF(result);
                PyErr_SetString(PyExc_TypeError,
                                "_advance_workload must return "
                                "(outcome, wake_time)");
                goto fail;
            }
            outcome = outcome_code(PyTuple_GET_ITEM(result, 0));
            wake = PyTuple_GET_ITEM(result, 1);
            Py_INCREF(wake);
            Py_DECREF(result);
        }
    }
    /* state first, then charge (see Machine._finish_dispatch) */
    if (outcome == OC_RUN) {
        if (PyObject_SetAttr(cur, str_state, TS_RUNNABLE) < 0)
            goto fail;
    }
    else if (outcome == OC_SLEEP || outcome == OC_WAIT) {
        if (PyObject_SetAttr(cur, str_state, TS_SLEEPING) < 0)
            goto fail;
        PyObject *tstats = PyObject_GetAttr(cur, str_stats);
        if (tstats == NULL)
            goto fail;
        int rc = attr_iadd(tstats, str_blocks, long_one);
        Py_DECREF(tstats);
        if (rc < 0)
            goto fail;
    }
    else {
        if (PyObject_SetAttr(cur, str_state, TS_EXITED) < 0)
            goto fail;
        PyObject *tstats = PyObject_GetAttr(cur, str_stats);
        if (tstats == NULL)
            goto fail;
        int rc = PyObject_SetAttr(tstats, str_exited_at, now);
        Py_DECREF(tstats);
        if (rc < 0)
            goto fail;
    }
    sched = PyObject_GetAttr(machine, str_scheduler);
    if (sched == NULL)
        goto fail;
    {
        PyObject *quantum_done = PyObject_GetAttr(machine,
                                                  str_quantum_work_done);
        if (quantum_done == NULL)
            goto fail;
        int charged = PyObject_RichCompareBool(quantum_done, long_zero,
                                               Py_GT);
        if (charged > 0)
            charged = (h_charge(sched, cur, quantum_done, now) < 0) ? -1 : 0;
        Py_DECREF(quantum_done);
        if (charged < 0)
            goto fail;
    }
    if (PyObject_SetAttr(machine, str_quantum_work_done, long_zero) < 0 ||
        PyObject_SetAttr(machine, str_quantum_work_left, long_zero) < 0)
        goto fail;
    if (outcome == OC_SLEEP) {
        if (h_thread_blocked(sched, cur, now) < 0)
            goto fail;
        if (schedule_wake(machine, engine, cur, wake) < 0)
            goto fail;
    }
    else if (outcome == OC_WAIT) {
        if (h_thread_blocked(sched, cur, now) < 0)
            goto fail;
    }
    else if (outcome == OC_EXIT) {
        PyObject *held = PyObject_GetAttr(cur, str_held_mutexes);
        if (held == NULL)
            goto fail;
        int holding = PyObject_IsTrue(held);
        Py_DECREF(held);
        if (holding < 0)
            goto fail;
        if (holding && call1(machine, str_release_held_mutexes, cur) < 0)
            goto fail;
        if (call2(sched, str_retire, cur, now) < 0)
            goto fail;
    }
    if (tick_dispatch(machine, engine, sched, now) < 0)
        goto fail;
    Py_DECREF(engine);
    Py_DECREF(now);
    Py_DECREF(cur);
    Py_DECREF(sched);
    Py_DECREF(wake);
    Py_RETURN_NONE;
fail:
    Py_XDECREF(engine);
    Py_XDECREF(now);
    Py_XDECREF(cur);
    Py_XDECREF(sched);
    Py_XDECREF(wake);
    return NULL;
}

static PyObject *
sfqc_machine_tick(PyObject *Py_UNUSED(module), PyObject *machine)
{
    return machine_tick_impl(machine);
}

/* SimThread.transition(RUNNABLE): the wake path arrives from SLEEPING
 * (or NEW via spawn), where the edge is legal by the lifecycle graph;
 * anything else delegates so the canonical error is raised. */
static int
thread_to_runnable(PyObject *thread)
{
    PyObject *state = PyObject_GetAttr(thread, str_state);
    if (state == NULL)
        return -1;
    int direct = (state == TS_SLEEPING || state == TS_NEW);
    Py_DECREF(state);
    if (direct)
        return PyObject_SetAttr(thread, str_state, TS_RUNNABLE);
    return call1(thread, str_transition, TS_RUNNABLE);
}

/* HierarchicalScheduler.thread_runnable: on_runnable + setrun */
static int
h_thread_runnable(PyObject *sched, PyObject *thread, PyObject *now)
{
    if (Py_TYPE(sched) != HierType)
        return call2(sched, str_thread_runnable, thread, now);
    PyObject *leaf = PyObject_GetAttr(thread, str_leaf);
    if (leaf == NULL)
        return -1;
    if (Py_TYPE(leaf) != LeafNodeType) {
        Py_DECREF(leaf);
        return call2(sched, str_thread_runnable, thread, now);
    }
    PyObject *lsched = PyObject_GetAttr(leaf, str_scheduler);
    if (lsched == NULL) {
        Py_DECREF(leaf);
        return -1;
    }
    if (Py_TYPE(lsched) != SfqLeafType) {
        Py_DECREF(lsched);
        Py_DECREF(leaf);
        return call2(sched, str_thread_runnable, thread, now);
    }
    PyObject *lqueue = PyObject_GetAttr(lsched, str_queue);
    Py_DECREF(lsched);
    if (lqueue == NULL) {
        Py_DECREF(leaf);
        return -1;
    }
    int rc = queue_set_runnable_impl(lqueue, thread);
    Py_DECREF(lqueue);
    if (rc < 0) {
        Py_DECREF(leaf);
        return -1;
    }
    /* setrun(leaf) */
    PyObject *flag = PyObject_GetAttr(leaf, str_runnable);
    if (flag == NULL) {
        Py_DECREF(leaf);
        return -1;
    }
    int leaf_runnable = PyObject_IsTrue(flag);
    Py_DECREF(flag);
    if (leaf_runnable < 0) {
        Py_DECREF(leaf);
        return -1;
    }
    rc = 0;
    if (!leaf_runnable) {
        if (PyObject_SetAttr(leaf, str_runnable, Py_True) < 0) {
            rc = -1;
        }
        else {
            PyObject *chain = chain_for(sched, leaf);
            if (chain == NULL)
                rc = -1;
            else {
                rc = wake_chain_impl(chain);
                Py_DECREF(chain);
            }
        }
    }
    Py_DECREF(leaf);
    return rc;
}

/* Machine._make_runnable with tracing known to be off, including the
 * trailing preempt check and re-dispatch. */
static int
wake_make_runnable(PyObject *machine, PyObject *engine, PyObject *sched,
                   PyObject *thread, PyObject *now)
{
    if (thread_to_runnable(thread) < 0)
        return -1;
    if (PyObject_SetAttr(thread, str_last_runnable_at, now) < 0)
        return -1;
    if (h_thread_runnable(sched, thread, now) < 0)
        return -1;
    PyObject *cur = PyObject_GetAttr(machine, str_current);
    if (cur == NULL)
        return -1;
    if (cur != Py_None) {
        PyObject *paused_flag = PyObject_GetAttr(machine, str_paused);
        if (paused_flag == NULL) {
            Py_DECREF(cur);
            return -1;
        }
        int paused = PyObject_IsTrue(paused_flag);
        Py_DECREF(paused_flag);
        if (paused < 0) {
            Py_DECREF(cur);
            return -1;
        }
        if (!paused) {
            int preempt = 0;
            int consult = 1;
            if (Py_TYPE(sched) == HierType) {
                /* PREEMPT_NONE (the default) always answers False */
                PyObject *pol = PyObject_GetAttr(sched, str_preempt_policy);
                if (pol == NULL) {
                    Py_DECREF(cur);
                    return -1;
                }
                if (PyUnicode_Check(pol) &&
                    PyUnicode_CompareWithASCIIString(pol, "none") == 0)
                    consult = 0;
                Py_DECREF(pol);
            }
            if (consult) {
                PyObject *verdict = PyObject_CallMethodObjArgs(
                    sched, str_should_preempt, cur, thread, now, NULL);
                if (verdict == NULL) {
                    Py_DECREF(cur);
                    return -1;
                }
                preempt = PyObject_IsTrue(verdict);
                Py_DECREF(verdict);
                if (preempt < 0) {
                    Py_DECREF(cur);
                    return -1;
                }
            }
            if (preempt && call0(machine, str_preempt_current) < 0) {
                Py_DECREF(cur);
                return -1;
            }
        }
    }
    Py_DECREF(cur);
    return tick_dispatch(machine, engine, sched, now);
}

/* Machine._settle with tracing known to be off */
static int
wake_settle(PyObject *machine, PyObject *engine, PyObject *sched,
            PyObject *thread, PyObject *now)
{
    PyObject *result = PyObject_CallMethodObjArgs(
        machine, str_advance_workload, thread, NULL);
    if (result == NULL)
        return -1;
    if (!PyTuple_Check(result) || PyTuple_GET_SIZE(result) != 2) {
        Py_DECREF(result);
        PyErr_SetString(PyExc_TypeError,
                        "_advance_workload must return (outcome, wake_time)");
        return -1;
    }
    int outcome = outcome_code(PyTuple_GET_ITEM(result, 0));
    PyObject *wake = PyTuple_GET_ITEM(result, 1);
    Py_INCREF(wake);
    Py_DECREF(result);
    int rc = 0;
    if (outcome == OC_RUN) {
        rc = wake_make_runnable(machine, engine, sched, thread, now);
    }
    else if (outcome == OC_SLEEP || outcome == OC_WAIT) {
        PyObject *state = PyObject_GetAttr(thread, str_state);
        if (state == NULL) {
            rc = -1;
        }
        else {
            int sleeping = (state == TS_SLEEPING);
            Py_DECREF(state);
            if (!sleeping)
                rc = call1(thread, str_transition, TS_SLEEPING);
        }
        if (rc == 0 && outcome == OC_SLEEP)
            rc = schedule_wake(machine, engine, thread, wake);
    }
    else {
        rc = call1(thread, str_transition, TS_EXITED);
        if (rc == 0) {
            PyObject *tstats = PyObject_GetAttr(thread, str_stats);
            if (tstats == NULL)
                rc = -1;
            else {
                rc = PyObject_SetAttr(tstats, str_exited_at, now);
                Py_DECREF(tstats);
            }
        }
        if (rc == 0) {
            PyObject *held = PyObject_GetAttr(thread, str_held_mutexes);
            if (held == NULL)
                rc = -1;
            else {
                int holding = PyObject_IsTrue(held);
                Py_DECREF(held);
                if (holding < 0)
                    rc = -1;
                else if (holding)
                    rc = call1(machine, str_release_held_mutexes, thread);
            }
        }
        if (rc == 0)
            rc = call2(sched, str_retire, thread, now);
    }
    Py_DECREF(wake);
    return rc;
}

/* Machine._on_wakeup, scheduled by schedule_wake with (machine, thread)
 * packed as the event argument. */
static PyObject *
sfqc_machine_wake(PyObject *Py_UNUSED(module), PyObject *pair)
{
    if (!PyTuple_Check(pair) || PyTuple_GET_SIZE(pair) != 2) {
        PyErr_SetString(PyExc_TypeError,
                        "machine_wake expects a (machine, thread) pair");
        return NULL;
    }
    PyObject *machine = PyTuple_GET_ITEM(pair, 0);
    PyObject *thread = PyTuple_GET_ITEM(pair, 1);
    if (ensure_machine_state() < 0)
        return NULL;
    /* tracing turned on since the wakeup was scheduled: Python owns it */
    {
        PyObject *flag = PyObject_GetAttr(BUS_obj, str_active);
        if (flag == NULL)
            return NULL;
        int bus_on = PyObject_IsTrue(flag);
        Py_DECREF(flag);
        if (bus_on < 0)
            return NULL;
        int traced = 0;
        if (!bus_on) {
            PyObject *tracer = PyObject_GetAttr(machine, str_tracer);
            if (tracer == NULL)
                return NULL;
            traced = (tracer != Py_None);
            Py_DECREF(tracer);
        }
        if (bus_on || traced)
            return PyObject_CallMethodObjArgs(machine, str_on_wakeup,
                                              thread, NULL);
    }
    if (PyObject_SetAttr(thread, str_wakeup_handle, Py_None) < 0)
        return NULL;
    {
        PyObject *tstats = PyObject_GetAttr(thread, str_stats);
        if (tstats == NULL)
            return NULL;
        int rc = attr_iadd(tstats, str_wakeups, long_one);
        Py_DECREF(tstats);
        if (rc < 0)
            return NULL;
    }
    PyObject *engine = PyObject_GetAttr(machine, str_engine);
    if (engine == NULL)
        return NULL;
    PyObject *now = PyObject_GetAttr(engine, str_now);
    PyObject *sched = now ? PyObject_GetAttr(machine, str_scheduler) : NULL;
    if (sched == NULL) {
        Py_XDECREF(now);
        Py_DECREF(engine);
        return NULL;
    }
    PyObject *remaining = PyObject_GetAttr(thread, str_remaining_work);
    int rc;
    if (remaining == NULL) {
        rc = -1;
    }
    else {
        int has_work = PyObject_RichCompareBool(remaining, long_zero, Py_GT);
        Py_DECREF(remaining);
        if (has_work < 0)
            rc = -1;
        else if (has_work)
            rc = wake_make_runnable(machine, engine, sched, thread, now);
        else
            rc = wake_settle(machine, engine, sched, thread, now);
    }
    Py_DECREF(sched);
    Py_DECREF(now);
    Py_DECREF(engine);
    if (rc < 0)
        return NULL;
    Py_RETURN_NONE;
}

/* Simulator.run_until's drain loop: pop due events and fire them.  The
 * caller (run_until) owns the _running guard and the final clock
 * assignment; exceptions from callbacks propagate exactly as in the
 * pure loop. */
static PyObject *
sfqc_sim_drain(PyObject *Py_UNUSED(module), PyObject *const *args,
               Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError, "sim_drain expects (sim, time)");
        return NULL;
    }
    PyObject *sim = args[0], *horizon = args[1];
    PyObject *queue = PyObject_GetAttr(sim, str_equeue);
    if (queue == NULL)
        return NULL;
    PyObject *heap = PyObject_GetAttr(queue, str_eheap);
    if (heap == NULL) {
        Py_DECREF(queue);
        return NULL;
    }
    if (!PyList_Check(heap)) {
        PyErr_SetString(PyExc_TypeError, "event heap must be a list");
        goto fail;
    }
    while (PyList_GET_SIZE(heap) > 0) {
        PyObject *head = PyList_GET_ITEM(heap, 0);
        Py_INCREF(head);
        if (!PyTuple_Check(head) || PyTuple_GET_SIZE(head) != 4) {
            Py_DECREF(head);
            PyErr_SetString(PyExc_TypeError, "malformed event entry");
            goto fail;
        }
        PyObject *handle = PyTuple_GET_ITEM(head, 3);
        PyObject *flag = PyObject_GetAttr(handle, str_cancelled);
        if (flag == NULL) {
            Py_DECREF(head);
            goto fail;
        }
        int cancelled = PyObject_IsTrue(flag);
        Py_DECREF(flag);
        if (cancelled < 0) {
            Py_DECREF(head);
            goto fail;
        }
        if (cancelled) {
            int rc = heap_discard_min_cmp(heap, event_entry_lt);
            Py_DECREF(head);
            if (rc < 0)
                goto fail;
            continue;
        }
        int late = PyObject_RichCompareBool(PyTuple_GET_ITEM(head, 0),
                                            horizon, Py_GT);
        if (late < 0) {
            Py_DECREF(head);
            goto fail;
        }
        if (late) {
            Py_DECREF(head);
            break;
        }
        if (heap_discard_min_cmp(heap, event_entry_lt) < 0 ||
            attr_iadd(queue, str_elive, long_neg_one) < 0 ||
            PyObject_SetAttr(sim, str_now, PyTuple_GET_ITEM(head, 0)) < 0 ||
            attr_iadd(sim, str_fired, long_one) < 0) {
            Py_DECREF(head);
            goto fail;
        }
        PyObject *callback = PyObject_GetAttr(handle, str_callback);
        PyObject *cb_arg = callback == NULL
            ? NULL : PyObject_GetAttr(handle, str_arg);
        if (callback == NULL || cb_arg == NULL) {
            Py_XDECREF(callback);
            Py_DECREF(head);
            goto fail;
        }
        /* handle.cancel(): release the fired handle's references */
        if (PyObject_SetAttr(handle, str_cancelled, Py_True) < 0 ||
            PyObject_SetAttr(handle, str_callback, Py_None) < 0 ||
            PyObject_SetAttr(handle, str_arg, Py_None) < 0) {
            Py_DECREF(callback);
            Py_DECREF(cb_arg);
            Py_DECREF(head);
            goto fail;
        }
        PyObject *result;
        if (callback == Py_None) {
            result = Py_None;
            Py_INCREF(result);
        }
        else if (cb_arg == Py_None)
            result = PyObject_CallNoArgs(callback);
        else
            result = PyObject_CallOneArg(callback, cb_arg);
        Py_DECREF(callback);
        Py_DECREF(cb_arg);
        Py_DECREF(head);
        if (result == NULL)
            goto fail;
        Py_DECREF(result);
    }
    Py_DECREF(heap);
    Py_DECREF(queue);
    Py_RETURN_NONE;
fail:
    Py_DECREF(heap);
    Py_DECREF(queue);
    return NULL;
}

/* ---- module ------------------------------------------------------------- */

static PyMethodDef sfqc_methods[] = {
    {"queue_pick", (PyCFunction)sfqc_queue_pick, METH_O,
     "SfqQueue.pick over the arena columns (compiled engine)."},
    {"queue_charge", (PyCFunction)(void (*)(void))sfqc_queue_charge,
     METH_FASTCALL,
     "SfqQueue.charge(queue, entity, length) (compiled engine)."},
    {"queue_set_runnable",
     (PyCFunction)(void (*)(void))sfqc_queue_set_runnable, METH_FASTCALL,
     "SfqQueue.set_runnable(queue, entity) (compiled engine)."},
    {"queue_set_blocked",
     (PyCFunction)(void (*)(void))sfqc_queue_set_blocked, METH_FASTCALL,
     "SfqQueue.set_blocked(queue, entity) (compiled engine)."},
    {"pick_leaf", (PyCFunction)(void (*)(void))sfqc_pick_leaf,
     METH_FASTCALL,
     "Min-start descent from root to a leaf (compiled engine)."},
    {"charge_chain", (PyCFunction)(void (*)(void))sfqc_charge_chain,
     METH_FASTCALL,
     "Charge every level of a precomputed ancestor chain."},
    {"wake_chain", (PyCFunction)sfqc_wake_chain, METH_O,
     "Propagate leaf eligibility up a precomputed ancestor chain."},
    {"sleep_chain", (PyCFunction)sfqc_sleep_chain, METH_O,
     "Propagate leaf idleness up a precomputed ancestor chain."},
    {"machine_tick", (PyCFunction)sfqc_machine_tick, METH_O,
     "Machine burst-completion cycle: account, finish, re-dispatch."},
    {"machine_wake", (PyCFunction)sfqc_machine_wake, METH_O,
     "Machine wakeup event: make the thread runnable and re-dispatch."},
    {"sim_drain", (PyCFunction)(void (*)(void))sfqc_sim_drain,
     METH_FASTCALL,
     "Simulator.run_until drain loop: pop due events and fire them."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef sfqc_module = {
    PyModuleDef_HEAD_INIT,
    "repro.core._sfqc",
    "Compiled SFQ hot-path engine (see repro/core/engine.py).",
    -1,
    sfqc_methods,
    NULL, NULL, NULL, NULL,
};

static struct {
    PyObject **slot;
    const char *text;
} intern_table[] = {
    {&str_cview, "_cview"},
    {&str_weight, "weight"},
    {&str_advance, "advance"},
    {&str_runnable, "runnable"},
    {&str_queue, "queue"},
    {&str_parent, "parent"},
    {&str_active, "active"},
    {&str_tracer, "tracer"},
    {&str_engine, "engine"},
    {&str_now, "now"},
    {&str_current, "current"},
    {&str_stats, "stats"},
    {&str_burst_planned, "_burst_planned"},
    {&str_burst_compute_start, "_burst_compute_start"},
    {&str_burst_handle, "_burst_handle"},
    {&str_quantum_work_left, "_quantum_work_left"},
    {&str_quantum_work_done, "_quantum_work_done"},
    {&str_paused, "_paused"},
    {&str_intr_busy_until, "_intr_busy_until"},
    {&str_remaining_work, "remaining_work"},
    {&str_state, "state"},
    {&str_leaf, "leaf"},
    {&str_scheduler, "scheduler"},
    {&str_wakeup_handle, "wakeup_handle"},
    {&str_held_mutexes, "held_mutexes"},
    {&str_work_done, "work_done"},
    {&str_cpu_time, "cpu_time"},
    {&str_busy_time, "busy_time"},
    {&str_dispatches, "dispatches"},
    {&str_context_switches, "context_switches"},
    {&str_segments_completed, "segments_completed"},
    {&str_blocks, "blocks"},
    {&str_exited_at, "exited_at"},
    {&str_capacity_ips, "capacity_ips"},
    {&str_default_quantum, "default_quantum"},
    {&str_default_quantum_work, "_default_quantum_work"},
    {&str_quantum_attr, "_quantum"},
    {&str_structure, "structure"},
    {&str_root, "root"},
    {&str_tree_version, "tree_version"},
    {&str_charge_chains, "_charge_chains"},
    {&str_charge_chains_version, "_charge_chains_version"},
    {&str_chain_for, "_chain_for"},
    {&str_decision_depth, "_decision_depth"},
    {&str_last_ran, "_last_ran"},
    {&str_cost_model, "cost_model"},
    {&str_turbo, "_turbo"},
    {&str_advance_workload, "_advance_workload"},
    {&str_maybe_dispatch, "_maybe_dispatch"},
    {&str_on_burst_complete, "_on_burst_complete"},
    {&str_on_wakeup, "_on_wakeup"},
    {&str_defer_dispatch, "_defer_dispatch"},
    {&str_release_held_mutexes, "_release_held_mutexes"},
    {&str_retire, "retire"},
    {&str_charge, "charge"},
    {&str_thread_blocked, "thread_blocked"},
    {&str_equeue, "_queue"},
    {&str_eheap, "_heap"},
    {&str_eseq, "_seq"},
    {&str_elive, "_live"},
    {&str_fired, "_fired"},
    {&str_callback, "callback"},
    {&str_arg, "arg"},
    {&str_cancelled, "_cancelled"},
    {&str_time, "time"},
    {&str_priority, "priority"},
    {&str_seq_attr, "seq"},
    {&str_turbo_wake, "_turbo_wake"},
    {&str_wakeups, "wakeups"},
    {&str_transition, "transition"},
    {&str_last_runnable_at, "last_runnable_at"},
    {&str_thread_runnable, "thread_runnable"},
    {&str_preempt_policy, "preempt_policy"},
    {&str_should_preempt, "should_preempt"},
    {&str_preempt_current, "_preempt_current"},
    {NULL, NULL},
};

PyMODINIT_FUNC
PyInit__sfqc(void)
{
    for (size_t i = 0; intern_table[i].slot != NULL; i++) {
        *intern_table[i].slot =
            PyUnicode_InternFromString(intern_table[i].text);
        if (*intern_table[i].slot == NULL)
            return NULL;
    }
    long_zero = PyLong_FromLong(0);
    long_one = PyLong_FromLong(1);
    long_neg_one = PyLong_FromLong(-1);
    long_second = PyLong_FromLong(1000000000L);
    empty_tuple = PyTuple_New(0);
    if (long_zero == NULL || long_one == NULL || long_neg_one == NULL ||
        long_second == NULL || empty_tuple == NULL)
        return NULL;
    PyObject *errors = PyImport_ImportModule("repro.errors");
    if (errors == NULL)
        return NULL;
    SchedulingError = PyObject_GetAttrString(errors, "SchedulingError");
    Py_DECREF(errors);
    if (SchedulingError == NULL)
        return NULL;
    return PyModule_Create(&sfqc_module);
}
