"""Core contribution: Start-time Fair Queuing and the hierarchical scheduler.

* :mod:`repro.core.tags` — start/finish tag arithmetic (exact or float);
* :mod:`repro.core.sfq` — the SFQ queue over weighted entities;
* :mod:`repro.core.node` — scheduling-structure tree nodes;
* :mod:`repro.core.structure` — the pathname tree API mirroring the paper's
  ``hsfq_mknod`` / ``hsfq_parse`` / ``hsfq_rmnod`` / ``hsfq_move`` /
  ``hsfq_admin`` system calls;
* :mod:`repro.core.hierarchy` — the hierarchical scheduler driving
  ``hsfq_schedule`` / ``hsfq_update`` / ``hsfq_setrun`` / ``hsfq_sleep``.
"""

from repro.core.hierarchy import HierarchicalScheduler
from repro.core.node import InternalNode, LeafNode, Node
from repro.core.sfq import SfqQueue
from repro.core.structure import SchedulingStructure
from repro.core.tags import TagMath

__all__ = [
    "TagMath",
    "SfqQueue",
    "Node",
    "InternalNode",
    "LeafNode",
    "SchedulingStructure",
    "HierarchicalScheduler",
]
