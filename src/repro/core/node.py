"""Nodes of the scheduling structure.

The scheduling structure is a tree (paper §2 and §4).  Internal nodes
schedule their children with SFQ; each leaf node owns a class-specific leaf
scheduler and the set of threads attached to it.  Node objects carry the
per-node state the Solaris implementation kept in the kernel: a weight, a
runnable flag, and (for internal nodes) the SFQ queue of runnable children.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, Optional, Set

from repro.core.sfq import SfqQueue
from repro.core.tags import TagMath
from repro.errors import NotALeafError, StructureError

if TYPE_CHECKING:  # pragma: no cover
    from repro.schedulers.base import LeafScheduler
    from repro.threads.thread import SimThread


class Node:
    """Common state for internal and leaf nodes."""

    __slots__ = ("name", "weight", "parent", "node_id", "runnable", "path")

    def __init__(self, name: str, weight: int,
                 parent: Optional["InternalNode"]) -> None:
        if weight <= 0:
            raise StructureError("node weight must be positive, got %r" % (weight,))
        if parent is not None and ("/" in name or not name):
            raise StructureError("invalid node name %r" % (name,))
        self.name = name
        self.weight = weight
        self.parent = parent
        self.node_id = -1  # assigned by SchedulingStructure
        self.runnable = False
        #: absolute pathname, e.g. ``/best-effort/user1``.  Computed once:
        #: nodes never rename or reparent (hsfq has no rename; hsfq_move
        #: moves threads, not nodes), and traces read the path per event.
        if parent is None:
            self.path = "/"
        elif parent.path == "/":
            self.path = "/" + name
        else:
            self.path = parent.path + "/" + name

    @property
    def is_leaf(self) -> bool:
        """True for leaf nodes (thread holders), False for internal ones."""
        raise NotImplementedError

    @property
    def depth(self) -> int:
        """Distance from the root (root has depth 0)."""
        depth = 0
        node = self
        while node.parent is not None:
            node = node.parent
            depth += 1
        return depth

    def set_weight(self, weight: int) -> None:
        """Change this node's share of its parent's bandwidth.

        Takes effect at the next tag stamping (see DESIGN.md §5).
        """
        if weight <= 0:
            raise StructureError("node weight must be positive, got %r" % (weight,))
        self.weight = weight

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else "internal"
        return "%s(%r, weight=%d, %s)" % (
            type(self).__name__, self.path, self.weight, kind)


class InternalNode(Node):
    """A non-leaf node: schedules its children with SFQ."""

    __slots__ = ("children", "queue")

    def __init__(self, name: str, weight: int,
                 parent: Optional["InternalNode"],
                 tag_math: Optional[TagMath] = None) -> None:
        super().__init__(name, weight, parent)
        self.children: Dict[str, Node] = {}
        self.queue = SfqQueue(tag_math)

    @property
    def is_leaf(self) -> bool:
        return False

    def add_child(self, child: Node) -> None:
        """Attach ``child`` and register it in this node's SFQ queue."""
        if child.name in self.children:
            raise StructureError(
                "node %r already has a child named %r" % (self.path, child.name))
        self.children[child.name] = child
        self.queue.add(child)

    def remove_child(self, child: Node) -> None:
        """Detach ``child`` (it must be idle in the SFQ queue)."""
        if self.children.get(child.name) is not child:
            raise StructureError("%r is not a child of %r" % (child, self))
        self.queue.remove(child)
        del self.children[child.name]

    def iter_subtree(self) -> Iterator[Node]:
        """Yield this node and every descendant, pre-order."""
        yield self
        for child in self.children.values():
            if isinstance(child, InternalNode):
                for node in child.iter_subtree():
                    yield node
            else:
                yield child


class LeafNode(Node):
    """A leaf node: owns a leaf scheduler and its threads."""

    __slots__ = ("scheduler", "threads")

    def __init__(self, name: str, weight: int, parent: Optional["InternalNode"],
                 scheduler: "LeafScheduler") -> None:
        super().__init__(name, weight, parent)
        self.scheduler = scheduler
        self.threads: Set["SimThread"] = set()

    @property
    def is_leaf(self) -> bool:
        return True

    def attach_thread(self, thread: "SimThread") -> None:
        """Bind a thread to this leaf and register it with the scheduler."""
        if thread.leaf is not None:
            raise StructureError(
                "thread %r is already attached to %r" % (thread, thread.leaf))
        self.threads.add(thread)
        thread.leaf = self
        self.scheduler.add_thread(thread)

    def detach_thread(self, thread: "SimThread") -> None:
        """Unbind a thread (it must not be runnable in the scheduler)."""
        if thread not in self.threads:
            raise StructureError("thread %r is not attached to %r" % (thread, self))
        self.scheduler.remove_thread(thread)
        self.threads.discard(thread)
        thread.leaf = None

    def iter_subtree(self) -> Iterator[Node]:
        """Yield just this leaf (uniform traversal with internal nodes)."""
        yield self


def require_leaf(node: Node) -> LeafNode:
    """Downcast helper: raise :class:`NotALeafError` unless ``node`` is a leaf."""
    if not isinstance(node, LeafNode):
        raise NotALeafError("%r is not a leaf node" % (node,))
    return node
