"""The scheduling structure: a pathname-addressed tree of scheduling nodes.

This mirrors the system-call interface of the paper's Solaris implementation
(§4).  Each operation corresponds to one call:

=================  =====================================================
paper syscall       method here
=================  =====================================================
``hsfq_mknod``      :meth:`SchedulingStructure.mknod`
``hsfq_parse``      :meth:`SchedulingStructure.parse`
``hsfq_rmnod``      :meth:`SchedulingStructure.rmnod`
``hsfq_move``       :meth:`SchedulingStructure.move` (via the hierarchy)
``hsfq_admin``      :meth:`SchedulingStructure.admin`
=================  =====================================================

Nodes have UNIX-like names ("/best-effort/user1"); ``parse`` resolves both
absolute and relative names, the latter against a ``hint`` node, exactly as
described in the paper.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Union

from repro.core.node import InternalNode, LeafNode, Node, require_leaf
from repro.core.tags import TagMath
from repro.errors import (
    NodeBusyError,
    NodeExistsError,
    NodeNotFoundError,
    StructureError,
)

NodeRef = Union[int, str, Node]

#: admin command: read a node's weight
ADMIN_GET_WEIGHT = "get_weight"
#: admin command: change a node's weight
ADMIN_SET_WEIGHT = "set_weight"
#: admin command: summary dict of a node
ADMIN_INFO = "info"


class SchedulingStructure:
    """The tree of scheduling classes, addressed by pathname or node id."""

    def __init__(self, tag_math: Optional[TagMath] = None) -> None:
        self.tag_math = tag_math
        self.root = InternalNode("", weight=1, parent=None, tag_math=tag_math)
        self._nodes: Dict[int, Node] = {}
        self._next_id = 0
        #: bumped by every mknod/rmnod; lets the hierarchy invalidate any
        #: caches derived from the tree shape (e.g. ancestor charge chains)
        self.tree_version = 0
        self._register(self.root)
        #: back-reference set by HierarchicalScheduler; used by thread moves
        self.hierarchy = None

    # --- registration ----------------------------------------------------

    def _register(self, node: Node) -> Node:
        node.node_id = self._next_id
        self._next_id += 1
        self._nodes[node.node_id] = node
        self.tree_version += 1
        return node

    # --- hsfq_mknod --------------------------------------------------------

    def mknod(self, name: str, weight: int, parent: Optional[NodeRef] = None,
              scheduler=None) -> Node:
        """Create a node; a ``scheduler`` argument makes it a leaf.

        ``name`` may be an absolute path ("/a/b": parent resolved from the
        path, ``parent`` must then be omitted or "/a") or a simple name
        relative to ``parent`` (default: the root).
        """
        if name.startswith("/"):
            parts = [part for part in name.split("/") if part]
            if not parts:
                raise StructureError("cannot create the root node")
            parent_node = self.root
            for part in parts[:-1]:
                parent_node = self._child_of(parent_node, part)
            if parent is not None and self.resolve(parent) is not parent_node:
                raise StructureError(
                    "parent argument %r conflicts with path %r" % (parent, name))
            short_name = parts[-1]
        else:
            parent_node = self.resolve(parent) if parent is not None else self.root
            short_name = name
        if not isinstance(parent_node, InternalNode):
            raise StructureError(
                "parent %r is a leaf; cannot create children" % (parent_node.path,))
        if short_name in parent_node.children:
            raise NodeExistsError(
                "node %r already exists" % (parent_node.path.rstrip("/") + "/" + short_name,))
        if scheduler is not None:
            node: Node = LeafNode(short_name, weight, parent_node, scheduler)
        else:
            node = InternalNode(short_name, weight, parent_node,
                                tag_math=self.tag_math)
        parent_node.add_child(node)
        return self._register(node)

    # --- hsfq_parse ---------------------------------------------------------

    def parse(self, name: str, hint: Optional[NodeRef] = None) -> Node:
        """Resolve a pathname (absolute, or relative to ``hint``) to a node."""
        if name.startswith("/"):
            node: Node = self.root
        else:
            node = self.resolve(hint) if hint is not None else self.root
        for part in name.split("/"):
            if not part or part == ".":
                continue
            if part == "..":
                if node.parent is not None:
                    node = node.parent
                continue
            node = self._child_of(node, part)
        return node

    def resolve(self, ref: NodeRef) -> Node:
        """Accept a node id, a pathname, or a node object; return the node."""
        if isinstance(ref, Node):
            if self._nodes.get(ref.node_id) is not ref:
                raise NodeNotFoundError("node %r is not in this structure" % (ref,))
            return ref
        if isinstance(ref, int):
            try:
                return self._nodes[ref]
            except KeyError:
                raise NodeNotFoundError("no node with id %d" % ref) from None
        if isinstance(ref, str):
            return self.parse(ref)
        raise TypeError("node reference must be int, str, or Node; got %r" % (ref,))

    # --- hsfq_rmnod ---------------------------------------------------------

    def rmnod(self, ref: NodeRef) -> None:
        """Remove a node; it must be childless, thread-less, and idle."""
        node = self.resolve(ref)
        if node is self.root:
            raise StructureError("cannot remove the root node")
        if isinstance(node, InternalNode) and node.children:
            raise NodeBusyError("node %r has children" % (node.path,))
        if isinstance(node, LeafNode) and node.threads:
            raise NodeBusyError("node %r has attached threads" % (node.path,))
        if node.runnable:
            raise NodeBusyError("node %r is runnable" % (node.path,))
        assert node.parent is not None
        node.parent.remove_child(node)
        del self._nodes[node.node_id]
        self.tree_version += 1

    # --- hsfq_move ----------------------------------------------------------

    def move(self, thread, to: NodeRef) -> None:
        """Move ``thread`` to leaf node ``to``.

        When a hierarchy is attached this keeps the runnable bookkeeping
        consistent (the thread may be runnable); otherwise the thread must
        be quiescent.
        """
        dest = require_leaf(self.resolve(to))
        if self.hierarchy is not None:
            self.hierarchy.move_thread(thread, dest)
        else:
            source = thread.leaf
            if source is not None:
                source.detach_thread(thread)
            dest.attach_thread(thread)

    # --- hsfq_admin ---------------------------------------------------------

    def admin(self, ref: NodeRef, cmd: str, args=None):
        """Administrative operations on a node (paper's ``hsfq_admin``)."""
        node = self.resolve(ref)
        if cmd == ADMIN_GET_WEIGHT:
            return node.weight
        if cmd == ADMIN_SET_WEIGHT:
            node.set_weight(int(args))
            return node.weight
        if cmd == ADMIN_INFO:
            info = {
                "id": node.node_id,
                "path": node.path,
                "weight": node.weight,
                "leaf": node.is_leaf,
                "runnable": node.runnable,
            }
            if isinstance(node, InternalNode):
                info["children"] = sorted(node.children)
                info["virtual_time"] = node.queue.virtual_time
            else:
                info["threads"] = sorted(t.name for t in node.threads)  # type: ignore[union-attr]
            return info
        raise StructureError("unknown admin command %r" % (cmd,))

    # --- traversal -----------------------------------------------------------

    def iter_nodes(self) -> Iterator[Node]:
        """Yield every node in the tree, pre-order from the root."""
        return self.root.iter_subtree()

    def iter_leaves(self) -> Iterator[LeafNode]:
        """Yield every leaf node in the tree."""
        for node in self.iter_nodes():
            if isinstance(node, LeafNode):
                yield node

    def _child_of(self, node: Node, part: str) -> Node:
        if not isinstance(node, InternalNode):
            raise NodeNotFoundError(
                "%r is a leaf; cannot resolve %r under it" % (node.path, part))
        try:
            return node.children[part]
        except KeyError:
            raise NodeNotFoundError(
                "no node named %r under %r" % (part, node.path)) from None
