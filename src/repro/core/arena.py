"""Columnar per-entity scheduling state (the SFQ arena).

Every :class:`~repro.core.sfq.SfqQueue` keeps its per-entity state — start
and finish tags, the runnable bit, the lazy-deletion heap version, and the
arrival sequence — in the flat parallel lists of one :class:`SfqArena`,
indexed by a dense integer *slot*.  Objects (tree nodes, threads) appear
only at the API edge: the queue maps ``id(entity)`` to a slot once per
operation and everything below that line is list indexing, which is what
lets the compiled engine (``repro.core.engine``) run the dispatch loops
over raw columns without touching Python attribute protocol.

Slots are recycled through a free list on removal (``hsfq_rmnod``, thread
exit).  Two invariants make recycling safe:

* **Version monotonicity.**  A slot's heap-version column only ever
  increases — :meth:`release` bumps it and :meth:`alloc` never resets it —
  so heap entries enqueued for a previous occupant of the slot can never
  validate against the new occupant.
* **Generation hygiene.**  :meth:`alloc` rewrites the tag columns to zero
  and stamps a fresh arrival sequence, so no start/finish tag (and, since
  weights are always read live from the entity, no weight either) leaks
  from one occupant of a slot to the next.

The columns are **never rebound**: they grow in place via ``append`` so
cached references to the list objects (chain caches, the compiled engine's
column views) stay valid for the lifetime of the arena.
"""

from __future__ import annotations

from typing import Any, Iterator, List

__all__ = ["SfqArena"]


class SfqArena:
    """Flat parallel columns of per-entity SFQ state, slot-indexed.

    Columns (all the same length, one row per slot):

    ======== ==========================================================
    ``ent``  the entity object (``None`` while the slot is free)
    ``start``  SFQ start tag ``S``
    ``fin``    SFQ finish tag ``F``
    ``run``    runnable bit (int 0/1)
    ``ver``    lazy-deletion heap version (monotonic per slot)
    ``seq``    arrival sequence for deterministic tie-breaks
    ======== ==========================================================
    """

    __slots__ = ("ent", "start", "fin", "run", "ver", "seq", "free")

    def __init__(self) -> None:
        self.ent: List[Any] = []
        self.start: List[Any] = []
        self.fin: List[Any] = []
        self.run: List[int] = []
        self.ver: List[int] = []
        self.seq: List[int] = []
        #: recycled slot indices, LIFO (hot reuse keeps columns compact)
        self.free: List[int] = []

    def alloc(self, entity: Any, zero: Any, arrival_seq: int) -> int:
        """Claim a slot for ``entity``; tags reset to ``zero``.

        Reuses the most recently freed slot when one exists, otherwise
        appends a new row to every column.  The heap-version column is
        deliberately *not* reset on reuse (see module docstring).
        """
        free = self.free
        if free:
            slot = free.pop()
            self.ent[slot] = entity
            self.start[slot] = zero
            self.fin[slot] = zero
            self.run[slot] = 0
            self.seq[slot] = arrival_seq
            return slot
        slot = len(self.ent)
        self.ent.append(entity)
        self.start.append(zero)
        self.fin.append(zero)
        self.run.append(0)
        self.ver.append(0)
        self.seq.append(arrival_seq)
        return slot

    def release(self, slot: int) -> None:
        """Return ``slot`` to the free list; stale heap entries die here.

        Bumping the version invalidates any heap entry still pointing at
        the slot, and dropping the entity reference lets the object (and
        anything it pins) be collected immediately.
        """
        self.ent[slot] = None
        self.ver[slot] += 1
        self.run[slot] = 0
        self.free.append(slot)

    # --- introspection (tests, sanitizers, linear-scan oracles) -----------

    def __len__(self) -> int:
        """Number of live (allocated) slots."""
        return len(self.ent) - len(self.free)

    @property
    def capacity(self) -> int:
        """Total rows ever grown, live or free."""
        return len(self.ent)

    def live_slots(self) -> Iterator[int]:
        """Yield every allocated slot, in slot order."""
        for slot, entity in enumerate(self.ent):
            if entity is not None:
                yield slot

    def __repr__(self) -> str:
        return "SfqArena(live=%d, capacity=%d)" % (len(self), self.capacity)
