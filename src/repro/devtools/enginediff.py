"""Cross-engine equivalence gate (``python -m repro.devtools.enginediff``).

The compiled engine (``REPRO_ENGINE=compiled``) is only allowed to be
*faster* than the pure-python reference — never different.  This tool
replays two canonical workloads under both engines in separate
subprocesses and byte-compares two probes per workload:

``trace``
    The full observability-bus event stream (tracing active, so both
    engines run their traced paths).  One formatted line per event.

``schedstat``
    An untraced run — the regime where the compiled turbo tick/wake
    paths actually engage — followed by a canonical dump of every
    machine, engine, and per-thread counter.  If a compiled fast path
    drops or double-counts anything, it shows up here.

Workloads:

``figure5``
    The paper's Figure-5 SFQ arm (flat scheduler, mixed dhrystone and
    interactive load) — the fixture the golden-trace suite also pins.

``depth8``
    A depth-8 hierarchy with churning interactive leaves and CPU hogs —
    the shape that maximizes per-event chain walks, and the one the
    perfkit ``deep_hierarchy`` scenario benchmarks.

Exit status is non-zero on any divergence, and the differing streams are
written to the output directory (default ``build/enginediff``) so CI can
upload them as a diff artifact.
"""

from __future__ import annotations

import argparse
import difflib
import itertools
import os
import subprocess
import sys
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.hierarchy import HierarchicalScheduler
from repro.core.structure import SchedulingStructure
from repro.core.tags import FLOAT
from repro.cpu.flat import FlatScheduler
from repro.cpu.machine import Machine
from repro.obs import events as obs
from repro.schedulers.sfq_leaf import SfqScheduler
from repro.sim.engine import Simulator
from repro.sim.rng import make_rng
from repro.threads.thread import SimThread
from repro.units import MS, SECOND
from repro.workloads.dhrystone import DhrystoneWorkload
from repro.workloads.interactive import InteractiveWorkload

__all__ = ["SCENARIOS", "PROBES", "emit", "run_gate", "main"]

ENGINES = ("pure", "compiled")
PROBES = ("trace", "schedstat")

#: machine run produced by a scenario builder: (machine, threads, horizon)
ScenarioRun = Tuple[Machine, List[SimThread], int]


def _reset_global_counters() -> None:
    """Pin process-global sequences so streams ignore import order."""
    import repro.core.sfq as sfq_module
    import repro.schedulers.fairqueue as fairqueue_module
    import repro.threads.thread as thread_module

    thread_module._tid_counter = itertools.count(1)
    sfq_module._arrival_seq = itertools.count()
    fairqueue_module._seq = itertools.count()


def _figure5() -> ScenarioRun:
    engine = Simulator()
    machine = Machine(engine, FlatScheduler(SfqScheduler()),
                      capacity_ips=100_000_000, default_quantum=20 * MS)
    threads = []
    for index in range(5):
        threads.append(SimThread("dhry-%d" % index,
                                 DhrystoneWorkload(300, 10_000)))
    for index in range(2):
        rng = make_rng(11, "daemon/%d" % index)
        threads.append(SimThread(
            "daemon-%d" % index,
            InteractiveWorkload(burst_work=400_000, think_time=120 * MS,
                                rng=rng)))
    for thread in threads:
        machine.spawn(thread)
    return machine, threads, 2 * SECOND


def _depth8() -> ScenarioRun:
    structure = SchedulingStructure(FLOAT)
    leaves = []
    for top in range(4):
        node = structure.mknod("g%d" % top, 1 + top % 3)
        for level in range(2, 8):
            node = structure.mknod("c%d" % level, 1, parent=node)
        leaves.append(structure.mknod("leaf", 1, parent=node,
                                      scheduler=SfqScheduler(FLOAT)))
    engine = Simulator()
    machine = Machine(engine, HierarchicalScheduler(structure),
                      capacity_ips=100_000_000, default_quantum=2 * MS)
    threads = []
    for index, leaf in enumerate(leaves):
        rng = make_rng(17, "churn/%d" % index)
        churn = SimThread(
            "churn-%d" % index,
            InteractiveWorkload(burst_work=150_000, think_time=8 * MS,
                                rng=rng))
        leaf.attach_thread(churn)
        threads.append(churn)
        if index % 2 == 0:
            hog = SimThread("hog-%d" % index, DhrystoneWorkload(300, 5_000))
            leaf.attach_thread(hog)
            threads.append(hog)
    for thread in threads:
        machine.spawn(thread)
    return machine, threads, 2 * SECOND


SCENARIOS: Dict[str, Callable[[], ScenarioRun]] = {
    "figure5": _figure5,
    "depth8": _depth8,
}


def _format_event(event: obs.Event) -> str:
    fields = ",".join(
        "%s=%r" % (key, event.data[key]) for key in sorted(event.data))
    return "%s t=%d %s" % (event.kind, event.time, fields)


def _trace_lines(builder: Callable[[], ScenarioRun]) -> List[str]:
    _reset_global_counters()
    lines: List[str] = []
    with obs.BUS.subscription(
            lambda event: lines.append(_format_event(event))):
        machine, __, horizon = builder()
        machine.run_until(horizon)
    return lines


def _schedstat_lines(builder: Callable[[], ScenarioRun]) -> List[str]:
    _reset_global_counters()
    machine, threads, horizon = builder()
    machine.run_until(horizon)
    engine = machine.engine
    stats = machine.stats
    lines = [
        "engine events_fired=%d now=%d pending=%d"
        % (engine.events_fired, engine.now, engine.pending_events),
        "machine busy_time=%d interrupt_time=%d overhead_time=%d "
        "dispatches=%d context_switches=%d interrupts=%d pauses=%d "
        "preemptions=%d"
        % (stats.busy_time, stats.interrupt_time, stats.overhead_time,
           stats.dispatches, stats.context_switches, stats.interrupts,
           stats.pauses, stats.preemptions),
    ]
    for thread in threads:
        t = thread.stats
        markers = ",".join(
            "%s=%d" % (key, t.markers[key]) for key in sorted(t.markers))
        lines.append(
            "thread %s state=%s remaining=%d work_done=%d cpu_time=%d "
            "dispatches=%d preemptions=%d blocks=%d wakeups=%d "
            "segments=%d exited_at=%r markers=[%s]"
            % (thread.name, thread.state.value, thread.remaining_work,
               t.work_done, t.cpu_time, t.dispatches, t.preemptions,
               t.blocks, t.wakeups, t.segments_completed, t.exited_at,
               markers))
    return lines


def emit(scenario: str, probe: str) -> str:
    """Canonical text for one (scenario, probe) cell, current engine."""
    builder = SCENARIOS[scenario]
    if probe == "trace":
        lines = _trace_lines(builder)
    elif probe == "schedstat":
        lines = _schedstat_lines(builder)
    else:
        raise ValueError("unknown probe %r (expected one of %r)"
                         % (probe, PROBES))
    return "\n".join(lines) + "\n"


def _run_cell(engine: str, scenario: str, probe: str) -> bytes:
    env = dict(os.environ)
    env["REPRO_ENGINE"] = engine
    result = subprocess.run(
        [sys.executable, "-m", "repro.devtools.enginediff",
         "--emit", "%s:%s" % (scenario, probe)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE)
    if result.returncode != 0:
        raise RuntimeError(
            "enginediff cell %s/%s failed under REPRO_ENGINE=%s:\n%s"
            % (scenario, probe, engine,
               result.stderr.decode("utf-8", "replace")))
    return result.stdout


def run_gate(out_dir: str, scenarios: List[str]) -> int:
    """Replay ``scenarios`` under both engines; return the mismatch count.

    Matching cells print one OK line each; differing cells dump both
    streams plus a unified diff under ``out_dir``.
    """
    os.makedirs(out_dir, exist_ok=True)
    mismatches = 0
    for scenario in scenarios:
        for probe in PROBES:
            pure = _run_cell("pure", scenario, probe)
            compiled = _run_cell("compiled", scenario, probe)
            if pure == compiled:
                print("OK   %-8s %-9s %7d bytes identical"
                      % (scenario, probe, len(pure)))
                continue
            mismatches += 1
            base = os.path.join(out_dir, "%s_%s" % (scenario, probe))
            with open(base + ".pure.txt", "wb") as handle:
                handle.write(pure)
            with open(base + ".compiled.txt", "wb") as handle:
                handle.write(compiled)
            diff = difflib.unified_diff(
                pure.decode("utf-8", "replace").splitlines(keepends=True),
                compiled.decode("utf-8", "replace").splitlines(keepends=True),
                fromfile="%s/%s pure" % (scenario, probe),
                tofile="%s/%s compiled" % (scenario, probe))
            with open(base + ".diff", "w", encoding="utf-8") as handle:
                handle.writelines(diff)
            print("DIFF %-8s %-9s engines diverge -> %s.diff"
                  % (scenario, probe, base))
    return mismatches


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit status (1 = diverged)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.enginediff",
        description="byte-compare the pure and compiled engines")
    parser.add_argument("--emit", metavar="SCENARIO:PROBE",
                        help="internal: print one cell for the current "
                             "engine and exit")
    parser.add_argument("--scenario", choices=sorted(SCENARIOS),
                        action="append",
                        help="limit to one scenario (repeatable; "
                             "default: all)")
    parser.add_argument("--out", default=os.path.join("build", "enginediff"),
                        help="directory for diff artifacts "
                             "(default: build/enginediff)")
    args = parser.parse_args(argv)
    if args.emit:
        scenario, _, probe = args.emit.partition(":")
        sys.stdout.write(emit(scenario, probe))
        return 0
    scenarios = args.scenario or sorted(SCENARIOS)
    mismatches = run_gate(args.out, scenarios)
    if mismatches:
        print("enginediff: %d cell(s) diverged" % mismatches)
        return 1
    print("enginediff: engines byte-identical across %d scenario(s)"
          % len(scenarios))
    return 0


if __name__ == "__main__":
    sys.exit(main())
