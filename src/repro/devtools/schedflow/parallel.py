"""SF4xx: parallel-safety and race analysis for pool-based execution.

The sharded-simulation and cluster-mode roadmap items only compose
correctly when no mutable state escapes a worker-pool boundary except
through the deterministic merge paths faultlab pioneered (name-sorted
results, process-independent digests).  This pass holds that line
statically:

* **Pool boundaries.**  Every ``multiprocessing.Pool`` /
  ``concurrent.futures`` executor constructed in a function is tracked,
  and each ``map``/``submit``-family call on it is a *pool site*.  The
  callable handed to a pool site (unwrapped through
  ``functools.partial``) is a *worker entrypoint*.
* **Worker context.**  The set of functions reachable from any worker
  entrypoint over the project call graph.  Two functions in worker
  context may run concurrently in different worker processes, which is
  what :class:`MhpRelation` (may-happen-in-parallel) records.
* **Emit context.**  Callables registered on an observability event bus
  (``BUS.subscribe``/``BUS.subscription``) plus their callees: code that
  runs synchronously inside the simulator's emit sites.

Rules:

========  ==============================================================
code       meaning
========  ==============================================================
SF401      module-level mutable container written from worker context
SF402      completion-order-dependent merge of pool results
SF403      fork-unsafe RNG use in worker context (global ``random.*``,
           constant-seeded ``random.Random``) bypassing ``derive_seed``
SF404      unpicklable callable (lambda / nested function) crossing a
           pool boundary
SF405      event-bus subscriber mutating foreign state from emit context
SF406      ``os.environ`` read inside a worker entrypoint — workers must
           get configuration through their spec, not the inherited host
           environment
========  ==============================================================

The runtime twin lives in ``repro.devtools.schedsan`` (the
``REPRO_SCHEDSAN=1`` isolation guard): what this pass proves cannot be
written, the guard asserts was not written.
"""

from __future__ import annotations

import ast
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.devtools.schedlint import Finding
from repro.devtools.schedlint.rules import _qualified_name
from repro.devtools.schedflow.project import (
    FileEntry,
    FunctionInfo,
    ProjectIndex,
)

__all__ = ["ParallelPass", "MhpRelation", "reachable",
           "module_mutable_globals"]

#: constructors whose result is a worker pool / executor
_POOL_FACTORIES = frozenset([
    "multiprocessing.Pool",
    "multiprocessing.pool.Pool",
    "concurrent.futures.ProcessPoolExecutor",
    "concurrent.futures.ThreadPoolExecutor",
    "concurrent.futures.process.ProcessPoolExecutor",
    "concurrent.futures.thread.ThreadPoolExecutor",
])

#: bare constructor names accepted when imported via ``from ... import``
_POOL_FACTORY_TAILS = frozenset(
    ["Pool", "ProcessPoolExecutor", "ThreadPoolExecutor"])

#: pool methods that ship a callable to worker processes
_SUBMIT_METHODS = frozenset([
    "map", "imap", "imap_unordered", "starmap", "map_async",
    "starmap_async", "apply", "apply_async", "submit",
])

#: pool methods whose result order is worker *completion* order
_UNORDERED_METHODS = frozenset(["imap_unordered"])

#: free functions whose iteration order is worker completion order
_UNORDERED_CALLS = frozenset(["concurrent.futures.as_completed"])

#: consumers that erase iteration order (fold the whole iterable)
_ORDER_INSENSITIVE = frozenset(
    ["sorted", "sum", "min", "max", "len", "any", "all", "set", "frozenset"])

#: call targets constructing a mutable container
_MUTABLE_CALLS = frozenset(
    ["dict", "list", "set", "defaultdict", "deque", "OrderedDict",
     "Counter"])

#: container methods that mutate the receiver in place
_MUTATORS = frozenset([
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "clear", "remove", "discard", "appendleft", "extendleft",
    "sort", "reverse",
])

#: host environment reads (SF406); the taint pass shares this notion
_ENV_ATTRS = frozenset(["os.environ", "os.environb"])
_ENV_CALLS = frozenset(["os.getenv"])


# --- the may-happen-in-parallel core ----------------------------------------
#
# Kept as pure functions over (roots, adjacency) so the relation's laws
# (symmetry, monotonicity in both edges and roots) are directly
# property-testable without parsing any source.


def reachable(roots: Iterable[str],
              edges: Mapping[str, Iterable[str]]) -> FrozenSet[str]:
    """The set of nodes reachable from ``roots`` (roots included).

    Deterministic: the result is a frozenset, and the traversal order is
    name-sorted so any side effects of callers iterating it are stable.
    """
    seen: Set[str] = set()
    frontier: List[str] = sorted(set(roots))
    while frontier:
        node = frontier.pop()
        if node in seen:
            continue
        seen.add(node)
        for succ in sorted(set(edges.get(node, ()))):
            if succ not in seen:
                frontier.append(succ)
    return frozenset(seen)


class MhpRelation:
    """May-happen-in-parallel over a call graph with pool entrypoints.

    Any two functions in worker context (reachable from some pool
    entrypoint) may execute concurrently in distinct worker processes —
    including a function with itself, since a pool runs the same
    entrypoint many times at once.  The relation is symmetric by
    construction and monotone in both the entrypoint set and the edge
    set: adding a call edge or a pool site can only grow it.
    """

    __slots__ = ("workers",)

    def __init__(self, workers: Iterable[str]) -> None:
        self.workers: FrozenSet[str] = frozenset(workers)

    @classmethod
    def from_graph(cls, entrypoints: Iterable[str],
                   edges: Mapping[str, Iterable[str]]) -> "MhpRelation":
        """Build the relation from entrypoints and call-graph adjacency."""
        return cls(reachable(entrypoints, edges))

    def in_parallel(self, a: str, b: str) -> bool:
        """True when ``a`` and ``b`` may run in parallel."""
        return a in self.workers and b in self.workers

    def __contains__(self, qname: str) -> bool:
        return qname in self.workers


# --- module-scope tables -----------------------------------------------------


def _is_mutable_container(value: Optional[ast.AST],
                          imports: Dict[str, str]) -> bool:
    """True when ``value`` constructs a mutable container."""
    if value is None:
        return False
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                          ast.SetComp, ast.DictComp)):
        return True
    if isinstance(value, ast.Call):
        dotted = _qualified_name(value.func, imports)
        if dotted is not None and dotted.split(".")[-1] in _MUTABLE_CALLS:
            return True
    return False


def module_mutable_globals(entry: FileEntry) -> Dict[str, int]:
    """Top-level names bound to mutable containers, with their lines."""
    out: Dict[str, int] = {}
    for stmt in entry.tree.body:
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            targets, value = [stmt.target], stmt.value
        else:
            continue
        if not _is_mutable_container(value, entry.imports):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                out[target.id] = stmt.lineno
    return out


def _store_root(target: ast.AST) -> Optional[ast.Name]:
    """The root name of an attribute/subscript store target, if any."""
    node = target
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node if isinstance(node, ast.Name) else None


def _local_bindings(fn: ast.AST) -> Set[str]:
    """Names bound locally in ``fn`` (params, assignments, loops, withs,
    comprehensions) — stores through these are not global writes."""
    names: Set[str] = set()
    args = fn.args  # type: ignore[attr-defined]
    for arg in (args.args + args.kwonlyargs + args.posonlyargs):
        names.add(arg.arg)
    for extra in (args.vararg, args.kwarg):
        if extra is not None:
            names.add(extra.arg)

    def bind(target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                bind(element)

    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                bind(target)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            bind(node.target)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            bind(node.target)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    bind(item.optional_vars)
        elif isinstance(node, ast.comprehension):
            bind(node.target)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node is not fn:
                names.add(node.name)
    return names


def _global_decls(fn: ast.AST) -> Set[str]:
    """Names the function explicitly declares ``global``."""
    out: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Global):
            out.update(node.names)
    return out


class _PoolSite:
    """One ``pool.map``-style call shipping work to worker processes."""

    __slots__ = ("call", "method", "info", "target")

    def __init__(self, call: ast.Call, method: str, info: FunctionInfo,
                 target: Optional[FunctionInfo]) -> None:
        self.call = call
        self.method = method
        self.info = info
        self.target = target


class ParallelPass:
    """Run with :meth:`run`; yields SF401—SF406 findings."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self._mutable_cache: Dict[str, Dict[str, int]] = {}
        #: local name -> (origin module label) of an imported mutable global
        self._import_cache: Dict[str, Dict[str, str]] = {}

    # --- shared lookups ---------------------------------------------------

    def _mutable_globals(self, entry: FileEntry) -> Dict[str, int]:
        table = self._mutable_cache.get(entry.path)
        if table is None:
            table = module_mutable_globals(entry)
            self._mutable_cache[entry.path] = table
        return table

    def _imported_mutable_globals(self, entry: FileEntry) -> Dict[str, str]:
        """Local names importing another module's mutable global, mapped
        to a human-readable origin (``repro/faultlab/faults.py:FAULTS``)."""
        table = self._import_cache.get(entry.path)
        if table is not None:
            return table
        table = {}
        for local, dotted in sorted(entry.imports.items()):
            parts = dotted.split(".")
            if len(parts) < 2:
                continue
            module = "/".join(parts[:-1]) + ".py"
            origin = self.index.by_module.get(module)
            if origin is None or origin.path == entry.path:
                continue
            if parts[-1] in self._mutable_globals(origin):
                table[local] = "%s:%s" % (module, parts[-1])
        self._import_cache[entry.path] = table
        return table

    def _resolve_callable(self, expr: ast.AST,
                          info: FunctionInfo) -> Optional[FunctionInfo]:
        """Resolve a callable *reference* (not a call) to a project
        function; unwraps ``functools.partial(f, ...)``."""
        if isinstance(expr, ast.Call):
            dotted = _qualified_name(expr.func, info.entry.imports)
            if (dotted is not None and dotted.split(".")[-1] == "partial"
                    and expr.args):
                return self._resolve_callable(expr.args[0], info)
            return None
        return self.index.resolve_ref(expr, info.entry, info.class_name)

    # --- scanning ---------------------------------------------------------

    def _pool_bindings(self, info: FunctionInfo) -> Set[str]:
        """Local names bound to a pool/executor constructor."""
        names: Set[str] = set()

        def record(value: Optional[ast.AST], target: Optional[ast.AST]) -> None:
            if (not isinstance(value, ast.Call)
                    or not isinstance(target, ast.Name)):
                return
            dotted = _qualified_name(value.func, info.entry.imports)
            if dotted is None:
                return
            if (dotted in _POOL_FACTORIES
                    or dotted.split(".")[-1] in _POOL_FACTORY_TAILS):
                names.add(target.id)

        for node in ast.walk(info.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    record(node.value, target)
            elif isinstance(node, ast.withitem):
                record(node.context_expr, node.optional_vars)
        return names

    def _pool_sites(self, info: FunctionInfo) -> List[_PoolSite]:
        pools = self._pool_bindings(info)
        sites: List[_PoolSite] = []
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (not isinstance(func, ast.Attribute)
                    or func.attr not in _SUBMIT_METHODS):
                continue
            receiver = func.value
            if not (isinstance(receiver, ast.Name)
                    and (receiver.id in pools
                         or receiver.id in ("pool", "executor"))):
                continue
            target = (self._resolve_callable(node.args[0], info)
                      if node.args else None)
            sites.append(_PoolSite(node, func.attr, info, target))
        return sites

    def _call_edges(self) -> Dict[str, List[str]]:
        edges: Dict[str, List[str]] = {}
        for qname in sorted(self.index.functions):
            info = self.index.functions[qname]
            out: Set[str] = set()
            for node in ast.walk(info.node):
                if isinstance(node, ast.Call):
                    callee = self.index.resolve_call(
                        node, info.entry, info.class_name)
                    if callee is not None:
                        out.add(callee.qname)
            edges[qname] = sorted(out)
        return edges

    def _subscriber_roots(self) -> Dict[str, Tuple[FunctionInfo, int]]:
        """Resolved subscriber callables: qname -> (info, subscribe line)."""
        roots: Dict[str, Tuple[FunctionInfo, int]] = {}
        for qname in sorted(self.index.functions):
            info = self.index.functions[qname]
            instance_classes = self._local_instances(info)
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call) or not node.args:
                    continue
                func = node.func
                if (not isinstance(func, ast.Attribute)
                        or func.attr not in ("subscribe", "subscription")):
                    continue
                dotted = _qualified_name(func.value, info.entry.imports)
                is_bus = (dotted is not None
                          and dotted.split(".")[-1].lower() == "bus")
                if not is_bus:
                    continue
                target = self._resolve_callable(node.args[0], info)
                if target is None and isinstance(node.args[0], ast.Name):
                    dotted_cls = instance_classes.get(node.args[0].id)
                    if dotted_cls is not None:
                        if "." in dotted_cls:
                            target = self.index.resolve_ref_dotted(
                                dotted_cls + ".__call__")
                        elif info.entry.module is not None:
                            target = self.index.methods.get(
                                (info.entry.module, dotted_cls, "__call__"))
                if target is not None and target.qname not in roots:
                    roots[target.qname] = (target, node.lineno)
        return roots

    def _local_instances(self, info: FunctionInfo) -> Dict[str, str]:
        """Local name -> dotted class path for ``name = Ctor(...)``."""
        out: Dict[str, str] = {}
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            dotted = _qualified_name(node.value.func, info.entry.imports)
            if dotted is None:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    out[target.id] = dotted
        return out

    # --- the pass ---------------------------------------------------------

    def run(self) -> Iterator[Finding]:
        """Check the whole project; yields SF401—SF406 findings."""
        findings: List[Finding] = []

        sites: List[_PoolSite] = []
        for qname in sorted(self.index.functions):
            sites.extend(self._pool_sites(self.index.functions[qname]))

        entrypoints = sorted({site.target.qname for site in sites
                              if site.target is not None})
        edges = self._call_edges()
        mhp = MhpRelation.from_graph(entrypoints, edges)
        provenance = self._provenance(entrypoints, edges)

        subscriber_roots = self._subscriber_roots()
        emit_context = reachable(subscriber_roots, edges)

        for site in sites:
            self._check_boundary(site, findings)
        for qname in sorted(mhp.workers):
            info = self.index.functions.get(qname)
            if info is not None:
                root = provenance.get(qname, qname)
                self._check_worker_writes(info, root, findings)
                self._check_worker_rng(info, root, findings)
        for qname in sorted({s.target.qname for s in sites
                             if s.target is not None}):
            self._check_entry_env(self.index.functions[qname], findings)
        for qname in sorted(emit_context):
            info = self.index.functions.get(qname)
            if info is not None:
                self._check_subscriber(
                    info, direct=qname in subscriber_roots,
                    findings=findings)
        self._check_unordered_free_calls(findings)
        return iter(findings)

    def _provenance(self, entrypoints: List[str],
                    edges: Dict[str, List[str]]) -> Dict[str, str]:
        """Map each worker-context function to the (name-least) pool
        entrypoint it is reachable from, for finding messages."""
        out: Dict[str, str] = {}
        for root in sorted(entrypoints):
            for qname in sorted(reachable([root], edges)):
                out.setdefault(qname, root)
        return out

    def _report(self, findings: List[Finding], info: FunctionInfo,
                node: ast.AST, code: str, message: str) -> None:
        line = getattr(node, "lineno", 1)
        findings.append(Finding(
            info.entry.path, line, getattr(node, "col_offset", 0), code,
            message, end_line=getattr(node, "end_lineno", None) or line))

    # --- SF402 / SF404 (pool sites) ---------------------------------------

    def _order_insensitive_args(self, info: FunctionInfo) -> Set[int]:
        exempt: Set[int] = set()
        for node in ast.walk(info.node):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in _ORDER_INSENSITIVE):
                for arg in node.args:
                    exempt.add(id(arg))
        return exempt

    def _check_boundary(self, site: _PoolSite,
                        findings: List[Finding]) -> None:
        info = site.info
        call = site.call
        if site.method in _UNORDERED_METHODS:
            if id(call) not in self._order_insensitive_args(info):
                self._report(
                    findings, info, call, "SF402",
                    "%s() yields results in worker *completion* order; "
                    "sort the results (or fold them with an "
                    "order-insensitive reducer) before merging"
                    % site.method)
        local_defs = {
            node.name for node in ast.walk(info.node)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node is not info.node}
        for position, arg in enumerate(call.args):
            unwrapped = arg
            if (isinstance(arg, ast.Call)
                    and (_qualified_name(arg.func, info.entry.imports) or "")
                    .split(".")[-1] == "partial" and arg.args):
                unwrapped = arg.args[0]
            bad = None
            if isinstance(unwrapped, ast.Lambda):
                bad = "a lambda"
            elif (isinstance(unwrapped, ast.Name)
                  and unwrapped.id in local_defs):
                bad = "the nested function %r" % unwrapped.id
            if bad is not None:
                what = ("as the worker callable" if position == 0
                        else "as a worker argument")
                self._report(
                    findings, info, unwrapped, "SF404",
                    "%s crosses the pool boundary %s; worker payloads "
                    "must be picklable top-level functions and plain data"
                    % (bad, what))

    def _check_unordered_free_calls(self, findings: List[Finding]) -> None:
        for qname in sorted(self.index.functions):
            info = self.index.functions[qname]
            exempt = None
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                dotted = _qualified_name(node.func, info.entry.imports)
                if dotted not in _UNORDERED_CALLS:
                    continue
                if exempt is None:
                    exempt = self._order_insensitive_args(info)
                if id(node) not in exempt:
                    self._report(
                        findings, info, node, "SF402",
                        "as_completed() yields futures in completion "
                        "order; sort the gathered results before merging")

    # --- SF401 (worker global writes) -------------------------------------

    def _check_worker_writes(self, info: FunctionInfo, root: str,
                             findings: List[Finding]) -> None:
        entry = info.entry
        own = self._mutable_globals(entry)
        imported = self._imported_mutable_globals(entry)
        local = _local_bindings(info.node)
        declared_global = _global_decls(info.node)

        def origin_of(name: str) -> Optional[str]:
            if name in local and name not in declared_global:
                return None
            if name in own:
                return "%s:%s" % (entry.module or entry.path, name)
            return imported.get(name)

        def flag(node: ast.AST, name: str, origin: str) -> None:
            self._report(
                findings, info, node, "SF401",
                "module-level mutable %r (%s) is written from worker "
                "context (reached from pool entrypoint %s); worker "
                "results must flow back through the pool's return "
                "values and a deterministic merge" % (name, origin, root))

        for node in ast.walk(info.node):
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = [t for t in node.targets
                           if isinstance(t, (ast.Subscript, ast.Attribute))]
            elif isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Attribute)
                        and func.attr in _MUTATORS
                        and isinstance(func.value, ast.Name)):
                    origin = origin_of(func.value.id)
                    if origin is not None:
                        flag(node, func.value.id, origin)
                continue
            for target in targets:
                if (isinstance(target, ast.Name)
                        and target.id in declared_global
                        and target.id in own):
                    flag(node, target.id,
                         "%s:%s" % (entry.module or entry.path, target.id))
                    continue
                root_name = (_store_root(target)
                             if isinstance(target, (ast.Subscript,
                                                    ast.Attribute))
                             else None)
                if root_name is None:
                    continue
                origin = origin_of(root_name.id)
                if origin is not None:
                    flag(node, root_name.id, origin)

    # --- SF403 (fork-unsafe RNG) -----------------------------------------

    def _check_worker_rng(self, info: FunctionInfo, root: str,
                          findings: List[Finding]) -> None:
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            dotted = _qualified_name(node.func, info.entry.imports)
            if dotted is None or not dotted.startswith("random."):
                continue
            tail = dotted[len("random."):]
            if "." in tail:
                continue
            if tail == "Random":
                seeded_ok = (bool(node.args)
                             and not isinstance(node.args[0], ast.Constant))
                if not seeded_ok:
                    self._report(
                        findings, info, node, "SF403",
                        "random.Random(%s) in worker context duplicates "
                        "draw sequences across workers; derive the seed "
                        "with repro.sim.rng.derive_seed / Stream.substream "
                        "from the worker's spec"
                        % ("constant seed" if node.args else "no seed"))
            elif tail == "SystemRandom":
                self._report(
                    findings, info, node, "SF403",
                    "random.SystemRandom in worker context is "
                    "irreproducible; use repro.sim.rng streams derived "
                    "from the worker's spec")
            else:
                self._report(
                    findings, info, node, "SF403",
                    "random.%s() uses the process-global generator in "
                    "worker context; its state diverges per worker and "
                    "is invisible to the campaign seed tree — mint a "
                    "stream via repro.sim.rng instead" % tail)

    # --- SF405 (emit-context mutation) ------------------------------------

    def _check_subscriber(self, info: FunctionInfo, direct: bool,
                          findings: List[Finding]) -> None:
        entry = info.entry
        own = self._mutable_globals(entry)
        imported = self._imported_mutable_globals(entry)
        event_param: Optional[str] = None
        if direct:
            params = info.params[1:] if info.is_method else info.params
            if params:
                event_param = params[0]

        def flag_store(node: ast.AST, target: ast.AST) -> bool:
            root_name = _store_root(target) if isinstance(
                target, (ast.Subscript, ast.Attribute)) else None
            if root_name is None:
                return False
            if event_param is not None and root_name.id == event_param:
                self._report(
                    findings, info, node, "SF405",
                    "subscriber %r mutates the event it observes; "
                    "subscribers must treat emitted events as read-only"
                    % info.name)
                return True
            if (root_name.id in own or root_name.id in imported):
                self._report(
                    findings, info, node, "SF405",
                    "subscriber code writes module-level state %r from "
                    "emit context; observers must fold into their own "
                    "accumulators, never shared globals" % root_name.id)
                return True
            return False

        for node in ast.walk(info.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    flag_store(node, target)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                flag_store(node, node.target)
            elif isinstance(node, ast.Call):
                name = None
                if isinstance(node.func, ast.Name):
                    name = node.func.id
                elif isinstance(node.func, ast.Attribute):
                    name = node.func.attr
                if name is not None and name.startswith("hsfq_"):
                    self._report(
                        findings, info, node, "SF405",
                        "subscriber code calls %s() from emit context; "
                        "restructuring the scheduling tree inside an "
                        "emit re-enters the machinery that is emitting"
                        % name)

    # --- SF406 (entrypoint environment reads) -----------------------------

    def _check_entry_env(self, info: FunctionInfo,
                         findings: List[Finding]) -> None:
        for node in ast.walk(info.node):
            dotted = None
            if isinstance(node, ast.Attribute):
                dotted = _qualified_name(node, info.entry.imports)
                if dotted not in _ENV_ATTRS:
                    continue
            elif isinstance(node, ast.Call):
                dotted = _qualified_name(node.func, info.entry.imports)
                if dotted not in _ENV_CALLS:
                    continue
            else:
                continue
            self._report(
                findings, info, node, "SF406",
                "%s read inside the pool entrypoint %r; workers inherit "
                "a stale host environment — pass configuration through "
                "the worker's spec instead" % (dotted, info.name))
