"""Dependency-free C tokenizer/extractor for the compiled-engine seam.

The SF5xx seam rules (:mod:`repro.devtools.schedflow.seamrules`) need a
*structural* view of ``src/repro/core/_sfqc.c`` — enum layouts, function
bodies, call sites, declared variable types, format strings, suppression
comments — without depending on a real C frontend.  This module provides
exactly that: a lossy-but-robust tokenizer plus an extractor tuned to the
dialect the compiled engine is written in (C89-ish CPython extension
code: no typedef metaprogramming, no token-pasting macros in the hot
structures).

Design contract, locked in by the property suite
(``tests/test_seamcheck_props.py``):

* :func:`tokenize` never raises, whatever bytes it is fed — unknown
  characters become ``other`` tokens, unterminated literals degrade to
  punctuation, line numbers stay exact.
* :func:`extract` either returns a :class:`CModule` or raises
  :class:`CParseError` (never anything else) — the CLI maps that to its
  usual exit status 2, same as a Python syntax error.

The extractor is deliberately *not* a preprocessor: ``#`` directives are
blanked (preserving line numbers) after harvesting ``#define`` bodies
into :attr:`CModule.macros`, so rules can classify one level of
function-like macro (``COL`` expanding to ``PyList_GET_ITEM``) without a
full expansion pass.
"""

from __future__ import annotations

import re
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "CParseError", "Token", "CEnumMember", "CEnum", "CStructField",
    "CStruct", "CCall", "CStatement", "CFunction", "CModule",
    "tokenize", "extract",
]


class CParseError(Exception):
    """The C source is too malformed for structural extraction."""


class Token:
    """One lexical token: ``kind`` in id/num/str/char/punct/other."""

    __slots__ = ("kind", "text", "line")

    def __init__(self, kind: str, text: str, line: int) -> None:
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self) -> str:
        return "Token(%s, %r, %d)" % (self.kind, self.text, self.line)


_TOKEN_RE = re.compile(
    r"""
      (?P<comment>/\*.*?\*/|//[^\n]*)
    | (?P<str>"(?:\\.|[^"\\\n])*")
    | (?P<char>'(?:\\.|[^'\\\n])*')
    | (?P<num>(?:0[xX][0-9a-fA-F]+|\d+(?:\.\d*)?(?:[eE][+-]?\d+)?)
              [uUlLfF]*)
    | (?P<id>[A-Za-z_]\w*)
    | (?P<punct>->|\+\+|--|<<=|>>=|<<|>>|<=|>=|==|!=|&&|\|\|
                |[-+*/%&|^!~<>=?:;,.(){}\[\]])
    | (?P<nl>\n)
    | (?P<ws>[^\S\n]+)
    | (?P<other>.)
    """,
    re.VERBOSE | re.DOTALL)

#: C keywords that look like call sites when followed by ``(``
_NOT_A_CALL = frozenset((
    "if", "while", "for", "switch", "return", "sizeof", "do", "else",
    "case", "goto",
))

#: tokens that can start a declaration's type
_TYPE_HEADS = frozenset((
    "void", "char", "short", "int", "long", "float", "double", "signed",
    "unsigned", "const", "static", "struct", "union", "enum", "_Bool",
))

_SUPPRESS_C_RE = re.compile(
    r"(?:seamcheck|schedflow|schedlint)\s*:\s*disable=([A-Za-z0-9_,\s]+)")

_DEFINE_RE = re.compile(
    r"#\s*define\s+([A-Za-z_]\w*)(\([^)]*\))?\s*(.*)", re.DOTALL)


def _strip_preprocessor(text: str) -> Tuple[str, Dict[str, str]]:
    """Blank ``#`` directives (line numbers preserved); harvest defines."""
    macros: Dict[str, str] = {}
    out_lines: List[str] = []
    lines = text.split("\n")
    index = 0
    while index < len(lines):
        line = lines[index]
        if line.lstrip().startswith("#"):
            directive = [line]
            blank = [""]
            while directive[-1].rstrip().endswith("\\") and \
                    index + 1 < len(lines):
                index += 1
                directive.append(lines[index])
                blank.append("")
            whole = "\n".join(directive).replace("\\\n", " ")
            match = _DEFINE_RE.match(whole.lstrip())
            if match is not None:
                macros[match.group(1)] = match.group(3).strip()
            out_lines.extend(blank)
        else:
            out_lines.append(line)
        index += 1
    return "\n".join(out_lines), macros


def tokenize(text: str) -> List[Token]:
    """Lex ``text`` into tokens; comments/whitespace are dropped.

    Total and crash-free by construction: the token alternation ends in
    a catch-all single-character class, so every input position is
    consumed by exactly one match.
    """
    tokens: List[Token] = []
    line = 1
    for match in _TOKEN_RE.finditer(text):
        kind = match.lastgroup or "other"
        value = match.group()
        if kind in ("ws",):
            continue
        if kind == "nl":
            line += 1
            continue
        if kind == "comment":
            line += value.count("\n")
            continue
        tokens.append(Token(kind, value, line))
        line += value.count("\n")
    return tokens


def scan_comments(text: str) -> List[Tuple[int, str]]:
    """All comments as ``(start_line, text)`` pairs, in order."""
    comments: List[Tuple[int, str]] = []
    line = 1
    for match in _TOKEN_RE.finditer(text):
        if match.lastgroup == "comment":
            comments.append((line, match.group()))
        line += match.group().count("\n")
    return comments


class CEnumMember:
    """One enumerator: resolved ``value`` is None for non-literal exprs."""

    __slots__ = ("name", "value", "line")

    def __init__(self, name: str, value: Optional[int], line: int) -> None:
        self.name = name
        self.value = value
        self.line = line


class CEnum:
    """One ``enum { ... }`` block (``name`` may be empty for anonymous)."""

    __slots__ = ("name", "members", "line")

    def __init__(self, name: str, members: List[CEnumMember],
                 line: int) -> None:
        self.name = name
        self.members = members
        self.line = line


class CStructField:
    """One struct field: normalized type text plus the declarator name."""

    __slots__ = ("type", "name", "line")

    def __init__(self, type_text: str, name: str, line: int) -> None:
        self.type = type_text
        self.name = name
        self.line = line


class CStruct:
    """One ``struct { ... }`` definition with its ordered fields."""

    __slots__ = ("name", "fields", "line")

    def __init__(self, name: str, fields: List[CStructField],
                 line: int) -> None:
        self.name = name
        self.fields = fields
        self.line = line


class CCall:
    """One call site: ``name(args...)`` with top-level-comma-split args."""

    __slots__ = ("name", "args", "line")

    def __init__(self, name: str, args: List[List[Token]], line: int) -> None:
        self.name = name
        self.args = args
        self.line = line

    def arg_ids(self) -> List[Optional[str]]:
        """Per argument: the identifier if the arg is a single id."""
        out: List[Optional[str]] = []
        for arg in self.args:
            if len(arg) == 1 and arg[0].kind == "id":
                out.append(arg[0].text)
            else:
                out.append(None)
        return out


class CStatement:
    """One statement-ish token run inside a function body."""

    __slots__ = ("tokens", "line", "depth")

    def __init__(self, tokens: List[Token], line: int, depth: int) -> None:
        self.tokens = tokens
        self.line = line
        self.depth = depth

    def text(self) -> str:
        """Space-joined token text (diagnostics only)."""
        return " ".join(t.text for t in self.tokens)


class CFunction:
    """One function definition, pre-digested for the seam rules."""

    __slots__ = ("name", "ret_type", "params", "body", "statements",
                 "calls", "locals", "labels", "line", "end_line")

    def __init__(self, name: str, ret_type: str,
                 params: List[Tuple[str, str]], body: List[Token],
                 line: int, end_line: int) -> None:
        self.name = name
        self.ret_type = ret_type
        #: ordered ``(type_text, name)`` pairs
        self.params = params
        self.body = body
        self.line = line
        self.end_line = end_line
        self.statements: List[CStatement] = _split_statements(body)
        self.calls: List[CCall] = list(_iter_calls(body))
        #: declared local variables: name -> normalized type text
        self.locals: Dict[str, str] = _collect_locals(self.statements)
        for ptype, pname in params:
            self.locals.setdefault(pname, ptype)
        #: goto label -> index into ``statements``
        self.labels: Dict[str, int] = _collect_labels(self.statements)

    def var_type(self, name: str) -> Optional[str]:
        """Declared type of a local or parameter, if known."""
        return self.locals.get(name)


class CModule:
    """The extracted structural view of one C translation unit."""

    __slots__ = ("path", "enums", "structs", "functions", "macros",
                 "suppressions", "method_table", "intern_strings")

    def __init__(self, path: str) -> None:
        self.path = path
        self.enums: List[CEnum] = []
        self.structs: List[CStruct] = []
        #: definition order preserved (dicts are ordered)
        self.functions: Dict[str, CFunction] = {}
        self.macros: Dict[str, str] = {}
        #: line -> set of disabled codes ("*" disables all)
        self.suppressions: Dict[int, Set[str]] = {}
        #: PyMethodDef rows: (exported_name, c_function, line)
        self.method_table: List[Tuple[str, str, int]] = []
        #: interned-string variable -> attribute literal ("str_active" ->
        #: "active"), from ``{ &str_x, "x" }`` initializer rows
        self.intern_strings: Dict[str, str] = {}

    def macro_expands_to(self, name: str, target: str) -> bool:
        """True when macro ``name``'s body mentions ``target``."""
        body = self.macros.get(name)
        return body is not None and target in body

    def suppressed(self, line: int, code: str) -> bool:
        """True when a disable comment covers ``line`` for ``code``."""
        codes = self.suppressions.get(line)
        return codes is not None and (code in codes or "*" in codes)


def _string_value(token: Token) -> str:
    """Best-effort unescaped value of a string literal token."""
    body = token.text[1:-1]
    try:
        return bytes(body, "utf-8").decode("unicode_escape")
    except UnicodeDecodeError:
        return body


def _match_paren(tokens: Sequence[Token], start: int) -> int:
    """Index of the ``)`` matching the ``(`` at ``start`` (or -1)."""
    depth = 0
    for index in range(start, len(tokens)):
        text = tokens[index].text
        if text == "(":
            depth += 1
        elif text == ")":
            depth -= 1
            if depth == 0:
                return index
    return -1


def _match_brace(tokens: Sequence[Token], start: int) -> int:
    """Index of the ``}`` matching the ``{`` at ``start`` (or -1)."""
    depth = 0
    for index in range(start, len(tokens)):
        text = tokens[index].text
        if text == "{":
            depth += 1
        elif text == "}":
            depth -= 1
            if depth == 0:
                return index
    return -1


def _split_commas(tokens: Sequence[Token]) -> List[List[Token]]:
    """Split on commas at paren/brace/bracket depth zero."""
    parts: List[List[Token]] = []
    current: List[Token] = []
    depth = 0
    for token in tokens:
        if token.text in "([{":
            depth += 1
        elif token.text in ")]}":
            depth -= 1
        if token.text == "," and depth == 0:
            parts.append(current)
            current = []
        else:
            current.append(token)
    if current or parts:
        parts.append(current)
    return parts


def _type_text(tokens: Sequence[Token]) -> str:
    """Normalize declaration-type tokens: one space, stars attached."""
    words = [t.text for t in tokens if t.text not in ("const", "static",
                                                      "register", "volatile")]
    text = " ".join(words)
    return text.replace(" *", " *").strip()


def _split_statements(body: Sequence[Token]) -> List[CStatement]:
    """Split a body token stream into statement-ish runs.

    ``;`` ends a statement; ``{`` ends the preceding header (so an
    ``if (...)`` header is its own record) and bumps the depth; ``}``
    closes it.  Parenthesized ``;`` (for-loop headers) do not split.
    """
    statements: List[CStatement] = []
    current: List[Token] = []
    depth = 0
    paren = 0
    line = 0
    for token in body:
        if not current:
            line = token.line
        if token.text == "(":
            paren += 1
        elif token.text == ")":
            paren = max(0, paren - 1)
        if token.text == ";" and paren == 0:
            current.append(token)
            statements.append(CStatement(current, line, depth))
            current = []
        elif token.text == "{":
            if current:
                statements.append(CStatement(current, line, depth))
                current = []
            depth += 1
        elif token.text == "}":
            if current:
                statements.append(CStatement(current, line, depth))
                current = []
            depth = max(0, depth - 1)
        else:
            current.append(token)
    if current:
        statements.append(CStatement(current, line, depth))
    return statements


def _iter_calls(tokens: Sequence[Token]) -> Iterator[CCall]:
    """Every ``ident(...)`` site in ``tokens``, including nested ones."""
    for index, token in enumerate(tokens):
        if token.kind != "id" or token.text in _NOT_A_CALL:
            continue
        if index + 1 >= len(tokens) or tokens[index + 1].text != "(":
            continue
        close = _match_paren(tokens, index + 1)
        if close < 0:
            continue
        inner = list(tokens[index + 2:close])
        args = _split_commas(inner) if inner else []
        yield CCall(token.text, args, token.line)


def _collect_locals(statements: Sequence[CStatement]) -> Dict[str, str]:
    """Map declared local variables to normalized type text."""
    out: Dict[str, str] = {}
    for stmt in statements:
        tokens = stmt.tokens
        if not tokens or tokens[0].kind != "id":
            continue
        head = tokens[0].text
        if head not in _TYPE_HEADS and not (
                head[0].isupper() or head.startswith("Py")):
            continue
        if head in ("return", "goto", "typedef"):
            continue
        # consume the type: leading ids (+ one struct/union tag) and stars
        index = 0
        type_tokens: List[Token] = []
        while index < len(tokens) and tokens[index].kind == "id" and (
                tokens[index].text in _TYPE_HEADS
                or index == 0
                or (index == 1 and tokens[0].text in ("struct", "union",
                                                      "enum"))):
            type_tokens.append(tokens[index])
            index += 1
        stars = 0
        while index < len(tokens) and tokens[index].text == "*":
            stars += 1
            index += 1
        if not type_tokens or index >= len(tokens):
            continue
        if tokens[index].kind != "id":
            continue
        name = tokens[index].text
        after = tokens[index + 1].text if index + 1 < len(tokens) else ";"
        if after not in ("=", ";", ",", "["):
            continue  # a function call/definition, not a declaration
        type_text = _type_text(type_tokens) + (" " + "*" * stars if stars
                                               else "")
        out[name] = type_text
        # further declarators in `int a, b;` (same type, no initializers)
        if after == ",":
            for part in _split_commas(tokens[index + 1:]):
                if len(part) >= 1 and part and part[0].kind == "id":
                    out[part[0].text] = type_text
    return out


def _collect_labels(statements: Sequence[CStatement]) -> Dict[str, int]:
    """Goto labels (``name:`` statement heads) -> statement index."""
    labels: Dict[str, int] = {}
    for index, stmt in enumerate(statements):
        tokens = stmt.tokens
        if (len(tokens) >= 2 and tokens[0].kind == "id"
                and tokens[1].text == ":"
                and tokens[0].text not in ("default", "case")):
            labels[tokens[0].text] = index
    return labels


def _extract_enums(module: CModule, tokens: Sequence[Token]) -> None:
    index = 0
    while index < len(tokens):
        token = tokens[index]
        if token.kind == "id" and token.text == "enum":
            name = ""
            look = index + 1
            if look < len(tokens) and tokens[look].kind == "id":
                name = tokens[look].text
                look += 1
            if look < len(tokens) and tokens[look].text == "{":
                close = _match_brace(tokens, look)
                if close < 0:
                    raise CParseError(
                        "%s:%d: unterminated enum block"
                        % (module.path, token.line))
                members: List[CEnumMember] = []
                next_value: Optional[int] = 0
                for part in _split_commas(tokens[look + 1:close]):
                    if not part or part[0].kind != "id":
                        continue
                    member_name = part[0].text
                    value = next_value
                    if len(part) >= 3 and part[1].text == "=":
                        if len(part) == 3 and part[2].kind == "num":
                            try:
                                value = int(part[2].text.rstrip("uUlL"), 0)
                            except ValueError:
                                value = None
                        else:
                            value = None  # expression: order-only member
                    members.append(
                        CEnumMember(member_name, value, part[0].line))
                    next_value = None if value is None else value + 1
                module.enums.append(CEnum(name, members, token.line))
                index = close
        index += 1


def _extract_structs(module: CModule, tokens: Sequence[Token]) -> None:
    index = 0
    while index < len(tokens):
        token = tokens[index]
        if token.kind == "id" and token.text in ("struct", "union"):
            name = ""
            look = index + 1
            if look < len(tokens) and tokens[look].kind == "id":
                name = tokens[look].text
                look += 1
            if look < len(tokens) and tokens[look].text == "{":
                close = _match_brace(tokens, look)
                if close < 0:
                    raise CParseError(
                        "%s:%d: unterminated struct block"
                        % (module.path, token.line))
                fields: List[CStructField] = []
                inner = tokens[look + 1:close]
                run: List[Token] = []
                for tok in inner:
                    if tok.text == ";":
                        if len(run) >= 2:
                            fname = None
                            for candidate in reversed(run):
                                if candidate.kind == "id":
                                    fname = candidate
                                    break
                            if fname is not None:
                                cut = run.index(fname)
                                fields.append(CStructField(
                                    _type_text(run[:cut]) + "".join(
                                        t.text for t in run[cut:]
                                        if t.text == "*"),
                                    fname.text, fname.line))
                        run = []
                    else:
                        run.append(tok)
                module.structs.append(CStruct(name, fields, token.line))
                index = close
        index += 1


def _extract_functions(module: CModule, tokens: Sequence[Token]) -> None:
    index = 0
    depth = 0
    last_boundary = 0
    while index < len(tokens):
        text = tokens[index].text
        if text == "{":
            depth += 1
        elif text == "}":
            depth -= 1
            if depth < 0:
                raise CParseError(
                    "%s:%d: unbalanced '}'"
                    % (module.path, tokens[index].line))
        elif text == ";" and depth == 0:
            last_boundary = index + 1
        elif (depth == 0 and tokens[index].kind == "id"
                and index + 1 < len(tokens)
                and tokens[index + 1].text == "("):
            close = _match_paren(tokens, index + 1)
            if close >= 0 and close + 1 < len(tokens) \
                    and tokens[close + 1].text == "{":
                body_close = _match_brace(tokens, close + 1)
                if body_close < 0:
                    raise CParseError(
                        "%s:%d: unterminated function body for %r"
                        % (module.path, tokens[index].line,
                           tokens[index].text))
                name = tokens[index].text
                ret_type = _type_text(tokens[last_boundary:index])
                params: List[Tuple[str, str]] = []
                for part in _split_commas(tokens[index + 2:close]):
                    ids = [t for t in part if t.kind == "id"]
                    if not ids or (len(ids) == 1 and ids[0].text == "void"):
                        continue
                    ptokens = part[:-1] if part[-1] is ids[-1] else \
                        [t for t in part if t is not ids[-1]]
                    stars = sum(1 for t in part if t.text == "*")
                    ptype = _type_text(
                        [t for t in ptokens if t.kind == "id"])
                    if stars:
                        ptype += " " + "*" * stars
                    params.append((ptype, ids[-1].text))
                body = list(tokens[close + 2:body_close])
                module.functions[name] = CFunction(
                    name, ret_type, params, body,
                    tokens[index].line, tokens[body_close].line)
                index = body_close
                last_boundary = index + 1
        index += 1
    if depth != 0:
        raise CParseError("%s: unbalanced braces at end of file"
                          % module.path)


def _extract_method_table(module: CModule, tokens: Sequence[Token]) -> None:
    """Rows of a ``PyMethodDef`` initializer: exported name -> C symbol."""
    for index, token in enumerate(tokens):
        if token.kind != "id" or token.text != "PyMethodDef":
            continue
        open_brace = next(
            (i for i in range(index, min(index + 8, len(tokens)))
             if tokens[i].text == "{"), -1)
        if open_brace < 0:
            continue
        close = _match_brace(tokens, open_brace)
        if close < 0:
            continue
        inner = tokens[open_brace + 1:close]
        run = 0
        while run < len(inner):
            if inner[run].text == "{":
                row_close = _match_brace(inner, run)
                if row_close < 0:
                    break
                row = inner[run + 1:row_close]
                exported = next(
                    (t for t in row if t.kind == "str"), None)
                symbol = next(
                    (t for t in row if t.kind == "id"
                     and t.text in module.functions), None)
                if exported is not None and symbol is not None:
                    module.method_table.append(
                        (_string_value(exported), symbol.text,
                         exported.line))
                run = row_close
            run += 1


def _extract_intern_strings(module: CModule,
                            tokens: Sequence[Token]) -> None:
    """``{ &str_x, "x" }`` initializer rows -> ``str_x`` -> ``"x"``."""
    for index in range(len(tokens) - 3):
        if (tokens[index].text == "&" and tokens[index + 1].kind == "id"
                and tokens[index + 2].text == ","
                and tokens[index + 3].kind == "str"):
            module.intern_strings[tokens[index + 1].text] = \
                _string_value(tokens[index + 3])


def _extract_suppressions(module: CModule, text: str) -> None:
    lines = text.split("\n")
    for start_line, comment in scan_comments(text):
        match = _SUPPRESS_C_RE.search(comment)
        if match is None:
            continue
        codes = {code.strip().upper()
                 for code in match.group(1).split(",") if code.strip()}
        codes = {"*" if code == "ALL" else code for code in codes}
        target = start_line
        line_text = lines[start_line - 1] if start_line <= len(lines) else ""
        before = line_text.split("/*")[0].split("//")[0]
        if not before.strip():
            # comment on its own line: covers the next non-blank line
            probe = start_line + comment.count("\n")
            while probe < len(lines) and not lines[probe].strip():
                probe += 1
            target = probe + 1
        module.suppressions.setdefault(target, set()).update(codes)
        if target != start_line:
            module.suppressions.setdefault(start_line, set()).update(codes)


def extract(text: str, path: str = "<c>") -> CModule:
    """Extract the structural view of one C file.

    Raises :class:`CParseError` when the brace structure is too broken
    to delimit functions/enums — the analyzable-at-all gate.
    """
    try:
        stripped, macros = _strip_preprocessor(text)
        module = CModule(path)
        module.macros = macros
        tokens = tokenize(stripped)
        _extract_enums(module, tokens)
        _extract_structs(module, tokens)
        _extract_functions(module, tokens)
        _extract_method_table(module, tokens)
        _extract_intern_strings(module, tokens)
        _extract_suppressions(module, text)
        return module
    except CParseError:
        raise
    except RecursionError as exc:  # pathological nesting: still "unparseable"
        raise CParseError("%s: %s" % (path, exc)) from exc
