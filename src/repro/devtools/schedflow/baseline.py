"""Baseline files: adopt schedflow on a tree with pre-existing findings.

A baseline is a JSON list of finding *fingerprints*.  A fingerprint
deliberately omits the line number — it hashes the module-relative path,
the rule code, the message, and the source text of the flagged line —
so unrelated edits above a finding do not invalidate the baseline,
while any change to the flagged code itself surfaces the finding again.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Iterable, List

from repro.devtools.schedlint import Finding, LintError, module_path_for

__all__ = ["fingerprint", "load_baseline", "write_baseline", "apply_baseline"]


def fingerprint(finding: Finding, source_lines: Dict[str, List[str]]) -> str:
    """Stable identity of a finding across unrelated edits."""
    lines = source_lines.get(finding.path, [])
    text = (lines[finding.line - 1].strip()
            if 0 < finding.line <= len(lines) else "")
    anchor = module_path_for(finding.path) or finding.path
    digest = hashlib.sha256(
        "\x00".join((anchor, finding.code, finding.message, text))
        .encode("utf-8")).hexdigest()
    return digest[:16]


def load_baseline(path: str) -> List[str]:
    """Read a baseline file; raises :class:`LintError` on bad format."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as exc:
        raise LintError("baseline %s: %s" % (path, exc)) from exc
    except ValueError as exc:
        raise LintError("baseline %s: invalid JSON: %s" % (path, exc)) from exc
    if (not isinstance(data, dict) or data.get("version") != 1
            or not isinstance(data.get("fingerprints"), list)):
        raise LintError("baseline %s: unrecognized format" % path)
    return [str(item) for item in data["fingerprints"]]


def write_baseline(path: str, findings: Iterable[Finding],
                   source_lines: Dict[str, List[str]]) -> int:
    """Write ``findings`` as a baseline; returns the fingerprint count."""
    prints = sorted({fingerprint(f, source_lines) for f in findings})
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"version": 1, "tool": "schedflow", "fingerprints": prints},
                  handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(prints)


def apply_baseline(findings: Iterable[Finding], baseline: List[str],
                   source_lines: Dict[str, List[str]]) -> List[Finding]:
    """Drop findings whose fingerprint is in the baseline."""
    known = set(baseline)
    return [f for f in findings
            if fingerprint(f, source_lines) not in known]
