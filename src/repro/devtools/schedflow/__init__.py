"""schedflow: interprocedural dataflow analysis for the scheduler codebase.

Where schedlint (PR 1) checks one statement at a time, schedflow builds a
per-function control-flow graph and a project-wide call graph over
``src/repro/`` and runs fixed-point dataflow passes across function
boundaries.  Four rule families guard the properties the paper's
guarantees rest on:

========  ==============================================================
code       meaning
========  ==============================================================
SF101      host time/entropy/env value flows into simulator state
SF102      host time/entropy/env value flows into a simulator API call
SF201      mixed-unit arithmetic or comparison (e.g. seconds + instructions)
SF202      ``==``/``!=`` between a virtual-time tag and a float literal
SF203      wrong-unit argument to a unit-typed signature
SF204      direct ``.weight = ...`` mutation bypassing ``set_weight``
SF205      magic time literal (1_000_000_000) instead of ``units.SECOND``
SF301      owned scheduler state written outside its owning module
SF302      hsfq path operated on after ``hsfq_rmnod`` removed it
SF401      module-level mutable state written from worker-pool context
SF402      completion-order-dependent merge of pool results
SF403      fork-unsafe RNG use bypassing ``derive_seed``/``substream``
SF404      lambda or nested function crossing a pool boundary
SF405      event-bus subscriber mutating foreign state from emit context
SF406      ``os.environ`` read inside a worker-pool entrypoint
========  ==============================================================

The SF4xx family (``repro.devtools.schedflow.parallel``) computes a
may-happen-in-parallel relation from the call graph plus every pool
``submit``/``map`` site, then checks that nothing mutable escapes a
worker boundary except through the deterministic merge paths faultlab
established.  Its runtime twin is SCHEDSAN's isolation guard
(``REPRO_SCHEDSAN=1``): what the pass proves cannot be written, the
guard asserts was not written.

SF204 is the static face of SCHEDSAN's dormant-weight-change invariant
(``repro.devtools.schedsan``, rule ``dormant-weight-warp``): a weight
written directly while a node is dormant warps v(t) in a way §3 of the
paper forbids; ``set_weight`` is the sanctioned mutator that SCHEDSAN can
observe.

schedflow shares schedlint's suppression syntax (``# schedflow:
disable=SF201``, ``# noqa: SF201``, file-level ``disable-file=``), its
``# schedlint-fixture-module:`` directive, and its exit-code convention
(0 clean / 1 findings / 2 crash).  The CLI adds ``--sarif`` output for
GitHub inline annotations, ``--baseline`` files for adopting the tool
on a tree with pre-existing findings, and ``--jobs N`` to fan the
analysis across a process pool with a byte-identical, name-sorted
merge (``repro.devtools.schedflow.parjobs``).
"""

from __future__ import annotations

from repro.devtools.schedflow.engine import (
    RULES,
    analyze_paths,
    analyze_project,
)

__all__ = ["RULES", "analyze_paths", "analyze_project"]
