"""The unit/dimension lattice behind the SF2xx rules.

A :class:`Unit` is either one of the two lattice sentinels or a vector of
integer exponents over the base dimensions ``(time, instructions,
weight)``:

* ``BOTTOM`` — polymorphic: numeric literals and unconstrained values.
  Acts as a dimensionless scalar under ``*`` and ``/`` so conversion
  idioms like ``planned * SECOND // capacity_ips`` type-check without
  annotating every constant.
* ``TOP`` — conflicting/unknown: the analysis gave up on this value.
* concrete vectors — ``TIME`` is ``time^1``, ``VIRTUAL`` (an SFQ tag) is
  ``instr^1 * weight^-1`` because a tag advances by ``length / weight``,
  and ``RATE`` (``capacity_ips``) is ``instr^1 * time^-1``.

``join``/``meet`` treat the concrete vectors as a flat antichain between
the sentinels, which keeps both operations associative, commutative,
idempotent, and absorbing — properties the hypothesis suite
(``tests/test_schedflow_lattice.py``) checks exhaustively.

Only ``additive`` combination (``+``, ``-``, comparisons) can produce an
SF201 mismatch, and only when *both* operands are concrete and unequal:
``BOTTOM`` never convicts, so unannotated code stays quiet until it
mixes two values the analysis genuinely knows to be different dimensions.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

__all__ = [
    "Unit", "BOTTOM", "TOP", "DIMENSIONLESS",
    "TIME", "INSTR", "WEIGHT", "VIRTUAL", "RATE", "FREQUENCY",
]


class Unit:
    """An element of the unit lattice; immutable and interned-comparable."""

    __slots__ = ("kind", "exps")

    def __init__(self, kind: str, exps: Tuple[int, int, int] = (0, 0, 0)) -> None:
        assert kind in ("bottom", "top", "dim")
        self.kind = kind
        self.exps = exps

    # --- identity ---------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Unit):
            return NotImplemented
        return self.kind == other.kind and (
            self.kind != "dim" or self.exps == other.exps)

    def __hash__(self) -> int:
        return hash((self.kind, self.exps if self.kind == "dim" else None))

    def __repr__(self) -> str:
        if self.kind != "dim":
            return "<%s>" % self.kind.upper()
        names = ("time", "instr", "weight")
        parts = ["%s^%d" % (n, e) for n, e in zip(names, self.exps) if e]
        return "<%s>" % ("*".join(parts) or "dimensionless")

    @property
    def concrete(self) -> bool:
        """True for exponent vectors (participates in mismatch checks)."""
        return self.kind == "dim"

    # --- lattice operations ----------------------------------------------

    def join(self, other: "Unit") -> "Unit":
        """Least upper bound (control-flow merge)."""
        if self == other:
            return self
        if self.kind == "bottom":
            return other
        if other.kind == "bottom":
            return self
        return TOP

    def meet(self, other: "Unit") -> "Unit":
        """Greatest lower bound (dual of :meth:`join`)."""
        if self == other:
            return self
        if self.kind == "top":
            return other
        if other.kind == "top":
            return self
        return BOTTOM

    # --- abstract arithmetic ----------------------------------------------

    def mul(self, other: "Unit") -> "Unit":
        """``a * b``: exponents add; BOTTOM behaves as a bare scalar."""
        if self.kind == "top" or other.kind == "top":
            return TOP
        if self.kind == "bottom":
            return other
        if other.kind == "bottom":
            return self
        return _dim(tuple(a + b for a, b in zip(self.exps, other.exps)))

    def div(self, other: "Unit") -> "Unit":
        """``a / b`` (also ``//``): exponents subtract."""
        if self.kind == "top" or other.kind == "top":
            return TOP
        if other.kind == "bottom":
            return self
        if self.kind == "bottom":
            return _dim(tuple(-e for e in other.exps))
        return _dim(tuple(a - b for a, b in zip(self.exps, other.exps)))

    def additive(self, other: "Unit") -> Optional["Unit"]:
        """``a + b`` / ``a - b`` / ``a < b``: units must agree.

        Returns the combined unit, or ``None`` for a provable mismatch
        (both operands concrete and different) — the SF201 trigger.
        """
        if self.kind == "top" or other.kind == "top":
            return TOP
        if self.kind == "bottom":
            return other
        if other.kind == "bottom":
            return self
        if self.exps == other.exps:
            return self
        return None


def _dim(exps: Iterable[int]) -> Unit:
    exps = tuple(exps)
    if exps == (0, 0, 0):
        return DIMENSIONLESS
    return Unit("dim", exps)


BOTTOM = Unit("bottom")
TOP = Unit("top")
DIMENSIONLESS = Unit("dim", (0, 0, 0))

TIME = Unit("dim", (1, 0, 0))          # integer nanoseconds (or float s/ms)
INSTR = Unit("dim", (0, 1, 0))         # instructions of work
WEIGHT = Unit("dim", (0, 0, 1))        # SFQ share weight
VIRTUAL = Unit("dim", (0, 1, -1))      # SFQ tag: work / weight
RATE = Unit("dim", (-1, 1, 0))         # capacity_ips: instructions / time
FREQUENCY = Unit("dim", (-1, 0, 0))    # events / time (derived metrics)
