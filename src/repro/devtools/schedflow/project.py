"""Whole-program index: files, functions, and the call graph.

The index parses every file once, records each function/method with a
stable qualified name (``repro/core/sfq.py::SfqQueue.charge``), and
resolves call sites with a deliberately modest heuristic stack:

1. an explicit dotted path through the import map
   (``from repro import units; units.work_from_time(...)``),
2. ``self.method(...)`` to a method of the enclosing class,
3. a bare name to a function in the same module,
4. a method name that is unique across every class in the project.

Unresolved calls stay unresolved — the passes treat them as opaque,
which keeps findings precise at the cost of missing flows through
dynamic dispatch.  For this codebase (no metaprogramming in the
simulator core) the heuristics resolve the calls that matter.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.devtools.schedlint import LintError, module_path_for
from repro.devtools.schedlint import _FIXTURE_MODULE_RE  # shared directive
from repro.devtools.schedlint.rules import _import_map, _qualified_name

__all__ = ["CFileEntry", "FileEntry", "FunctionInfo", "ProjectIndex",
           "collect_files"]


class FileEntry:
    """One parsed source file."""

    __slots__ = ("path", "source", "tree", "module", "imports")

    def __init__(self, path: str, source: str, tree: ast.Module,
                 module: Optional[str]) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.module = module
        self.imports = _import_map(tree)

    def in_module(self, *prefixes: str) -> bool:
        """True if the file's module path matches any prefix (a ``.py``
        prefix must match exactly)."""
        if self.module is None:
            return False
        for prefix in prefixes:
            if prefix.endswith(".py"):
                if self.module == prefix:
                    return True
            elif self.module.startswith(prefix):
                return True
        return False


class CFileEntry:
    """One C source file, carried for the SF5xx seam rules.

    C files are not AST-parsed here — the seam pass runs the
    :mod:`repro.devtools.schedflow.cext` extractor on demand — but they
    participate in project loading, ``--jobs`` sharding, and baseline
    fingerprinting exactly like Python entries.
    """

    __slots__ = ("path", "source")

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.source = source


class FunctionInfo:
    """One function or method, with enough context to analyze it."""

    __slots__ = ("qname", "entry", "class_name", "name", "node", "params")

    def __init__(self, qname: str, entry: FileEntry,
                 class_name: Optional[str], name: str,
                 node: ast.AST) -> None:
        self.qname = qname
        self.entry = entry
        self.class_name = class_name
        self.name = name
        self.node = node
        args = node.args
        self.params: List[str] = [a.arg for a in args.args]

    @property
    def is_method(self) -> bool:
        """True when defined inside a class (``self`` is parameter 0)."""
        return self.class_name is not None

    def __repr__(self) -> str:
        return "FunctionInfo(%s)" % self.qname


def collect_files(paths: Iterable[str]) -> List[str]:
    """Expand files and directories (recursing for ``*.py``/``*.c``),
    sorted."""
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if d not in ("__pycache__", ".git")
                    and not d.endswith(".egg-info"))
                for filename in sorted(filenames):
                    if filename.endswith((".py", ".c")):
                        files.append(os.path.join(dirpath, filename))
        else:
            files.append(path)
    return files


class ProjectIndex:
    """All files and functions under analysis, plus call resolution."""

    def __init__(self) -> None:
        self.entries: List[FileEntry] = []
        #: C sources for the SF5xx seam rules, in load order
        self.centries: List[CFileEntry] = []
        self.by_module: Dict[str, FileEntry] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        #: (module, bare name) -> module-level function
        self.module_funcs: Dict[Tuple[str, str], FunctionInfo] = {}
        #: (module, class, name) -> method
        self.methods: Dict[Tuple[str, str, str], FunctionInfo] = {}
        #: method name -> every method with that name, any class
        self.methods_by_name: Dict[str, List[FunctionInfo]] = {}

    # --- loading ----------------------------------------------------------

    @classmethod
    def load(cls, paths: Iterable[str]) -> "ProjectIndex":
        index = cls()
        for path in collect_files(paths):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    source = handle.read()
            except OSError as exc:
                raise LintError("%s: %s" % (path, exc)) from exc
            index.add_source(source, path)
        return index

    def add_source(self, source: str,
                   path: str) -> Union[FileEntry, CFileEntry]:
        """Parse and index one file (honours the fixture-module
        directive); raises :class:`LintError` on a syntax error.

        ``*.c`` paths are recorded as :class:`CFileEntry` (no AST) for
        the seam rules; everything else is parsed as Python.
        """
        if path.endswith(".c"):
            centry = CFileEntry(path, source)
            self.centries.append(centry)
            return centry
        directive = _FIXTURE_MODULE_RE.search(source)
        if directive is not None:
            module = directive.group(1)
        else:
            module = module_path_for(path)
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            raise LintError("%s: syntax error: %s" % (path, exc)) from exc
        entry = FileEntry(path, source, tree, module)
        self.entries.append(entry)
        if module is not None:
            self.by_module[module] = entry
        self._index_functions(entry)
        return entry

    def _index_functions(self, entry: FileEntry) -> None:
        anchor = entry.module or entry.path
        for stmt in entry.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(entry, anchor, None, stmt)
            elif isinstance(stmt, ast.ClassDef):
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._add_function(entry, anchor, stmt.name, sub)

    def _add_function(self, entry: FileEntry, anchor: str,
                      class_name: Optional[str], node: ast.AST) -> None:
        if class_name is None:
            qname = "%s::%s" % (anchor, node.name)
        else:
            qname = "%s::%s.%s" % (anchor, class_name, node.name)
        info = FunctionInfo(qname, entry, class_name, node.name, node)
        self.functions[qname] = info
        if entry.module is not None:
            if class_name is None:
                self.module_funcs[(entry.module, node.name)] = info
            else:
                self.methods[(entry.module, class_name, node.name)] = info
        if class_name is not None:
            self.methods_by_name.setdefault(node.name, []).append(info)

    # --- call resolution --------------------------------------------------

    def dotted(self, node: ast.AST, entry: FileEntry) -> Optional[str]:
        """The import-resolved dotted path of a call target, if any."""
        return _qualified_name(node, entry.imports)

    def resolve_call(self, call: ast.Call, entry: FileEntry,
                     class_name: Optional[str]) -> Optional[FunctionInfo]:
        """Resolve a call site to a project function via the heuristic
        stack in the module docstring; ``None`` when ambiguous."""
        func = call.func
        # self.method(...) inside a class
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "self" and class_name is not None
                and entry.module is not None):
            info = self.methods.get((entry.module, class_name, func.attr))
            if info is not None:
                return info
        # explicit dotted path through imports
        dotted = self.dotted(func, entry)
        if dotted is not None:
            info = self._find_by_dotted(dotted)
            if info is not None:
                return info
        # bare name in the same module
        if isinstance(func, ast.Name) and entry.module is not None:
            info = self.module_funcs.get((entry.module, func.id))
            if info is not None:
                return info
        # a method name unique across the whole project
        if isinstance(func, ast.Attribute):
            candidates = self.methods_by_name.get(func.attr, [])
            if len(candidates) == 1:
                return candidates[0]
        return None

    def resolve_ref(self, node: ast.AST, entry: FileEntry,
                    class_name: Optional[str]) -> Optional[FunctionInfo]:
        """Resolve a callable *reference* (a name passed around, not a
        call site) with the same heuristic stack as :meth:`resolve_call`.

        Additionally resolves a dotted *class* path to its ``__call__``
        method, so callable instances (event-bus subscribers, pool
        payload objects) land on the code that actually runs.
        """
        if isinstance(node, ast.Name) and entry.module is not None:
            info = self.module_funcs.get((entry.module, node.id))
            if info is not None:
                return info
        dotted = self.dotted(node, entry)
        if dotted is not None:
            info = self.resolve_ref_dotted(dotted)
            if info is not None:
                return info
        if isinstance(node, ast.Attribute):
            if (isinstance(node.value, ast.Name) and node.value.id == "self"
                    and class_name is not None and entry.module is not None):
                info = self.methods.get((entry.module, class_name, node.attr))
                if info is not None:
                    return info
            candidates = self.methods_by_name.get(node.attr, [])
            if len(candidates) == 1:
                return candidates[0]
        return None

    def resolve_ref_dotted(self, dotted: str) -> Optional[FunctionInfo]:
        """Resolve a dotted path to a function, method, or — when the
        path names a class — that class's ``__call__`` method."""
        info = self._find_by_dotted(dotted)
        if info is not None:
            return info
        return self._find_by_dotted(dotted + ".__call__")

    def _find_by_dotted(self, dotted: str) -> Optional[FunctionInfo]:
        parts = dotted.split(".")
        for split in range(len(parts) - 1, 0, -1):
            module = "/".join(parts[:split]) + ".py"
            if module not in self.by_module:
                continue
            rest = parts[split:]
            if len(rest) == 1:
                return self.module_funcs.get((module, rest[0]))
            if len(rest) == 2:
                return self.methods.get((module, rest[0], rest[1]))
        return None
