"""``--jobs N``: fan the analysis across a process pool, deterministically.

Interprocedural passes need the *whole* project index (summaries flow
across files), so the unit of sharding is not "which files to analyze"
but "which files to report": every worker rebuilds the full index from
the parent's (path, source) pairs, runs every pass, and emits only the
findings belonging to its bucket of files.  The parent concatenates the
buckets and re-sorts — byte-identical to a serial run by construction,
which ``test_schedflow_self`` locks in.

Buckets are formed by dealing the name-sorted file list round-robin,
and each worker returns a SHA-256 over its sources so the parent can
detect a worker that analyzed stale text (e.g. a file rewritten
mid-run) instead of silently merging findings from two different
snapshots.

This module is itself worker-pool code, so it is the first consumer of
the SF401—SF406 rules it ships: ``_analyze_bucket`` is a top-level
picklable function (SF404), takes everything it needs from its payload
(SF406), writes no module state (SF401), and the parent merges by name
sort, never completion order (SF402).
"""

from __future__ import annotations

import hashlib
import multiprocessing
from typing import Dict, Iterable, List, Optional, Tuple

from repro.devtools.schedlint import Finding
from repro.devtools.schedflow.engine import analyze_project
from repro.devtools.schedflow.project import ProjectIndex

__all__ = ["analyze_paths_jobs", "bucketize"]

#: one finding, flattened for the trip back through the pool
_Row = Tuple[str, int, int, str, str, int]

#: (all sources, this worker's bucket, sorted rule selection)
_Payload = Tuple[List[Tuple[str, str]], List[str], Optional[List[str]]]


def bucketize(files: Iterable[str], jobs: int) -> List[List[str]]:
    """Deal the name-sorted ``files`` round-robin into ``jobs`` buckets.

    Sorting first makes the bucket assignment a pure function of the
    file set, so reruns (and the hash check) are stable.
    """
    buckets: List[List[str]] = [[] for _ in range(max(1, jobs))]
    for position, path in enumerate(sorted(set(files))):
        buckets[position % len(buckets)].append(path)
    return [bucket for bucket in buckets if bucket]


def _sources_digest(sources: List[Tuple[str, str]]) -> str:
    """Content hash over (path, source) pairs, order-sensitive."""
    digest = hashlib.sha256()
    for path, source in sources:
        digest.update(path.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(source.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def _analyze_bucket(payload: _Payload) -> Tuple[str, List[_Row]]:
    """Pool entrypoint: analyze the full project, report one bucket.

    ``payload`` is ``(sources, bucket, select)`` with ``sources`` the
    complete (path, source) list and ``bucket`` the paths this worker
    reports on.  Returns ``(digest, rows)`` — plain tuples, because
    pool results must be picklable data, not live objects.
    """
    sources, bucket, select = payload
    index = ProjectIndex()
    for path, source in sources:
        index.add_source(source, path)
    findings = analyze_project(index, select=select, paths=bucket)
    rows: List[_Row] = [
        (f.path, f.line, f.col, f.code, f.message, f.end_line)
        for f in findings]
    return _sources_digest(sources), rows


def analyze_paths_jobs(paths: Iterable[str], jobs: int,
                       select: Optional[Iterable[str]] = None,
                       ) -> Tuple[List[Finding], Dict[str, List[str]]]:
    """Analyze ``paths`` with ``jobs`` worker processes.

    Returns ``(findings, source_lines)`` where ``source_lines`` feeds
    the baseline fingerprinting exactly as the serial path builds it.
    Raises :class:`RuntimeError` if any worker's content hash disagrees
    with the parent's snapshot.
    """
    index = ProjectIndex.load(paths)
    sources = [(entry.path, entry.source) for entry in index.entries]
    sources.extend(
        (centry.path, centry.source) for centry in index.centries)
    sources.sort()  # digest and bucketing are order-sensitive
    source_lines = {path: source.splitlines() for path, source in sources}
    expected = _sources_digest(sources)
    select_list = sorted(select) if select is not None else None

    buckets = bucketize((path for path, _ in sources), jobs)
    if len(buckets) <= 1:
        findings = analyze_project(index, select=select)
        return findings, source_lines

    payloads = [(sources, bucket, select_list) for bucket in buckets]
    with multiprocessing.Pool(len(buckets)) as pool:
        results = pool.map(_analyze_bucket, payloads)

    merged: List[Finding] = []
    for digest, rows in results:
        if digest != expected:
            raise RuntimeError(
                "schedflow --jobs: worker analyzed different sources "
                "(content hash mismatch)")
        for path, line, col, code, message, end_line in rows:
            merged.append(
                Finding(path, line, col, code, message, end_line=end_line))
    merged.sort(key=Finding.sort_key)
    return merged, source_lines
