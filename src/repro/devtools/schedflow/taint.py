"""SF1xx: interprocedural determinism-taint analysis.

Host time, entropy, and environment reads are *sources*; simulator state
is the *sink*.  Taint values are sets of origins — the literal
``"host"`` for a source read, or ``("param", i)`` for "whatever the
caller passed as parameter ``i``" — so one pass over a function yields
both its findings and its summary:

* ``returns_host`` / ``returns_params`` — what the return value carries,
* ``params_to_state`` — parameters that end up written into simulator
  state somewhere downstream.

Summaries are iterated over the call graph to a fixed point, then a
final emission pass reports:

* **SF101** — a host-tainted value assigned to an object attribute in a
  state module, or passed to a function whose summary says the
  parameter reaches state.
* **SF102** — a host-tainted value handed to the simulator's event API
  (a resolved callee under ``repro/sim/``, or the well-known scheduling
  entry points ``at``/``after``/``schedule``/``post``).

Comparisons sanitize: ``if os.environ.get("REPRO_SCHEDSAN"):`` is the
sanctioned config-gate idiom and produces a boolean, not a timestamp.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.devtools.schedlint import Finding
from repro.devtools.schedlint.rules import _WALL_CLOCK
from repro.devtools.schedflow.cfg import build_cfg
from repro.devtools.schedflow.dataflow import solve_forward
from repro.devtools.schedflow.project import FunctionInfo, ProjectIndex

__all__ = ["TaintPass"]

Origin = object  # "host" | ("param", int)
Origins = FrozenSet[Origin]
EMPTY: Origins = frozenset()
HOST: Origins = frozenset(["host"])

#: modules whose object attributes *are* simulator state
STATE_MODULES = (
    "repro/core/", "repro/cpu/", "repro/smp/", "repro/sim/",
    "repro/schedulers/", "repro/sync/", "repro/threads/", "repro/hsfq.py",
)

#: extra sources beyond schedlint's wall-clock table
_ENV_SOURCES = ("os.environ", "os.getenv", "os.environb")

#: builtins whose result does not carry its arguments' taint
_SANITIZING_CALLS = {"len", "bool", "isinstance", "issubclass", "id",
                     "hash", "type", "callable", "repr"}

#: unresolved method names that enter the simulator's event machinery
_SIM_API_NAMES = {"at", "after", "schedule", "post"}


class _Summary:
    __slots__ = ("returns_host", "returns_params", "params_to_state")

    def __init__(self) -> None:
        self.returns_host = False
        self.returns_params: Set[int] = set()
        self.params_to_state: Set[int] = set()

    def snapshot(self) -> Tuple[bool, Tuple[int, ...], Tuple[int, ...]]:
        return (self.returns_host, tuple(sorted(self.returns_params)),
                tuple(sorted(self.params_to_state)))


class TaintPass:
    """Run with :meth:`run`; yields SF101/SF102 findings."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self.summaries: Dict[str, _Summary] = {
            qname: _Summary() for qname in index.functions}

    def run(self) -> Iterator[Finding]:
        """Iterate summaries to a fixed point, then emit findings."""
        # fixed point over summaries, then one emitting pass
        for _ in range(12):
            before = {q: s.snapshot() for q, s in self.summaries.items()}
            for info in self.index.functions.values():
                self._analyze(info, emit=None)
            if {q: s.snapshot() for q, s in self.summaries.items()} == before:
                break
        findings: List[Finding] = []
        for info in self.index.functions.values():
            self._analyze(info, emit=findings)
        return iter(findings)

    # --- per-function analysis -------------------------------------------

    def _analyze(self, info: FunctionInfo,
                 emit: Optional[List[Finding]]) -> None:
        summary = self.summaries[info.qname]
        init: Dict[str, object] = {
            name: frozenset([("param", i)])
            for i, name in enumerate(info.params)}
        walker = _FunctionWalker(self, info, summary, emit)
        cfg = build_cfg(info.node)
        solve_forward(cfg, init, walker.transfer,
                      join=lambda a, b: a | b,
                      top=HOST | frozenset(
                          ("param", i) for i in range(len(info.params))))

    # --- shared helpers ---------------------------------------------------

    def is_source(self, dotted: Optional[str]) -> bool:
        """True when the dotted path is a host time/entropy/env read."""
        if dotted is None:
            return False
        if dotted in _WALL_CLOCK:
            return True
        return any(dotted == src or dotted.startswith(src + ".")
                   for src in _ENV_SOURCES)


class _FunctionWalker:
    """Transfer function + sink detection for one function."""

    def __init__(self, owner: TaintPass, info: FunctionInfo,
                 summary: _Summary, emit: Optional[List[Finding]]) -> None:
        self.owner = owner
        self.info = info
        self.summary = summary
        self.emit = emit

    # --- findings ---------------------------------------------------------

    def _report(self, node: ast.AST, code: str, message: str) -> None:
        if self.emit is None:
            return
        line = getattr(node, "lineno", 1)
        self.emit.append(Finding(
            self.info.entry.path, line, getattr(node, "col_offset", 0),
            code, message,
            end_line=getattr(node, "end_lineno", None) or line))

    def _in_state_module(self) -> bool:
        return self.info.entry.in_module(*STATE_MODULES)

    # --- expression evaluation -------------------------------------------

    def origins(self, node: Optional[ast.AST], env: Dict[str, object]) -> Origins:
        if node is None or isinstance(node, (ast.Constant, ast.Lambda)):
            return EMPTY
        if isinstance(node, ast.Name):
            val = env.get(node.id, EMPTY)
            return val if isinstance(val, frozenset) else EMPTY
        if isinstance(node, ast.Compare):
            # comparisons sanitize (config gates, clamps); still visit
            # operands so call-argument sinks inside them are checked
            self.origins(node.left, env)
            for comparator in node.comparators:
                self.origins(comparator, env)
            return EMPTY
        if isinstance(node, ast.Call):
            return self._call_origins(node, env)
        if isinstance(node, ast.Attribute):
            # os.environ itself is a source object
            if self.owner.is_source(self.owner.index.dotted(node, self.info.entry)):
                return HOST
            return self.origins(node.value, env)
        if isinstance(node, ast.Subscript):
            # os.environ["X"] reads the host environment
            if self.owner.is_source(
                    self.owner.index.dotted(node.value, self.info.entry)):
                return HOST
            return self.origins(node.value, env)
        if isinstance(node, ast.Starred):
            return self.origins(node.value, env)
        # generic: union over child expressions
        out: Origins = EMPTY
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                out |= self.origins(child, env)
        return out

    def _call_origins(self, call: ast.Call, env: Dict[str, object]) -> Origins:
        index = self.owner.index
        entry = self.info.entry
        dotted = index.dotted(call.func, entry)
        arg_origins = [self.origins(arg, env) for arg in call.args]
        for keyword in call.keywords:
            arg_origins.append(self.origins(keyword.value, env))
        combined: Origins = EMPTY
        for origins in arg_origins:
            combined |= origins

        if self.owner.is_source(dotted):
            return HOST

        callee = index.resolve_call(call, entry, self.info.class_name)
        if callee is not None:
            self._check_callee_sinks(call, callee, arg_origins)
            summary = self.owner.summaries.get(callee.qname)
            if summary is None:
                return combined
            result: Origins = HOST if summary.returns_host else EMPTY
            for param_index in summary.returns_params:
                origin = self._arg_for_param(call, callee, param_index,
                                             arg_origins)
                if origin is not None:
                    result |= origin
            return result

        # unresolved call: check the well-known simulator entry points,
        # then propagate the union of arguments (min/max/int/float/...)
        func = call.func
        if (isinstance(func, ast.Attribute) and func.attr in _SIM_API_NAMES
                and "host" in combined and self._in_state_module()):
            self._report(call, "SF102",
                         "host-tainted value passed to simulator event API "
                         "%r; simulated time comes from the engine, never "
                         "the host clock" % func.attr)
        if isinstance(func, ast.Name) and func.id in _SANITIZING_CALLS:
            return EMPTY
        return combined

    def _arg_for_param(self, call: ast.Call, callee: FunctionInfo,
                       param_index: int,
                       arg_origins: List[Origins]) -> Optional[Origins]:
        """Origins of the argument bound to ``callee.params[param_index]``."""
        offset = 0
        if callee.is_method and isinstance(call.func, ast.Attribute):
            offset = 1  # self is bound by the attribute access
        positional = param_index - offset
        if 0 <= positional < len(call.args):
            return arg_origins[positional]
        if param_index < len(callee.params):
            wanted = callee.params[param_index]
            for keyword_index, keyword in enumerate(call.keywords):
                if keyword.arg == wanted:
                    return arg_origins[len(call.args) + keyword_index]
        return None

    def _check_callee_sinks(self, call: ast.Call, callee: FunctionInfo,
                            arg_origins: List[Origins]) -> None:
        summary = self.owner.summaries.get(callee.qname)
        if summary is None:
            return
        for param_index in sorted(summary.params_to_state):
            origin = self._arg_for_param(call, callee, param_index,
                                         arg_origins)
            if origin is None:
                continue
            if "host" in origin:
                self._report(call, "SF101",
                             "host-tainted value flows through %s() into "
                             "simulator state" % callee.name)
            for item in origin:
                if isinstance(item, tuple):
                    self.summary.params_to_state.add(item[1])
        if callee.entry.in_module("repro/sim/"):
            for origins in arg_origins:
                if "host" in origins:
                    self._report(call, "SF102",
                                 "host-tainted value passed to %s() in the "
                                 "simulation engine" % callee.name)
                    break

    # --- statement transfer ----------------------------------------------

    def transfer(self, stmt: ast.stmt, fact: Dict[str, object]) -> Dict[str, object]:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = getattr(stmt, "value", None)
            origins = self.origins(value, fact) if value is not None else EMPTY
            targets = (stmt.targets if isinstance(stmt, ast.Assign)
                       else [stmt.target])
            for target in targets:
                self._assign(target, origins, fact,
                             augment=isinstance(stmt, ast.AugAssign))
        elif isinstance(stmt, ast.Return):
            origins = self.origins(stmt.value, fact)
            if "host" in origins:
                self.summary.returns_host = True
            for item in origins:
                if isinstance(item, tuple):
                    self.summary.returns_params.add(item[1])
        elif isinstance(stmt, ast.For):
            origins = self.origins(stmt.iter, fact)
            self._assign(stmt.target, origins, fact)
        elif isinstance(stmt, (ast.If, ast.While)):
            self.origins(stmt.test, fact)
        elif isinstance(stmt, (ast.Expr, ast.Assert, ast.Raise)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.origins(child, fact)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.origins(item.context_expr, fact)
        return fact

    def _assign(self, target: ast.AST, origins: Origins,
                fact: Dict[str, object], augment: bool = False) -> None:
        if isinstance(target, ast.Name):
            if augment:
                prev = fact.get(target.id, EMPTY)
                origins = origins | (prev if isinstance(prev, frozenset)
                                     else EMPTY)
            fact[target.id] = origins
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, origins, fact)
        elif isinstance(target, ast.Attribute):
            self._attribute_sink(target, origins)
        elif isinstance(target, ast.Subscript):
            if isinstance(target.value, ast.Attribute):
                self._attribute_sink(target.value, origins)
            elif isinstance(target.value, ast.Name):
                prev = fact.get(target.value.id, EMPTY)
                fact[target.value.id] = origins | (
                    prev if isinstance(prev, frozenset) else EMPTY)

    def _attribute_sink(self, target: ast.Attribute, origins: Origins) -> None:
        if not self._in_state_module():
            return
        if "host" in origins:
            self._report(target, "SF101",
                         "host-tainted value stored in simulator state "
                         "attribute %r" % target.attr)
        for item in origins:
            if isinstance(item, tuple):
                self.summary.params_to_state.add(item[1])
