"""SARIF 2.1.0 serialization for GitHub inline PR annotations.

Only the subset the ``codeql-action/upload-sarif`` ingester actually
reads is emitted: one run, the rule catalogue, and one result per
finding with a physical location.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, Tuple

from repro.devtools.schedlint import Finding

__all__ = ["to_sarif", "write_sarif"]

_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
           "Schemata/sarif-schema-2.1.0.json")


def to_sarif(findings: Iterable[Finding],
             rules: Dict[str, Tuple[str, str]]) -> dict:
    """Build the SARIF document dict for ``findings``."""
    results = []
    for finding in findings:
        results.append({
            "ruleId": finding.code,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path.replace("\\", "/")},
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col + 1,
                        "endLine": finding.end_line,
                    },
                },
            }],
        })
    catalogue = [
        {
            "id": code,
            "name": name,
            "shortDescription": {"text": summary},
            "defaultConfiguration": {"level": "error"},
        }
        for code, (name, summary) in sorted(rules.items())
    ]
    return {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "schedflow",
                "rules": catalogue,
            }},
            "results": results,
        }],
    }


def write_sarif(path: str, findings: Iterable[Finding],
                rules: Dict[str, Tuple[str, str]]) -> None:
    """Serialize ``findings`` as SARIF 2.1.0 JSON to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_sarif(findings, rules), handle, indent=2, sort_keys=True)
        handle.write("\n")
