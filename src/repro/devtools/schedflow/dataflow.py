"""A small forward fixed-point solver over :class:`~repro.devtools.schedflow.cfg.Cfg`.

Facts are plain dicts from variable name to a pass-specific lattice
element; the solver only needs the pass to say how to ``join`` two
elements and how to ``transfer`` a fact across one statement.  A visit
cap with widening-to-top guards against lattices of unbounded height
(the unit lattice can climb ``time^1, time^2, ...`` in a degenerate
loop like ``x = x * SECOND``).
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, List

from repro.devtools.schedflow.cfg import Cfg

__all__ = ["solve_forward"]

#: After this many visits to one node, changed variables widen straight
#: to ``top`` so the iteration terminates on any lattice.
_VISIT_CAP = 16


def _join_facts(a: Dict[str, object], b: Dict[str, object],
                join: Callable[[object, object], object]) -> Dict[str, object]:
    out = dict(a)
    for key, val in b.items():
        out[key] = join(out[key], val) if key in out else val
    return out


def solve_forward(
    cfg: Cfg,
    init: Dict[str, object],
    transfer: Callable[[ast.stmt, Dict[str, object]], Dict[str, object]],
    join: Callable[[object, object], object],
    top: object,
) -> List[Dict[str, object]]:
    """Run to fixed point; returns the *in*-fact of every CFG node.

    ``transfer`` must return a fresh dict (it may start from a copy of
    its input).  ``top`` is the absorbing element used for widening.
    """
    n = len(cfg.nodes)
    if n == 0:
        return []
    preds = cfg.preds()
    # Entry nodes are the ones with no predecessors (node 0, plus coarse
    # Try wiring can produce none others in practice).
    facts_in: List[Dict[str, object]] = [dict(init) if not preds[i] else {}
                                         for i in range(n)]
    facts_out: List[Dict[str, object]] = [{} for _ in range(n)]
    visits = [0] * n
    worklist = list(range(n))
    while worklist:
        node = worklist.pop(0)
        visits[node] += 1
        fact = dict(init) if not preds[node] else {}
        for pred in preds[node]:
            fact = _join_facts(fact, facts_out[pred], join)
        facts_in[node] = fact
        new_out = transfer(cfg.nodes[node], dict(fact))
        if visits[node] > _VISIT_CAP:
            old = facts_out[node]
            new_out = {key: (val if old.get(key) == val else top)
                       for key, val in new_out.items()}
        if new_out != facts_out[node]:
            facts_out[node] = new_out
            for succ in cfg.succs[node]:
                if succ not in worklist:
                    worklist.append(succ)
    return facts_in
