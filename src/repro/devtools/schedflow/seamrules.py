"""SF501–SF505: static coherence analysis of the Python↔C engine seam.

The compiled engine (``repro/core/_sfqc.c``) re-implements the SFQ hot
path against the same arena columns the pure-python functions in
``repro/core/sfq.py`` mutate.  The dynamic enginediff gate catches
divergence only on the workloads it replays; this pass proves a class of
divergences *statically* by joining the C structural view
(:mod:`repro.devtools.schedflow.cext`) against the Python project index:

SF501 ``cview-layout-mismatch``
    The C ``CV_*``/``ST_*``/``CH_*`` enums must agree — member for
    member, value for value — with the Python index constants
    (``_CV_*``, ``_VT``…, ``_CH_*``), and the literal ``_cview`` /
    ``_state`` / chain-tuple layouts must match the C ``*_LEN``
    sentinels.

SF502 ``pure-only-mutation``
    Every arena-column mutation a pure hot function performs must have a
    compiled-path counterpart in its C twin's call closure — a write the
    C engine skips is exactly the drift that breaks byte-identity.

SF503 ``turbo-bailout-gap``
    A C turbo entry point that can bail out to a Python method which
    checks an observability gate (``BUS.active``, ``self.tracer``) must
    re-check that same gate itself, or traced runs silently take the
    fast path.

SF504 ``capi-hygiene``
    Early-error ``return``/``goto`` paths must not leak owned
    references, results of allocating calls must be NULL-checked before
    first use, and borrowed references must not escape into reference-
    stealing sinks (moves within the same container are the one
    sanctioned idiom).

SF505 ``format-mismatch``
    ``PyArg_ParseTuple*`` / ``Py_BuildValue`` format units must agree in
    arity and C type with the variables they bind.

Suppressions in C files use comment form
(``/* seamcheck: disable=SF504 -- why */``; ``schedflow:`` also
accepted) on the flagged line or alone on the line above.  Findings that
land in Python files go through the standard schedflow suppression
machinery.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.devtools.schedlint import Finding, LintError
from repro.devtools.schedflow import cext
from repro.devtools.schedflow.project import FunctionInfo, ProjectIndex

__all__ = ["SeamPass"]

#: C parameter/local names that directly denote an arena column
_COLUMN_NAMES = {
    "start_col": "start", "fin_col": "fin", "run_col": "run",
    "ver_col": "ver", "seq_col": "seq", "ent_col": "ent",
    "state": "state", "heap": "heap",
}

#: enum-member suffix -> normalized container key (CV_START, CH_START...)
_SUFFIX_KEYS = {
    "START": "start", "FIN": "fin", "RUN": "run", "VER": "ver",
    "SEQ": "seq", "ENT": "ent", "ENTITY": None, "STATE": "state",
    "HEAP": "heap",
}

#: Python ``state[...]`` index constants -> sub-key
_STATE_INDEX = {"_VT": "vt", "_MF": "mf", "_SRV": "srv", "_RC": "rc"}

#: C ``col_store(state, ST_X, ...)`` index members -> sub-key
_C_STATE_INDEX = {"ST_VT": "vt", "ST_MF": "mf", "ST_SRV": "srv",
                  "ST_RC": "rc"}

#: arena attribute names (``arena.start[slot] = ...``)
_ARENA_ATTRS = {"start", "fin", "run", "ver", "seq", "ent"}

#: enum prefix -> Python attribute whose list-literal length must match
#: the ``<prefix>_LEN`` sentinel
_LAYOUT_ATTRS = {"CV": "_cview", "ST": "_state"}

#: enum prefix -> Python function whose appended tuple length must match
_LAYOUT_TUPLES = {"CH": "build_ancestor_chain"}

#: CPython calls returning a NEW reference (prefix match)
_NEW_REF_PREFIXES = (
    "PyObject_GetAttr", "PyObject_GetItem", "PyObject_Call",
    "PyObject_Str", "PyObject_Repr", "PyObject_Bytes", "PyObject_Dir",
    "PyNumber_", "PySequence_Tuple", "PySequence_List",
    "PySequence_GetSlice", "PySequence_Concat", "PySequence_Repeat",
    "PyLong_From", "PyFloat_From", "PyBool_FromLong", "PyUnicode_",
    "PyBytes_From", "PyDict_New", "PyDict_Copy", "PyDict_Items",
    "PyDict_Keys", "PyDict_Values", "PyList_New", "PyList_GetSlice",
    "PyList_AsTuple", "PyTuple_New", "PyTuple_Pack", "PyTuple_GetSlice",
    "PySet_New", "PyFrozenSet_New", "Py_BuildValue", "PyIter_Next",
    "PyImport_Import", "PyModule_Create",
)

#: CPython calls returning a BORROWED reference
_BORROWED_CALLS = frozenset((
    "PyList_GET_ITEM", "PyList_GetItem", "PyTuple_GET_ITEM",
    "PyTuple_GetItem", "PyDict_GetItem", "PyDict_GetItemWithError",
    "PyDict_GetItemString", "PySys_GetObject",
))

#: (callee, zero-based stolen-argument index) for the base C API
_BASE_STEALERS = {
    ("PyList_SetItem", 2), ("PyList_SET_ITEM", 2),
    ("PyTuple_SetItem", 2), ("PyTuple_SET_ITEM", 2),
    ("PyModule_AddObject", 2),
}

#: immortal singletons we never track
_SINGLETONS = frozenset(("Py_None", "Py_True", "Py_False", "NULL"))

#: ``PyArg_Parse*`` format unit -> acceptable destination C types
_FMT_PARSE: Dict[str, Tuple[str, ...]] = {
    "O": ("PyObject *",), "S": ("PyObject *",), "U": ("PyObject *",),
    "n": ("Py_ssize_t",), "i": ("int",), "I": ("unsigned int",),
    "h": ("short",), "H": ("unsigned short",), "l": ("long",),
    "k": ("unsigned long",), "L": ("long long", "PY_LONG_LONG"),
    "K": ("unsigned long long",), "d": ("double",), "f": ("float",),
    "s": ("char *",), "z": ("char *",), "y": ("char *",),
    "p": ("int",), "b": ("unsigned char",), "B": ("unsigned char",),
    "c": ("char",), "C": ("int",),
}

#: ``Py_BuildValue`` format unit -> acceptable source C types
_FMT_BUILD: Dict[str, Tuple[str, ...]] = {
    "O": ("PyObject *",), "S": ("PyObject *",), "N": ("PyObject *",),
    "n": ("Py_ssize_t",), "i": ("int",), "I": ("unsigned int",),
    "h": ("short",), "H": ("unsigned short",), "l": ("long",),
    "k": ("unsigned long",), "L": ("long long", "PY_LONG_LONG"),
    "K": ("unsigned long long",), "d": ("double",), "f": ("float",),
    "s": ("char *",), "z": ("char *",), "b": ("char",), "B": ("char",),
    "c": ("char",), "C": ("int",),
}

_PARSE_CALLS = frozenset(("PyArg_ParseTuple", "PyArg_ParseTupleAndKeywords",
                          "PyArg_Parse"))

#: units that consume a second trailing argument
_TWO_ARG_UNITS = frozenset(("O!", "O&", "s#", "z#", "y#", "u#", "es", "et"))


def _parse_format(fmt: str, build: bool) -> Optional[List[str]]:
    """Format string -> per-argument unit list (None: not analyzable)."""
    table = _FMT_BUILD if build else _FMT_PARSE
    units: List[str] = []
    index = 0
    while index < len(fmt):
        char = fmt[index]
        if char in ":;":
            break
        if char in "()[]{}|$, \t":
            index += 1
            continue
        unit = char
        if index + 1 < len(fmt) and fmt[index:index + 2] in _TWO_ARG_UNITS:
            unit = fmt[index:index + 2]
            index += 1
        if unit == "O!":
            units.extend(["*", "O"])  # (type object, PyObject *)
        elif unit == "O&":
            units.extend(["*", "*"])  # (converter, anything)
        elif unit in ("s#", "z#", "y#", "u#"):
            units.extend([unit[0], "n"])
        elif unit in ("es", "et"):
            return None
        elif unit in table:
            units.append(unit)
        else:
            return None  # unknown unit: skip the whole call
        index += 1
    return units


class _CFacts:
    """Per-C-function normalized mutation facts plus inferred summaries."""

    def __init__(self, cmod: cext.CModule) -> None:
        self.cmod = cmod
        self._mutations: Dict[str, Set[str]] = {}
        self.stealers: Dict[str, Set[int]] = {}
        self.null_tolerant: Dict[str, Set[int]] = {}
        self._infer_param_behaviour()

    # --- parameter behaviour inference -----------------------------------

    def _infer_param_behaviour(self) -> None:
        """Two rounds: which params are stolen / NULL-tolerated."""
        for name, fn in self.cmod.functions.items():
            tolerant: Set[int] = set()
            for position, (_ptype, pname) in enumerate(fn.params):
                for stmt in fn.statements:
                    texts = [t.text for t in stmt.tokens]
                    for at, text in enumerate(texts):
                        if text == pname and \
                                texts[at + 1:at + 3] == ["==", "NULL"]:
                            tolerant.add(position)
            if tolerant:
                self.null_tolerant[name] = tolerant
        stealers = dict(self.stealers)
        for _round in range(2):
            for name, fn in self.cmod.functions.items():
                increffed = {
                    call.arg_ids()[0]
                    for call in fn.calls
                    if call.name == "Py_INCREF" and call.args
                    and call.arg_ids()[0] is not None}
                stolen: Set[int] = stealers.get(name, set())
                for call in fn.calls:
                    for arg_at, arg_id in enumerate(call.arg_ids()):
                        if arg_id is None or arg_id in increffed:
                            continue
                        if self._steals(call.name, arg_at, stealers):
                            for position, (_t, pname) in enumerate(fn.params):
                                if pname == arg_id:
                                    stolen.add(position)
                if stolen:
                    stealers[name] = stolen
        self.stealers = stealers

    def _steals(self, callee: str, arg_at: int,
                table: Dict[str, Set[int]]) -> bool:
        if (callee, arg_at) in _BASE_STEALERS:
            return True
        return arg_at in table.get(callee, ())

    def steals(self, callee: str, arg_at: int) -> bool:
        """True when ``callee`` steals a reference at position ``arg_at``."""
        return self._steals(callee, arg_at, self.stealers)

    def tolerates_null(self, callee: str, arg_at: int) -> bool:
        """True when ``callee`` explicitly handles NULL at ``arg_at``."""
        return arg_at in self.null_tolerant.get(callee, ())

    # --- column provenance and mutation facts ----------------------------

    def _provenance(self, fn: cext.CFunction) -> Dict[str, str]:
        """Map local names to column keys via names and CV_/CH_ loads."""
        prov: Dict[str, str] = {}
        for name in fn.locals:
            if name in _COLUMN_NAMES:
                prov[name] = _COLUMN_NAMES[name]
        for stmt in fn.statements:
            tokens = stmt.tokens
            if len(tokens) < 3 or tokens[0].kind != "id":
                continue
            eq = 1
            if tokens[1].kind == "id" and tokens[1].text == tokens[0].text:
                continue
            target = tokens[0].text
            if tokens[eq].text != "=":
                continue  # `PyObject *x = ...` declarations: pass below
            for token in tokens[2:]:
                if token.kind != "id":
                    continue
                for prefix in ("CV_", "CH_"):
                    if token.text.startswith(prefix):
                        suffix = token.text[len(prefix):]
                        key = _SUFFIX_KEYS.get(suffix)
                        if key:
                            prov[target] = key
        # declarations with initializers: `PyObject *state = COL(..., CV_X)`
        for stmt in fn.statements:
            texts = [t.text for t in stmt.tokens]
            if "=" not in texts:
                continue
            eq = texts.index("=")
            if eq == 0 or stmt.tokens[eq - 1].kind != "id":
                continue
            target = stmt.tokens[eq - 1].text
            for text in texts[eq + 1:]:
                for prefix in ("CV_", "CH_"):
                    if text.startswith(prefix):
                        key = _SUFFIX_KEYS.get(text[len(prefix):])
                        if key:
                            prov[target] = key
        return prov

    def mutations(self, root: str) -> Set[str]:
        """Normalized mutation keys over ``root``'s call closure."""
        closure = self.call_closure(root)
        keys: Set[str] = set()
        for name in closure:
            keys |= self._function_mutations(name)
        return keys

    def call_closure(self, root: str) -> List[str]:
        """``root`` plus every same-file function it transitively calls."""
        seen: List[str] = []
        stack = [root]
        while stack:
            name = stack.pop()
            if name in seen or name not in self.cmod.functions:
                continue
            seen.append(name)
            for call in self.cmod.functions[name].calls:
                if call.name in self.cmod.functions:
                    stack.append(call.name)
        return seen

    def _function_mutations(self, name: str) -> Set[str]:
        cached = self._mutations.get(name)
        if cached is not None:
            return cached
        fn = self.cmod.functions[name]
        prov = self._provenance(fn)
        keys: Set[str] = set()
        for call in fn.calls:
            ids = call.arg_ids()
            first = ids[0] if ids else None
            container = prov.get(first) if first else None
            if call.name in ("col_store", "PyList_SetItem",
                             "PyList_SET_ITEM"):
                if container == "state" and len(ids) >= 2:
                    index_id = ids[1]
                    sub = _C_STATE_INDEX.get(index_id or "")
                    if sub:
                        keys.add("st:" + sub)
                elif container and container not in ("heap",):
                    keys.add("col:" + container)
            elif call.name in ("PyList_Append",):
                if container == "heap":
                    keys.add("heap:push")
            elif call.name in ("PyList_SetSlice", "PySequence_DelItem"):
                if container == "heap":
                    keys.add("heap:pop")
        self._mutations[name] = keys
        return keys

    # --- gate and bailout facts ------------------------------------------

    def tokens_of_closure(self, root: str) -> Iterator[cext.Token]:
        """Every body token across ``root``'s call closure."""
        for name in self.call_closure(root):
            for token in self.cmod.functions[name].body:
                yield token

    def gates_checked(self, root: str) -> Set[str]:
        """Which runtime gates the closure re-checks (active/tracer)."""
        gates: Set[str] = set()
        for token in self.tokens_of_closure(root):
            if token.kind == "id":
                literal = self.cmod.intern_strings.get(token.text)
                if literal == "active" or token.text == "str_active":
                    gates.add("active")
                if literal == "tracer" or token.text == "str_tracer":
                    gates.add("tracer")
            elif token.kind == "str":
                if token.text == '"active"':
                    gates.add("active")
                elif token.text == '"tracer"':
                    gates.add("tracer")
        return gates

    def bailout_attrs(self, root: str) -> Set[str]:
        """Python attribute names the closure may call back into."""
        attrs: Set[str] = set()
        for name in self.call_closure(root):
            for call in self.cmod.functions[name].calls:
                for arg in call.args:
                    for token in arg:
                        if token.kind == "id":
                            literal = self.cmod.intern_strings.get(token.text)
                            if literal is not None:
                                attrs.add(literal)
        return attrs


class _PyFacts:
    """Python-side facts: constants, layouts, twins, mutations, gates."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        #: module-level integer constants: name -> (value, path, line)
        self.int_consts: Dict[str, Tuple[int, str, int]] = {}
        #: attribute -> every (list-literal length, path, line) site
        self.layout_lists: Dict[str, List[Tuple[int, str, int]]] = {}
        #: function name -> (max appended-tuple length, path, line)
        self.layout_tuples: Dict[str, Tuple[int, str, int]] = {}
        #: exported twin name -> FunctionInfo (defs and Class.method aliases)
        self.twins: Dict[str, FunctionInfo] = {}
        self._mutation_cache: Dict[str, Set[str]] = {}
        self._collect()

    def _collect(self) -> None:
        for entry in self.index.entries:
            for stmt in entry.tree.body:
                if not isinstance(stmt, ast.Assign):
                    continue
                if len(stmt.targets) != 1 or not isinstance(
                        stmt.targets[0], ast.Name):
                    continue
                name = stmt.targets[0].id
                value = stmt.value
                if isinstance(value, ast.Constant) and \
                        isinstance(value.value, int) and \
                        not isinstance(value.value, bool):
                    self.int_consts.setdefault(
                        name, (value.value, entry.path, stmt.lineno))
                elif (isinstance(value, ast.Attribute)
                      and isinstance(value.value, ast.Name)
                      and entry.module is not None):
                    info = self.index.methods.get(
                        (entry.module, value.value.id, value.attr))
                    if info is not None:
                        self.twins.setdefault(name, info)
            for node in ast.walk(entry.tree):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                    if isinstance(target, ast.Attribute) and \
                            isinstance(node.value, ast.List):
                        self.layout_lists.setdefault(
                            target.attr, []).append(
                            (len(node.value.elts), entry.path, node.lineno))
        for (module, name), info in self.index.module_funcs.items():
            self.twins.setdefault(name, info)
            node = info.node
            for sub in ast.walk(node):
                if (isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr == "append"
                        and len(sub.args) == 1
                        and isinstance(sub.args[0], ast.Tuple)):
                    length = len(sub.args[0].elts)
                    current = self.layout_tuples.get(name)
                    if current is None or length > current[0]:
                        self.layout_tuples[name] = (
                            length, info.entry.path, sub.lineno)

    # --- python-side mutation facts --------------------------------------

    def mutations(self, info: FunctionInfo,
                  depth: int = 0) -> Dict[str, Tuple[int, str]]:
        """Column-mutation facts for ``info``'s body and callee closure.

        Returns key -> (line, path) of the *first* site establishing the
        fact, so SF502 findings anchor on real mutation lines.
        """
        facts: Dict[str, Tuple[int, str]] = {}
        self._walk_function(info, facts, set(), depth)
        return facts

    def _walk_function(self, info: FunctionInfo,
                       facts: Dict[str, Tuple[int, str]],
                       visited: Set[str], depth: int) -> None:
        if info.qname in visited or depth > 4:
            return
        visited.add(info.qname)
        prov = self._py_provenance(info.node)
        for node in ast.walk(info.node):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            for target in targets:
                key = self._subscript_key(target, prov)
                if key is not None:
                    facts.setdefault(key, (node.lineno, info.entry.path))
            if isinstance(node, ast.Call):
                callee = node.func
                if isinstance(callee, ast.Name):
                    if callee.id in ("heappush", "heap_push"):
                        facts.setdefault(
                            "heap:push", (node.lineno, info.entry.path))
                        continue
                    if callee.id in ("heappop", "heap_pop"):
                        facts.setdefault(
                            "heap:pop", (node.lineno, info.entry.path))
                        continue
                resolved = self._resolve(node, info)
                if resolved is not None:
                    self._walk_function(resolved, facts, visited, depth + 1)

    def _resolve(self, call: ast.Call,
                 info: FunctionInfo) -> Optional[FunctionInfo]:
        resolved = self.index.resolve_call(call, info.entry, info.class_name)
        if resolved is not None:
            return resolved
        func = call.func
        # `ClassName.method(...)` inside the defining module
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and info.entry.module is not None):
            return self.index.methods.get(
                (info.entry.module, func.value.id, func.attr))
        return None

    def _py_provenance(self, node: ast.AST) -> Dict[str, str]:
        """var -> column key from ``x = cview[_CV_START]``-style binds."""
        prov = dict(_COLUMN_NAMES)
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Assign) or len(sub.targets) != 1:
                continue
            target = sub.targets[0]
            if not isinstance(target, ast.Name):
                continue
            value = sub.value
            if isinstance(value, ast.Subscript):
                index_name = self._index_name(value)
                if index_name is not None:
                    for prefix in ("_CV_", "_CH_"):
                        if index_name.startswith(prefix):
                            key = _SUFFIX_KEYS.get(index_name[len(prefix):])
                            if key:
                                prov[target.id] = key
            elif isinstance(value, ast.Attribute):
                if value.attr == "_state":
                    prov[target.id] = "state"
                elif value.attr == "_heap":
                    prov[target.id] = "heap"
        return prov

    @staticmethod
    def _index_name(subscript: ast.Subscript) -> Optional[str]:
        index: ast.expr = subscript.slice
        if isinstance(index, ast.Index):  # pragma: no cover - py<3.9 form
            index = index.value  # type: ignore[attr-defined]
        if isinstance(index, ast.Name):
            return index.id
        return None

    def _subscript_key(self, target: ast.expr,
                       prov: Dict[str, str]) -> Optional[str]:
        if not isinstance(target, ast.Subscript):
            return None
        container = target.value
        key: Optional[str] = None
        if isinstance(container, ast.Name):
            key = prov.get(container.id)
        elif isinstance(container, ast.Attribute):
            if container.attr in _ARENA_ATTRS:
                key = container.attr
            elif container.attr == "_state":
                key = "state"
            elif container.attr == "_heap":
                key = "heap"
        if key is None:
            return None
        if key == "state":
            index_name = self._index_name(target)
            sub = _STATE_INDEX.get(index_name or "")
            return ("st:" + sub) if sub else None
        if key == "heap":
            return None  # raw heap-list stores are engine-internal
        return "col:" + key

    # --- gate facts -------------------------------------------------------

    def method_gates(self, attr: str) -> Set[str]:
        """Union of runtime gates every project method ``attr`` checks."""
        gates: Set[str] = set()
        for info in self.index.methods_by_name.get(attr, []):
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Attribute):
                    continue
                if node.attr == "active" and isinstance(node.value, ast.Name) \
                        and "BUS" in node.value.id.upper():
                    gates.add("active")
                elif node.attr == "tracer":
                    gates.add("tracer")
        return gates


class SeamPass:
    """Cross-language engine-coherence rules (SF501–SF505)."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index

    def run(self) -> Iterator[Finding]:
        """Analyze every indexed C file against the Python index."""
        centries = getattr(self.index, "centries", [])
        if not centries:
            return
        pyfacts = _PyFacts(self.index)
        for centry in centries:
            try:
                cmod = cext.extract(centry.source, centry.path)
            except cext.CParseError as exc:
                raise LintError(str(exc)) from exc
            cfacts = _CFacts(cmod)
            findings: List[Finding] = []
            findings.extend(self._sf501(cmod, pyfacts))
            findings.extend(self._sf502(cmod, cfacts, pyfacts))
            findings.extend(self._sf503(cmod, cfacts, pyfacts))
            findings.extend(self._sf504(cmod, cfacts))
            findings.extend(self._sf505(cmod))
            for finding in findings:
                if finding.path == centry.path and \
                        cmod.suppressed(finding.line, finding.code):
                    continue
                yield finding

    # --- SF501: layout agreement -----------------------------------------

    def _sf501(self, cmod: cext.CModule,
               pyfacts: _PyFacts) -> Iterator[Finding]:
        for enum in cmod.enums:
            members = [m for m in enum.members if not m.name.endswith("_LEN")]
            if len(members) < 2:
                continue
            schemes = (
                lambda name: "_" + name,                        # CV_X -> _CV_X
                lambda name: "_" + name.split("_", 1)[-1],      # ST_X -> _X
            )
            best_hits = -1
            best: Optional[List[Tuple[cext.CEnumMember,
                                      Optional[Tuple[int, str, int]]]]] = None
            for scheme in schemes:
                mapped = [(m, pyfacts.int_consts.get(scheme(m.name)))
                          for m in members]
                hits = sum(1 for _m, const in mapped if const is not None)
                if hits > best_hits:
                    best_hits = hits
                    best = mapped
            if best is None or best_hits < 2:
                continue  # not a seam table (no Python counterpart)
            for member, const in best:
                if const is None:
                    yield Finding(
                        cmod.path, member.line, 1, "SF501",
                        "enum member %s has no Python index constant "
                        "counterpart (renamed or removed on the Python "
                        "side?)" % member.name)
                elif member.value is not None and member.value != const[0]:
                    yield Finding(
                        cmod.path, member.line, 1, "SF501",
                        "enum member %s = %d disagrees with Python "
                        "constant at %s:%d (= %d); the engines index "
                        "different columns" % (
                            member.name, member.value, const[1],
                            const[2], const[0]))
            expected = len(members)
            prefix = members[0].name.split("_", 1)[0]
            for member in enum.members:
                if member.name.endswith("_LEN") and \
                        member.value is not None and \
                        member.value != expected:
                    yield Finding(
                        cmod.path, member.line, 1, "SF501",
                        "sentinel %s = %d but the enum has %d mapped "
                        "members" % (member.name, member.value, expected))
            # layout literals are only comparable in the module that
            # defines the matched index constants (other files may reuse
            # the attribute name for unrelated state)
            const_paths = {const[1] for _m, const in best
                           if const is not None}
            attr = _LAYOUT_ATTRS.get(prefix)
            if attr is not None:
                for length, path, line in \
                        pyfacts.layout_lists.get(attr, []):
                    if path in const_paths and length != expected:
                        yield Finding(
                            cmod.path, enum.line, 1, "SF501",
                            "C %s_* layout has %d members but the "
                            "Python %s literal at %s:%d has %d "
                            "elements" % (prefix, expected, attr, path,
                                          line, length))
            builder = _LAYOUT_TUPLES.get(prefix)
            if builder is not None and builder in pyfacts.layout_tuples:
                length, path, line = pyfacts.layout_tuples[builder]
                if length != expected:
                    yield Finding(
                        cmod.path, enum.line, 1, "SF501",
                        "C %s_* layout has %d members but the tuple "
                        "built by %s() at %s:%d has %d elements" % (
                            prefix, expected, builder, path, line, length))

    # --- SF502: pure-only mutations --------------------------------------

    def _sf502(self, cmod: cext.CModule, cfacts: _CFacts,
               pyfacts: _PyFacts) -> Iterator[Finding]:
        for exported, symbol, _line in cmod.method_table:
            info = pyfacts.twins.get(exported)
            if info is None:
                continue
            py_muts = pyfacts.mutations(info)
            if not py_muts:
                continue
            c_muts = cfacts.mutations(symbol)
            if not c_muts:
                continue  # opaque twin (pure trampoline): nothing to compare
            for key in sorted(py_muts):
                if key in c_muts:
                    continue
                line, path = py_muts[key]
                yield Finding(
                    path, line, 1, "SF502",
                    "pure-engine %s mutates %s but compiled twin %s() "
                    "in %s never writes it; the engines will diverge "
                    "on replay" % (
                        exported, _describe_key(key), symbol,
                        cmod.path))

    # --- SF503: turbo bailout completeness -------------------------------

    def _sf503(self, cmod: cext.CModule, cfacts: _CFacts,
               pyfacts: _PyFacts) -> Iterator[Finding]:
        for exported, symbol, _line in cmod.method_table:
            required: Set[str] = set()
            culprits: Dict[str, str] = {}
            for attr in sorted(cfacts.bailout_attrs(symbol)):
                for gate in pyfacts.method_gates(attr):
                    required.add(gate)
                    culprits.setdefault(gate, attr)
            if not required:
                continue
            have = cfacts.gates_checked(symbol)
            fn = cmod.functions.get(symbol)
            line = fn.line if fn is not None else 1
            for gate in sorted(required - have):
                yield Finding(
                    cmod.path, line, 1, "SF503",
                    "turbo entry %s() can bail out to Python method "
                    "%s() which checks the %r gate, but the C fast "
                    "path never re-checks it; gated runs would take "
                    "the turbo path" % (
                        symbol, culprits[gate],
                        "BUS.active" if gate == "active" else gate))

    # --- SF504: C-API hygiene --------------------------------------------

    def _sf504(self, cmod: cext.CModule,
               cfacts: _CFacts) -> Iterator[Finding]:
        for fn in cmod.functions.values():
            for finding in _check_refcounts(cmod, cfacts, fn):
                yield finding

    # --- SF505: format strings -------------------------------------------

    def _sf505(self, cmod: cext.CModule) -> Iterator[Finding]:
        for fn in cmod.functions.values():
            for call in fn.calls:
                build = call.name == "Py_BuildValue"
                if not build and call.name not in _PARSE_CALLS:
                    continue
                fmt_at = next(
                    (at for at, arg in enumerate(call.args)
                     if len(arg) == 1 and arg[0].kind == "str"), None)
                if fmt_at is None:
                    continue
                fmt = call.args[fmt_at][0].text[1:-1]
                units = _parse_format(fmt, build)
                if units is None:
                    continue
                skip = 1 if call.name != "PyArg_ParseTupleAndKeywords" else 2
                values = call.args[fmt_at + skip:]
                if len(values) != len(units):
                    yield Finding(
                        cmod.path, call.line, 1, "SF505",
                        "%s format %r consumes %d argument%s but %d "
                        "are passed" % (
                            call.name, fmt, len(units),
                            "" if len(units) == 1 else "s", len(values)))
                    continue
                table = _FMT_BUILD if build else _FMT_PARSE
                for unit, arg in zip(units, values):
                    if unit == "*":
                        continue
                    var = _format_arg_var(arg, build)
                    if var is None:
                        continue
                    declared = fn.var_type(var)
                    if declared is None:
                        continue
                    accepted = table[unit]
                    if _normalize_type(declared) not in {
                            _normalize_type(a) for a in accepted}:
                        yield Finding(
                            cmod.path, call.line, 1, "SF505",
                            "%s unit %r expects %s but %r is declared "
                            "%s" % (call.name, unit,
                                    " or ".join(accepted), var, declared))


def _describe_key(key: str) -> str:
    """Human-readable description of a normalized mutation key."""
    kind, _sep, name = key.partition(":")
    if kind == "col":
        return "arena column %r" % name
    if kind == "st":
        return "state slot %r" % name.upper()
    if kind == "heap":
        return "the heap (%s)" % name
    return key


def _normalize_type(text: str) -> str:
    return " ".join(text.replace("*", " * ").split())


def _format_arg_var(arg: List[cext.Token], build: bool) -> Optional[str]:
    """The bound variable of one format argument, if identifiable."""
    if build:
        if len(arg) == 1 and arg[0].kind == "id":
            return arg[0].text
        return None
    if len(arg) == 2 and arg[0].text == "&" and arg[1].kind == "id":
        return arg[1].text
    return None


# --- SF504 reference tracking ------------------------------------------------

def _is_new_ref_call(name: str) -> bool:
    return any(name.startswith(prefix) for prefix in _NEW_REF_PREFIXES)


def _check_refcounts(cmod: cext.CModule, cfacts: _CFacts,
                     fn: cext.CFunction) -> Iterator[Finding]:
    """Linear, statement-ordered ownership check for one function.

    Flow-insensitive in the safe direction: any release a statement
    *could* perform counts, so conditionally-released references are
    missed (false negative) rather than wrongly reported.
    """
    tracked = {name for name, ctype in fn.locals.items()
               if "PyObject" in ctype and "*" in ctype}
    releases_from = _releases_from(cmod, cfacts, fn)
    owned: Dict[str, int] = {}
    borrowed: Dict[str, Optional[str]] = {}   # var -> source container id
    pending: Dict[str, int] = {}              # allocated, NULL not yet checked
    for at, stmt in enumerate(fn.statements):
        texts = [t.text for t in stmt.tokens]
        bind = _binding(stmt)
        # 1. NULL-check resolution for pending allocations
        for var in list(pending):
            if var not in texts:
                continue
            if bind is not None and bind[0] == var and \
                    var not in [t.text for t in bind[1]]:
                continue  # rebind, not a use: step 2 restarts tracking
            if _statement_null_checks(texts, var):
                del pending[var]
            elif _returns_var(texts, var):
                del pending[var]  # propagating NULL to the caller: idiom
            elif _first_use_is_tolerant(stmt, cfacts, var):
                del pending[var]
            else:
                yield Finding(
                    cmod.path, stmt.line, 1, "SF504",
                    "%r may be NULL here (allocating call at line %d "
                    "was never checked)" % (var, pending[var]))
                del pending[var]
        # 2. bindings
        if bind is not None:
            var, rhs = bind
            owned.pop(var, None)
            borrowed.pop(var, None)
            pending.pop(var, None)
            call = next((c for c in cext._iter_calls(rhs)), None)
            rhs_texts = [t.text for t in rhs]
            if call is not None and _is_new_ref_call(call.name):
                if var in tracked:
                    owned[var] = stmt.line
                if "NULL" not in texts or not _statement_null_checks(
                        texts, var):
                    pending[var] = stmt.line
                if _statement_null_checks(texts, var):
                    pending.pop(var, None)
            elif call is not None and (
                    call.name in _BORROWED_CALLS
                    or cmod.macro_expands_to(call.name, "PyList_GET_ITEM")
                    or cmod.macro_expands_to(call.name, "PyTuple_GET_ITEM")):
                container = call.arg_ids()[0] if call.args else None
                borrowed[var] = container
            elif len(rhs_texts) == 1 and rhs_texts[0] in borrowed:
                borrowed[var] = borrowed[rhs_texts[0]]
        # 3. incref / decref / stealing calls
        for call in cext._iter_calls(stmt.tokens):
            ids = call.arg_ids()
            if call.name == "Py_INCREF" and ids and ids[0]:
                var = ids[0]
                if var not in _SINGLETONS and var in tracked:
                    owned[var] = call.line
                borrowed.pop(var, None)
            elif call.name in ("Py_DECREF", "Py_XDECREF", "Py_CLEAR") \
                    and ids and ids[0]:
                owned.pop(ids[0], None)
            else:
                for arg_at, arg_id in enumerate(ids):
                    if arg_id is None:
                        continue
                    if not cfacts.steals(call.name, arg_at):
                        continue
                    if arg_id in owned:
                        del owned[arg_id]
                    elif arg_id in borrowed:
                        source = borrowed[arg_id]
                        dest = ids[0] if ids else None
                        if source is not None and source == dest:
                            continue  # move within the same container
                        yield Finding(
                            cmod.path, call.line, 1, "SF504",
                            "borrowed reference %r escapes into "
                            "reference-stealing %s() without an "
                            "intervening Py_INCREF" % (arg_id, call.name))
                        del borrowed[arg_id]
        # 4. returns transfer ownership
        if "return" in texts:
            ret_at = texts.index("return")
            if ret_at + 1 < len(texts) and texts[ret_at + 1] in owned:
                del owned[texts[ret_at + 1]]
        # 5. error exits
        exit_kind = _error_exit(texts)
        if exit_kind is not None:
            guarded = _guard_null_vars(fn.statements, at)
            live = {var: line for var, line in owned.items()
                    if var not in guarded}
            if exit_kind.startswith("goto:"):
                label = exit_kind[5:]
                target = fn.labels.get(label)
                if target is not None:
                    live = {var: line for var, line in live.items()
                            if var not in releases_from[target]}
            for var in sorted(live):
                yield Finding(
                    cmod.path, stmt.line, 1, "SF504",
                    "owned reference %r (acquired at line %d) leaks on "
                    "this error exit" % (var, live[var]))
                owned.pop(var, None)


def _binding(stmt: cext.CStatement) -> Optional[Tuple[str,
                                                      List[cext.Token]]]:
    """``var = <rhs>`` at statement top level (declarations included)."""
    texts = [t.text for t in stmt.tokens]
    if "=" not in texts:
        return None
    eq = texts.index("=")
    if eq == 0 or stmt.tokens[eq - 1].kind != "id":
        return None
    # reject compound assignment/comparison neighbours
    if eq + 1 < len(texts) and texts[eq + 1] == "=":
        return None
    if texts[eq - 1] in ("==", "!=", "<=", ">="):
        return None
    head = texts[0]
    if head in ("if", "while", "for", "return", "switch"):
        return None
    return stmt.tokens[eq - 1].text, list(stmt.tokens[eq + 1:])


def _returns_var(texts: List[str], var: str) -> bool:
    """``return var;`` — NULL propagation is the C-API error idiom."""
    for at, text in enumerate(texts):
        if text == "return" and texts[at + 1:at + 3] == [var, ";"]:
            return True
    return False


def _statement_null_checks(texts: List[str], var: str) -> bool:
    """Does this statement NULL-check ``var``?"""
    for at, text in enumerate(texts):
        if text != var:
            continue
        following = texts[at + 1:at + 3]
        preceding = texts[max(0, at - 1):at]
        if following[:1] in (["=="], ["!="]) and \
                following[1:2] == ["NULL"]:
            return True
        if following[:1] in (["?"], ["&&"], ["||"]):
            return True
        if preceding == ["!"]:
            return True
        if texts[0] in ("if", "while") and preceding == ["("] and \
                following[:1] == [")"]:
            return True
    return False


def _first_use_is_tolerant(stmt: cext.CStatement, cfacts: _CFacts,
                           var: str) -> bool:
    """Is every use of ``var`` in this statement a NULL-tolerant sink?"""
    used = False
    for call in cext._iter_calls(stmt.tokens):
        for arg_at, arg_id in enumerate(call.arg_ids()):
            if arg_id == var:
                used = True
                if not cfacts.tolerates_null(call.name, arg_at) and \
                        not cfacts.steals(call.name, arg_at):
                    return False
    return used


def _error_exit(texts: List[str]) -> Optional[str]:
    """Classify an error exit: ``return NULL``/negative, or ``goto L``."""
    for at, text in enumerate(texts):
        if text == "return":
            following = texts[at + 1:at + 4]
            if following[:1] == ["NULL"]:
                return "ret"
            if following[:2] in (["-", "1"],) or (
                    len(following) >= 2 and following[0] == "-"
                    and following[1].isdigit()):
                return "ret"
        elif text == "goto" and at + 1 < len(texts):
            return "goto:" + texts[at + 1]
    return None


def _guard_null_vars(statements: Sequence[cext.CStatement],
                     at: int) -> Set[str]:
    """Vars the governing ``if`` of statement ``at`` proved to be NULL."""
    stmt = statements[at]
    texts = [t.text for t in stmt.tokens]
    guard: Optional[List[str]] = None
    if texts and texts[0] == "if":
        guard = texts
    else:
        for back in range(at - 1, -1, -1):
            prior = statements[back]
            if prior.depth < stmt.depth:
                prior_texts = [t.text for t in prior.tokens]
                if prior_texts and prior_texts[0] == "if":
                    guard = prior_texts
                break
    if guard is None:
        return set()
    vars_null: Set[str] = set()
    for at_g, text in enumerate(guard):
        if text == "==" and at_g + 1 < len(guard) and \
                guard[at_g + 1] == "NULL" and at_g >= 1:
            vars_null.add(guard[at_g - 1])
        elif text == "!" and at_g + 1 < len(guard):
            vars_null.add(guard[at_g + 1])
    return vars_null


def _releases_from(cmod: cext.CModule, cfacts: _CFacts,
                   fn: cext.CFunction) -> List[Set[str]]:
    """For each statement index: vars released at or after that index.

    Resolves forward ``goto cleanup`` jumps — labels fall through, so a
    jump to label L benefits from every release below L.
    """
    per_stmt: List[Set[str]] = []
    for stmt in fn.statements:
        released: Set[str] = set()
        for call in cext._iter_calls(stmt.tokens):
            ids = call.arg_ids()
            if call.name in ("Py_DECREF", "Py_XDECREF", "Py_CLEAR") \
                    and ids and ids[0]:
                released.add(ids[0])
            else:
                for arg_at, arg_id in enumerate(ids):
                    if arg_id is not None and \
                            cfacts.steals(call.name, arg_at):
                        released.add(arg_id)
        per_stmt.append(released)
    suffix: List[Set[str]] = [set() for _ in fn.statements]
    acc: Set[str] = set()
    for index in range(len(fn.statements) - 1, -1, -1):
        acc = acc | per_stmt[index]
        suffix[index] = acc
    return suffix
