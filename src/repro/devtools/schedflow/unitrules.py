"""SF2xx: unit/dimension inference over the project.

Each function is abstractly interpreted on its CFG with an environment
mapping variables to :mod:`~repro.devtools.schedflow.unitlattice`
elements.  Seeds come from three places:

* the **signature table** below — the conversion helpers in
  ``repro/units.py`` and the tag constructors in ``repro/core/tags.py``
  (what the ISSUE calls the lattice's ground truth),
* **parameter/attribute naming conventions** that the codebase already
  enforces (``*_ns`` is integer nanoseconds, ``*_ips`` a rate,
  ``weight`` a share weight, ``work`` instructions),
* **interprocedural return summaries** computed to a fixed point, so a
  helper that returns ``work_from_time(...)`` types as instructions at
  every call site.

Rules:

* **SF201** — ``+``/``-``/``%`` or an ordering comparison between two
  *concretely known, different* units (seconds + instructions).
* **SF202** — ``==``/``!=`` between a virtual-time tag and a float
  literal: exact-mode tags are ``Fraction``s and the float path is
  approximate, so raw float equality is never meaningful.
* **SF203** — argument with a concretely known unit passed to a
  signature slot declared with a different unit.
* **SF204** — direct ``.weight = ...`` store outside ``core/node.py``
  (and outside ``__init__``): ``set_weight`` is the sanctioned mutator,
  and SCHEDSAN's ``dormant-weight-warp`` invariant is its runtime twin.
* **SF205** — the magic literals ``1_000_000_000`` / ``1_000_000`` used
  as arithmetic operands instead of ``units.SECOND`` / ``units.MILLISECOND``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.devtools.schedlint import Finding
from repro.devtools.schedflow.cfg import build_cfg
from repro.devtools.schedflow.dataflow import solve_forward
from repro.devtools.schedflow import unitlattice as U
from repro.devtools.schedflow.project import FunctionInfo, ProjectIndex

__all__ = ["UnitsPass", "SIGNATURES"]

Unit = U.Unit

#: qname-keyed (param units, return unit); ``None`` leaves a slot free.
SIGNATURES: Dict[str, Tuple[Tuple[Optional[Unit], ...], Unit]] = {
    "repro/units.py::ns_from_us": ((U.TIME,), U.TIME),
    "repro/units.py::ns_from_ms": ((U.TIME,), U.TIME),
    "repro/units.py::ns_from_s": ((U.TIME,), U.TIME),
    "repro/units.py::s_from_ns": ((U.TIME,), U.TIME),
    "repro/units.py::ms_from_ns": ((U.TIME,), U.TIME),
    "repro/units.py::work_from_time": ((U.TIME, U.RATE), U.INSTR),
    "repro/units.py::time_from_work": ((U.INSTR, U.RATE), U.TIME),
    "repro/core/tags.py::TagMath.zero": ((None,), U.VIRTUAL),
    "repro/core/tags.py::TagMath.ratio": ((None, U.INSTR, U.WEIGHT), U.VIRTUAL),
    "repro/core/tags.py::TagMath.advance":
        ((None, U.VIRTUAL, U.INSTR, U.WEIGHT), U.VIRTUAL),
    "repro/core/sfq.py::SfqQueue.virtual_time": ((None,), U.VIRTUAL),
    "repro/core/sfq.py::SfqQueue.start_tag": ((None, None), U.VIRTUAL),
    "repro/core/sfq.py::SfqQueue.finish_tag": ((None, None), U.VIRTUAL),
    "repro/core/sfq.py::SfqQueue.charge":
        ((None, None, U.INSTR, U.WEIGHT), None),
}

#: method names that type even when the receiver class is unresolved
_CALL_NAME_UNITS: Dict[str, Unit] = {
    "virtual_time": U.VIRTUAL,
    "start_tag": U.VIRTUAL,
    "finish_tag": U.VIRTUAL,
}

#: attribute reads with a conventional unit
_ATTR_UNITS: Dict[str, Unit] = {
    "capacity_ips": U.RATE,
    "weight": U.WEIGHT,
}

#: the literals SF205 bans as arithmetic operands, with the cure
_MAGIC_LITERALS: Dict[int, str] = {
    1_000_000_000: "units.SECOND",
    1_000_000: "units.MILLISECOND",
}

#: calls that preserve their (single) argument's unit
_UNIT_PRESERVING = {"int", "float", "abs", "round", "min", "max", "sum"}


def _name_unit(name: str) -> Unit:
    """Unit implied by a variable/parameter naming convention."""
    if name.endswith("_ns"):
        return U.TIME
    if name.endswith("_ips"):
        return U.RATE
    if name == "weight":
        return U.WEIGHT
    if name == "work":
        return U.INSTR
    return U.BOTTOM


class UnitsPass:
    """Run with :meth:`run`; yields SF201..SF205 findings."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self.returns: Dict[str, Unit] = {
            qname: U.BOTTOM for qname in index.functions}

    def run(self) -> Iterator[Finding]:
        """Iterate return units to a fixed point, then emit findings."""
        for _ in range(8):
            before = dict(self.returns)
            for info in self.index.functions.values():
                self._analyze(info, emit=None)
            if self.returns == before:
                break
        findings: List[Finding] = []
        for info in self.index.functions.values():
            self._analyze(info, emit=findings)
        return iter(findings)

    def _analyze(self, info: FunctionInfo,
                 emit: Optional[List[Finding]]) -> None:
        init: Dict[str, object] = {
            name: _name_unit(name) for name in info.params}
        walker = _UnitWalker(self, info, emit)
        cfg = build_cfg(info.node)
        solve_forward(cfg, init, walker.transfer,
                      join=lambda a, b: a.join(b), top=U.TOP)

    def signature_for(
            self, info: FunctionInfo,
    ) -> Tuple[Tuple[Optional[Unit], ...], Unit]:
        """``(declared param units, return unit)`` for a callee: the
        signature table first, then naming conventions plus the
        inferred return summary."""
        sig = SIGNATURES.get(info.qname)
        if sig is not None:
            return sig
        params = tuple(_name_unit(name) or None for name in info.params)
        declared = tuple(p if p is not U.BOTTOM else None for p in params)
        return (declared, self.returns.get(info.qname, U.BOTTOM))


class _UnitWalker:
    def __init__(self, owner: UnitsPass, info: FunctionInfo,
                 emit: Optional[List[Finding]]) -> None:
        self.owner = owner
        self.info = info
        self.emit = emit

    def _report(self, node: ast.AST, code: str, message: str) -> None:
        if self.emit is None:
            return
        line = getattr(node, "lineno", 1)
        self.emit.append(Finding(
            self.info.entry.path, line, getattr(node, "col_offset", 0),
            code, message,
            end_line=getattr(node, "end_lineno", None) or line))

    # --- expression evaluation -------------------------------------------

    def unit_of(self, node: Optional[ast.AST], env: Dict[str, object]) -> Unit:
        if node is None:
            return U.BOTTOM
        if isinstance(node, ast.Constant):
            return U.BOTTOM
        if isinstance(node, ast.Name):
            val = env.get(node.id, U.BOTTOM)
            return val if isinstance(val, Unit) else U.BOTTOM
        if isinstance(node, ast.Attribute):
            self.unit_of(node.value, env)
            return _ATTR_UNITS.get(node.attr, U.BOTTOM)
        if isinstance(node, ast.BinOp):
            return self._binop(node, env)
        if isinstance(node, ast.UnaryOp):
            return self.unit_of(node.operand, env)
        if isinstance(node, ast.Compare):
            return self._compare(node, env)
        if isinstance(node, ast.Call):
            return self._call(node, env)
        if isinstance(node, ast.IfExp):
            self.unit_of(node.test, env)
            return self.unit_of(node.body, env).join(
                self.unit_of(node.orelse, env))
        if isinstance(node, ast.BoolOp):
            out = U.BOTTOM
            for value in node.values:
                out = out.join(self.unit_of(value, env))
            return out
        if isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            # the collection has the unit of its elements, which is what
            # sum(child.weight for child in ...) needs to type correctly
            for comp in node.generators:
                self.unit_of(comp.iter, env)
            return self.unit_of(node.elt, env)
        if isinstance(node, ast.Subscript):
            self.unit_of(node.value, env)
            return U.BOTTOM
        # visit children for nested findings; result is unconstrained
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.unit_of(child, env)
        return U.BOTTOM

    def _magic_literal(self, operand: ast.AST) -> None:
        if (isinstance(operand, ast.Constant)
                and type(operand.value) is int
                and operand.value in _MAGIC_LITERALS
                and self.info.entry.module != "repro/units.py"
                and self.info.entry.in_module("repro/")):
            self._report(operand, "SF205",
                         "magic literal %d; use repro.%s so the conversion "
                         "carries its unit" % (operand.value,
                                               _MAGIC_LITERALS[operand.value]))

    def _binop(self, node: ast.BinOp, env: Dict[str, object]) -> Unit:
        left = self.unit_of(node.left, env)
        right = self.unit_of(node.right, env)
        self._magic_literal(node.left)
        self._magic_literal(node.right)
        if isinstance(node.op, ast.Mult):
            return left.mul(right)
        if isinstance(node.op, (ast.Div, ast.FloorDiv)):
            return left.div(right)
        if isinstance(node.op, (ast.Add, ast.Sub, ast.Mod)):
            combined = left.additive(right)
            if combined is None:
                self._report(node, "SF201",
                             "mixed-unit arithmetic: %r %s %r" % (
                                 left, type(node.op).__name__.lower(), right))
                return U.TOP
            return combined
        return U.TOP if (left.concrete or right.concrete) else U.BOTTOM

    def _compare(self, node: ast.Compare, env: Dict[str, object]) -> Unit:
        operands = [node.left] + list(node.comparators)
        units = [self.unit_of(operand, env) for operand in operands]
        for i, op in enumerate(node.ops):
            left, right = units[i], units[i + 1]
            if isinstance(op, (ast.Eq, ast.NotEq)):
                for tag_side, float_side in ((left, operands[i + 1]),
                                             (right, operands[i])):
                    if (tag_side == U.VIRTUAL
                            and isinstance(float_side, ast.Constant)
                            and type(float_side.value) is float):
                        self._report(node, "SF202",
                                     "==/!= between a virtual-time tag and a "
                                     "float literal; exact-mode tags are "
                                     "Fractions — compare tags to tags")
                        break
            if isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE,
                               ast.Eq, ast.NotEq)):
                if left.additive(right) is None:
                    self._report(node, "SF201",
                                 "comparison between different units: "
                                 "%r vs %r" % (left, right))
        return U.BOTTOM

    def _call(self, call: ast.Call, env: Dict[str, object]) -> Unit:
        arg_units = [self.unit_of(arg, env) for arg in call.args]
        for keyword in call.keywords:
            self.unit_of(keyword.value, env)
        func = call.func

        callee = self.owner.index.resolve_call(
            call, self.info.entry, self.info.class_name)
        if callee is not None:
            declared, ret = self.owner.signature_for(callee)
            offset = 1 if (callee.is_method
                           and isinstance(func, ast.Attribute)) else 0
            for position, unit in enumerate(arg_units[:len(call.args)]):
                slot = position + offset
                if slot >= len(declared):
                    break
                want = declared[slot]
                if (want is not None and want.concrete and unit.concrete
                        and unit != want):
                    self._report(
                        call.args[position], "SF203",
                        "argument %d of %s() expects %r, got %r" % (
                            position + 1, callee.name, want, unit))
            return ret if isinstance(ret, Unit) else U.BOTTOM

        if isinstance(func, ast.Attribute) and func.attr in _CALL_NAME_UNITS:
            return _CALL_NAME_UNITS[func.attr]
        if isinstance(func, ast.Name) and func.id in _UNIT_PRESERVING:
            out = U.BOTTOM
            for unit in arg_units:
                out = out.join(unit)
            return out
        return U.BOTTOM

    # --- statement transfer ----------------------------------------------

    def transfer(self, stmt: ast.stmt, fact: Dict[str, object]) -> Dict[str, object]:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = getattr(stmt, "value", None)
            unit = self.unit_of(value, fact) if value is not None else U.BOTTOM
            targets = (stmt.targets if isinstance(stmt, ast.Assign)
                       else [stmt.target])
            for target in targets:
                self._assign_target(stmt, target, unit, fact)
        elif isinstance(stmt, ast.Return):
            unit = self.unit_of(stmt.value, fact)
            qname = self.info.qname
            self.owner.returns[qname] = self.owner.returns[qname].join(unit)
        elif isinstance(stmt, ast.For):
            self.unit_of(stmt.iter, fact)
            if isinstance(stmt.target, ast.Name):
                fact[stmt.target.id] = U.BOTTOM
        elif isinstance(stmt, (ast.If, ast.While)):
            self.unit_of(stmt.test, fact)
        elif isinstance(stmt, (ast.Expr, ast.Assert, ast.Raise)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.unit_of(child, fact)
        return fact

    def _assign_target(self, stmt: ast.stmt, target: ast.AST, unit: Unit,
                       fact: Dict[str, object]) -> None:
        if isinstance(target, ast.Name):
            # a naming convention on the *target* also constrains the value
            declared = _name_unit(target.id)
            if (declared.concrete and unit.concrete and unit != declared):
                self._report(stmt, "SF201",
                             "variable %r is %r by convention but is "
                             "assigned %r" % (target.id, declared, unit))
            fact[target.id] = unit if unit.concrete else declared
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                if isinstance(element, ast.Name):
                    fact[element.id] = U.BOTTOM
        elif isinstance(target, ast.Attribute):
            if (target.attr == "weight"
                    and self.info.entry.module != "repro/core/node.py"
                    and self.info.entry.in_module("repro/")
                    and self.info.name not in ("__init__", "set_weight")):
                self._report(stmt, "SF204",
                             "direct .weight store bypasses set_weight(); "
                             "SCHEDSAN's dormant-weight-warp invariant can "
                             "only see sanctioned mutations")
