"""Command-line front end: ``python -m repro.devtools.schedflow src/repro``.

Exit status matches schedlint: 0 clean, 1 findings, 2 crash/usage.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.devtools.schedlint import LintError
from repro.devtools.schedflow.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.devtools.schedflow.engine import RULES, analyze_project
from repro.devtools.schedflow.project import ProjectIndex
from repro.devtools.schedflow.sarif import write_sarif


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.schedflow",
        description="Interprocedural dataflow checker: determinism taint, "
                    "unit/dimension analysis, SMP shared-state discipline.")
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories forming ONE project "
             "(directories recurse into *.py)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit")
    parser.add_argument(
        "--select", metavar="CODES",
        help="comma-separated rule codes or prefixes to report "
             "(e.g. SF205 or SF4; default: all)")
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan the analysis across N worker processes; output is "
             "byte-identical to a serial run (default: 1)")
    parser.add_argument(
        "--baseline", metavar="FILE",
        help="suppress findings fingerprinted in this baseline file")
    parser.add_argument(
        "--write-baseline", metavar="FILE",
        help="write the surviving findings to FILE as a new baseline "
             "and exit 0")
    parser.add_argument(
        "--sarif", metavar="FILE",
        help="also write the findings as SARIF 2.1.0 to FILE")
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress the summary line; print findings only")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Run the CLI; returns the process exit status (0/1/2)."""
    parser = _build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for code, (name, summary) in sorted(RULES.items()):
            print("%s  %-22s %s" % (code, name, summary))
        return 0

    if not options.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given", file=sys.stderr)
        return 2

    select = None
    if options.select:
        select = set()
        unknown = []
        for token in options.select.split(","):
            token = token.strip().upper()
            if not token:
                continue  # `SF5,` / `SF5,,SF204`: blanks select nothing
            matched = {code for code in RULES
                       if code == token or code.startswith(token)}
            if not matched:
                unknown.append(token)
            select.update(matched)
        if unknown:
            print("error: unknown rule codes: %s" % ", ".join(sorted(unknown)),
                  file=sys.stderr)
            return 2
        if not select:
            print("error: --select %r selects no rules" % options.select,
                  file=sys.stderr)
            return 2

    try:
        if options.jobs > 1:
            from repro.devtools.schedflow.parjobs import analyze_paths_jobs
            findings, source_lines = analyze_paths_jobs(
                options.paths, options.jobs, select=select)
        else:
            index = ProjectIndex.load(options.paths)
            findings = analyze_project(index, select=select)
            source_lines = {
                entry.path: entry.source.splitlines()
                for entry in index.entries}
            source_lines.update(
                (centry.path, centry.source.splitlines())
                for centry in index.centries)
        if options.baseline:
            findings = apply_baseline(
                findings, load_baseline(options.baseline), source_lines)
        if options.write_baseline:
            count = write_baseline(options.write_baseline, findings,
                                   source_lines)
            print("schedflow: wrote %d fingerprint%s to %s" % (
                count, "" if count == 1 else "s", options.write_baseline))
            return 0
        if options.sarif:
            write_sarif(options.sarif, findings, RULES)
    except LintError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    except Exception as exc:  # a pass crashed: not a finding, not usage
        print("error: internal failure: %s: %s"
              % (type(exc).__name__, exc), file=sys.stderr)
        return 2

    for finding in findings:
        print(finding)
    if not options.quiet:
        if findings:
            print("schedflow: %d finding%s" % (
                len(findings), "" if len(findings) == 1 else "s"))
        else:
            print("schedflow: clean")
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
