"""Per-function control-flow graphs at statement granularity.

Each node is one ``ast.stmt`` of the function body; edges follow the
usual structured-control-flow shape (branch/merge for ``if``, a back
edge for loops, ``break``/``continue`` wired to their loop, ``return``
and ``raise`` falling off the graph).  ``try`` is modelled coarsely —
every handler is assumed reachable from the start of the protected
block — which over-approximates flow, the safe direction for the
forward may-analyses built on top (:mod:`repro.devtools.schedflow.dataflow`).

Nested ``def``/``lambda``/``class`` bodies are *not* inlined here; they
are separate functions with their own CFGs.
"""

from __future__ import annotations

import ast
from typing import List

__all__ = ["Cfg", "build_cfg"]


class Cfg:
    """Statement-level CFG: ``nodes[i]`` has successors ``succs[i]``."""

    def __init__(self) -> None:
        self.nodes: List[ast.stmt] = []
        self.succs: List[List[int]] = []

    def add(self, stmt: ast.stmt) -> int:
        """Append a statement node; returns its index."""
        self.nodes.append(stmt)
        self.succs.append([])
        return len(self.nodes) - 1

    def edge(self, src: int, dst: int) -> None:
        """Add a ``src -> dst`` edge (idempotent)."""
        if dst not in self.succs[src]:
            self.succs[src].append(dst)

    def preds(self) -> List[List[int]]:
        """Predecessor lists (computed on demand; CFGs are small)."""
        preds: List[List[int]] = [[] for _ in self.nodes]
        for src, dsts in enumerate(self.succs):
            for dst in dsts:
                preds[dst].append(src)
        return preds


class _Loop:
    __slots__ = ("header", "breaks")

    def __init__(self, header: int) -> None:
        self.header = header
        self.breaks: List[int] = []


class _Builder:
    def __init__(self) -> None:
        self.cfg = Cfg()
        self.loops: List[_Loop] = []

    def seq(self, stmts: List[ast.stmt], preds: List[int]) -> List[int]:
        """Wire a statement list after ``preds``; return the exit frontier."""
        for stmt in stmts:
            node = self.cfg.add(stmt)
            for pred in preds:
                self.cfg.edge(pred, node)
            preds = self.stmt(stmt, node)
        return preds

    def stmt(self, stmt: ast.stmt, node: int) -> List[int]:
        if isinstance(stmt, ast.If):
            outs = self.seq(stmt.body, [node])
            if stmt.orelse:
                outs += self.seq(stmt.orelse, [node])
            else:
                outs += [node]
            return outs
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            loop = _Loop(node)
            self.loops.append(loop)
            body_outs = self.seq(stmt.body, [node])
            self.loops.pop()
            for out in body_outs:
                self.cfg.edge(out, node)  # back edge
            normal = self.seq(stmt.orelse, [node]) if stmt.orelse else [node]
            return normal + loop.breaks
        if isinstance(stmt, ast.Try):
            body_start = len(self.cfg.nodes)
            outs = self.seq(stmt.body, [node])
            body_nodes = list(range(body_start, len(self.cfg.nodes)))
            for handler in stmt.handlers:
                # an exception may fire anywhere in the protected block
                outs += self.seq(handler.body, [node] + body_nodes)
            if stmt.orelse:
                outs = self.seq(stmt.orelse, outs)
            if stmt.finalbody:
                outs = self.seq(stmt.finalbody, outs or [node])
            return outs
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self.seq(stmt.body, [node])
        if isinstance(stmt, (ast.Return, ast.Raise)):
            return []
        if isinstance(stmt, ast.Break):
            if self.loops:
                self.loops[-1].breaks.append(node)
            return []
        if isinstance(stmt, ast.Continue):
            if self.loops:
                self.cfg.edge(node, self.loops[-1].header)
            return []
        return [node]


def build_cfg(fn: ast.AST) -> Cfg:
    """Build the CFG for a ``FunctionDef``/``AsyncFunctionDef`` body."""
    builder = _Builder()
    builder.seq(list(getattr(fn, "body", [])), [])
    return builder.cfg
