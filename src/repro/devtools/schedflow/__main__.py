"""Entry point for ``python -m repro.devtools.schedflow``."""

import sys

from repro.devtools.schedflow.cli import main

if __name__ == "__main__":
    sys.exit(main())
