"""SF3xx: SMP shared-state discipline and hsfq protocol order.

**SF301 (ownership).**  The dispatch-path fields of the SFQ queues and
the machines are single-writer by design: only the owning module may
store to them, everyone else goes through the owner's API (that is what
makes the SMP machine's per-CPU state safe without locks — ownership
*is* the lockset).  The table below records the owner of every such
field; a direct store from any other module under ``repro/`` is a
finding.  ``__init__`` is exempt: constructing your *own* object's
fields is not sharing.

**SF302 (protocol).**  The hsfq syscall surface has a lifetime order —
``mknod`` creates an id, ``parse``/``move``/``admin`` use it, ``rmnod``
ends it.  A flow-sensitive CFG pass tracks node-id expressions removed
by ``hsfq_rmnod`` and flags any later hsfq call on the same expression
reachable from the removal.  Re-assigning the variable (typically from
a fresh ``hsfq_mknod``) revives it; the analysis is a *may*-removed
one, so a removal on either branch of an ``if`` poisons the join.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.devtools.schedlint import Finding
from repro.devtools.schedflow.cfg import build_cfg
from repro.devtools.schedflow.dataflow import solve_forward
from repro.devtools.schedflow.project import FunctionInfo, ProjectIndex

__all__ = ["SharedStatePass", "OWNED_ATTRS"]

#: field -> module prefixes allowed to store to it directly
OWNED_ATTRS: Dict[str, Tuple[str, ...]] = {
    # SfqQueue internals: the queue is the only writer of its scheduling
    # state (the arena columns are mutated element-wise, never rebound,
    # so the rebindable fields below are the whole story)
    "_state": ("repro/core/sfq.py",),
    "_solo": ("repro/core/sfq.py",),
    "_cview": ("repro/core/sfq.py",),
    "_heap": ("repro/core/sfq.py",),
    # runnable bits: the hierarchy/queue machinery and the per-class
    # schedulers own their respective record flags
    "runnable": ("repro/core/", "repro/schedulers/"),
    # dispatch state: only the machine that is dispatching writes these
    "current": ("repro/cpu/machine.py", "repro/smp/machine.py"),
    "_quantum_work_left": ("repro/cpu/machine.py",),
    "quantum_left": ("repro/smp/machine.py",),
    "quantum_done": ("repro/smp/machine.py",),
}

#: hsfq entry points -> index of the node-id argument(s) and its keyword
_HSFQ_ID_ARGS: Dict[str, Tuple[Tuple[int, str], ...]] = {
    "hsfq_mknod": ((2, "parent"),),
    "hsfq_parse": ((2, "hint"),),
    "hsfq_rmnod": ((1, "node_id"),),
    "hsfq_move": ((2, "to"),),
    "hsfq_admin": ((1, "node_id"),),
}

_REMOVED_TOP: FrozenSet[str] = frozenset(["<any>"])


def _own_exprs(stmt: ast.stmt) -> Iterator[ast.AST]:
    """Walk a CFG node's *own* expressions.  Compound statements appear
    in the CFG as headers whose bodies are separate nodes, so walking
    the whole subtree would process nested statements twice."""
    if isinstance(stmt, (ast.If, ast.While)):
        yield from ast.walk(stmt.test)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        yield from ast.walk(stmt.iter)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            yield from ast.walk(item.context_expr)
    elif isinstance(stmt, (ast.Try, ast.FunctionDef, ast.AsyncFunctionDef,
                           ast.ClassDef)):
        return
    else:
        yield from ast.walk(stmt)


def _hsfq_target(call: ast.Call) -> Optional[str]:
    """The hsfq entry point a call hits, by bare or dotted name."""
    func = call.func
    name = None
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    return name if name in _HSFQ_ID_ARGS else None


def _id_args(call: ast.Call, name: str) -> List[ast.AST]:
    """The node-id argument expressions of an hsfq call."""
    out: List[ast.AST] = []
    for position, keyword_name in _HSFQ_ID_ARGS[name]:
        if position < len(call.args):
            out.append(call.args[position])
        else:
            for keyword in call.keywords:
                if keyword.arg == keyword_name:
                    out.append(keyword.value)
    return out


def _id_key(node: ast.AST) -> str:
    """Identity of a node-id expression; plain variables key by name so
    a re-assignment can revive them."""
    if isinstance(node, ast.Name):
        return node.id
    return ast.dump(node)


class SharedStatePass:
    """Run with :meth:`run`; yields SF301/SF302 findings."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index

    def run(self) -> Iterator[Finding]:
        """Check every function; yields SF301/SF302 findings."""
        findings: List[Finding] = []
        for info in self.index.functions.values():
            self._check_ownership(info, findings)
            self._check_hsfq_protocol(info, findings)
        return iter(findings)

    # --- SF301 ------------------------------------------------------------

    def _check_ownership(self, info: FunctionInfo,
                         findings: List[Finding]) -> None:
        entry = info.entry
        if not entry.in_module("repro/") or info.name == "__init__":
            return
        for node in ast.walk(info.node):
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if not isinstance(target, ast.Attribute):
                    continue
                owners = OWNED_ATTRS.get(target.attr)
                if owners is None or entry.in_module(*owners):
                    continue
                line = target.lineno
                findings.append(Finding(
                    entry.path, line, target.col_offset, "SF301",
                    "store to %r, owned by %s — mutate it through the "
                    "owner's API so the single-writer discipline holds"
                    % (target.attr, " / ".join(owners)),
                    end_line=getattr(node, "end_lineno", None) or line))

    # --- SF302 ------------------------------------------------------------

    def _check_hsfq_protocol(self, info: FunctionInfo,
                             findings: List[Finding]) -> None:
        source = info.entry.source
        if "hsfq_rmnod" not in source:
            return
        # the hsfq module itself defines the functions; skip it
        if info.entry.module == "repro/hsfq.py":
            return
        cfg = build_cfg(info.node)
        # the fixed-point iteration visits statements repeatedly and
        # would duplicate findings; collect into a scratch list and
        # dedup per site afterwards
        emitted: List[Finding] = []

        def transfer(stmt: ast.stmt, fact: Dict[str, object]) -> Dict[str, object]:
            removed = fact.get("removed", frozenset())
            assert isinstance(removed, frozenset)
            for node in _own_exprs(stmt):
                if not isinstance(node, ast.Call):
                    continue
                name = _hsfq_target(node)
                if name is None:
                    continue
                ids = [_id_key(arg) for arg in _id_args(node, name)]
                for key in ids:
                    if key in removed:
                        emitted.append(Finding(
                            info.entry.path, node.lineno,
                            node.col_offset, "SF302",
                            "%s() on a node id already removed by "
                            "hsfq_rmnod() on this path" % name,
                            end_line=getattr(node, "end_lineno", None)
                            or node.lineno))
                if name == "hsfq_rmnod":
                    removed = removed | frozenset(ids)
            # re-binding a variable (e.g. from a fresh hsfq_mknod) ends
            # its association with the removed id
            if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (stmt.targets if isinstance(stmt, ast.Assign)
                           else [stmt.target])
                for target in targets:
                    if isinstance(target, ast.Name):
                        removed = removed - {target.id}
            fact["removed"] = removed
            return fact

        solve_forward(cfg, {"removed": frozenset()}, transfer,
                      join=lambda a, b: a | b, top=_REMOVED_TOP)
        seen = set()
        for finding in emitted:
            key = (finding.line, finding.col, finding.message)
            if key not in seen:
                seen.add(key)
                findings.append(finding)
