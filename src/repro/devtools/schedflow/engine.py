"""Orchestration: run every pass over a project and filter suppressions.

schedflow reuses schedlint's suppression machinery wholesale — the
``# schedflow: disable=...`` / ``# noqa:`` comments, multi-line
statement spans, file-level disables, and the fixture-module directive
all behave identically across both tools.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.devtools.schedlint import (
    Finding,
    _span_for,
    _statement_spans,
    _suppressed,
    _suppressions,
)
from repro.devtools.schedflow.parallel import ParallelPass
from repro.devtools.schedflow.project import ProjectIndex
from repro.devtools.schedflow.seamrules import SeamPass
from repro.devtools.schedflow.shared import SharedStatePass
from repro.devtools.schedflow.taint import TaintPass
from repro.devtools.schedflow.unitrules import UnitsPass

__all__ = ["RULES", "analyze_project", "analyze_paths"]

#: the rule catalogue: code -> (name, summary); drives --list-rules and SARIF
RULES: Dict[str, Tuple[str, str]] = {
    "SF101": ("taint-to-state",
              "host time/entropy/env value flows into simulator state"),
    "SF102": ("taint-to-sim-api",
              "host time/entropy/env value reaches the simulation event API"),
    "SF201": ("mixed-units",
              "arithmetic or comparison between different units"),
    "SF202": ("float-tag-compare",
              "==/!= between a virtual-time tag and a float literal"),
    "SF203": ("wrong-unit-argument",
              "argument unit conflicts with the callee's declared unit"),
    "SF204": ("direct-weight-store",
              ".weight store bypassing set_weight (see SCHEDSAN "
              "dormant-weight-warp)"),
    "SF205": ("magic-time-literal",
              "1_000_000_000-style literal instead of a units constant"),
    "SF301": ("ownership",
              "owned scheduler state stored outside its owning module"),
    "SF302": ("hsfq-use-after-rmnod",
              "hsfq call on a node id after hsfq_rmnod removed it"),
    "SF401": ("worker-shared-write",
              "module-level mutable state written from worker context"),
    "SF402": ("unordered-merge",
              "completion-order-dependent merge of pool results"),
    "SF403": ("fork-unsafe-rng",
              "worker-context RNG bypassing derive_seed/Stream.substream"),
    "SF404": ("unpicklable-boundary",
              "lambda or nested function crossing a pool boundary"),
    "SF405": ("emit-context-mutation",
              "event-bus subscriber mutating foreign state from emit "
              "context"),
    "SF406": ("worker-env-read",
              "os.environ/os.getenv read inside a pool entrypoint"),
    "SF501": ("cview-layout-mismatch",
              "C CV_*/ST_*/CH_* layout disagrees with the Python "
              "_cview/_state/chain descriptors"),
    "SF502": ("pure-only-mutation",
              "arena-column mutation in a pure hot function with no "
              "compiled-twin counterpart"),
    "SF503": ("turbo-bailout-gap",
              "C turbo entry skips a BUS.active/tracer gate its Python "
              "bailout target checks"),
    "SF504": ("capi-hygiene",
              "refcount leak on an error exit, unchecked NULL, or "
              "borrowed-ref escape into a stealing sink"),
    "SF505": ("format-mismatch",
              "PyArg_Parse*/Py_BuildValue format unit disagrees with "
              "the bound C variable"),
}

_PASSES = (TaintPass, UnitsPass, SharedStatePass, ParallelPass, SeamPass)


def analyze_project(index: ProjectIndex,
                    select: Optional[Iterable[str]] = None,
                    paths: Optional[Iterable[str]] = None) -> List[Finding]:
    """Run all passes; returns deduped, suppression-filtered findings.

    ``paths`` optionally restricts *emission* to findings in the given
    file paths while still analyzing the whole project — the ``--jobs``
    sharding uses this so every worker sees full interprocedural
    context but reports only its own bucket.
    """
    wanted = set(select) if select is not None else None
    emit_paths = set(paths) if paths is not None else None
    raw: List[Finding] = []
    for pass_cls in _PASSES:
        raw.extend(pass_cls(index).run())

    # fixed-point passes visit statements repeatedly; dedup per site
    seen = set()
    findings: List[Finding] = []
    for finding in raw:
        if wanted is not None and finding.code not in wanted:
            continue
        if emit_paths is not None and finding.path not in emit_paths:
            continue
        key = (finding.path, finding.line, finding.col,
               finding.code, finding.message)
        if key not in seen:
            seen.add(key)
            findings.append(finding)

    # per-file suppression filtering, shared with schedlint
    by_path: Dict[str, List[Finding]] = {}
    for finding in findings:
        by_path.setdefault(finding.path, []).append(finding)
    kept: List[Finding] = []
    for entry in index.entries:
        batch = by_path.pop(entry.path, [])
        if not batch:
            continue
        per_line, whole_file = _suppressions(entry.source)
        spans = _statement_spans(entry.tree) if per_line else ()
        for finding in batch:
            span = _span_for(finding.line, spans) if per_line else None
            if not _suppressed(finding, per_line, whole_file, span):
                kept.append(finding)
    for batch in by_path.values():  # findings in files we did not parse
        kept.extend(batch)
    kept.sort(key=Finding.sort_key)
    return kept


def analyze_paths(paths: Iterable[str],
                  select: Optional[Iterable[str]] = None) -> List[Finding]:
    """Load ``paths`` as one project and analyze it."""
    return analyze_project(ProjectIndex.load(paths), select=select)
