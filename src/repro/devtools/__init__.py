"""Correctness tooling for the reproduction.

Two independent layers guard the properties everything else relies on —
determinism of the simulator and the SFQ / leaf-scheduler contracts:

* :mod:`repro.devtools.schedlint` — a static (AST) checker with per-rule
  codes (``SL001``...), run as ``python -m repro.devtools.schedlint src/``.
  It catches the regressions a diff reviewer cannot see: wall-clock reads,
  unseeded randomness, unordered-set iteration in dispatch paths, float
  drift in tag arithmetic, and leaf schedulers silently departing from the
  :class:`~repro.schedulers.base.LeafScheduler` contract.
* :mod:`repro.devtools.schedsan` — SCHEDSAN, an opt-in runtime sanitizer
  (``REPRO_SCHEDSAN=1``) that audits every scheduler interaction a machine
  makes and reports invariant violations with the offending node path and
  simulation time.

Neither layer imports anything outside the standard library, and neither
costs anything when not in use: schedlint runs offline, SCHEDSAN is a
no-op unless the environment variable is set.
"""
