"""Command-line front end: ``python -m repro.devtools.schedlint src/``.

Exit status: 0 when every checked file is clean, 1 when findings were
reported, 2 on usage or I/O errors — the same convention as pyflakes,
so CI and ``make lint`` wire it up with no adapter.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.devtools.schedlint import LintError, all_rules, check_paths


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.schedlint",
        description="Determinism and scheduler-contract static checker.")
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to check (directories recurse into *.py)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit")
    parser.add_argument(
        "--select", metavar="CODES",
        help="comma-separated rule codes to run (default: all)")
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress the summary line; print findings only")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Run the checker; returns the process exit status (0/1/2)."""
    parser = _build_parser()
    options = parser.parse_args(argv)

    rules = all_rules()
    if options.list_rules:
        for rule in rules:
            print("%s  %-16s %s" % (rule.code, rule.name, rule.summary))
        return 0

    if not options.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given", file=sys.stderr)
        return 2

    if options.select:
        wanted = {code.strip().upper() for code in options.select.split(",")}
        unknown = wanted - {rule.code for rule in rules}
        if unknown:
            print("error: unknown rule codes: %s" % ", ".join(sorted(unknown)),
                  file=sys.stderr)
            return 2
        rules = tuple(rule for rule in rules if rule.code in wanted)

    try:
        findings = check_paths(options.paths, rules=rules)
    except LintError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    except Exception as exc:  # a rule crashed: not a finding, not usage
        print("error: internal failure: %s: %s"
              % (type(exc).__name__, exc), file=sys.stderr)
        return 2

    for finding in findings:
        print(finding)
    if not options.quiet:
        if findings:
            print("schedlint: %d finding%s" % (
                len(findings), "" if len(findings) == 1 else "s"))
        else:
            print("schedlint: clean")
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
