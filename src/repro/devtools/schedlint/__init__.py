"""schedlint: a domain-specific static checker for the scheduler codebase.

The simulator's value rests on two properties no unit test can fully
guarantee: every run is *deterministic*, and every scheduler honours the
SFQ invariants and the :class:`~repro.schedulers.base.LeafScheduler`
lifecycle contract.  schedlint enforces the code patterns those properties
depend on, using only the standard :mod:`ast` module.

Rules (see :mod:`repro.devtools.schedlint.rules` and
:mod:`repro.devtools.schedlint.contract` for the implementations):

========  ==============================================================
code       meaning
========  ==============================================================
SL001      wall-clock or entropy read inside the simulator
SL002      unseeded randomness outside ``repro.sim.rng``
SL003      iteration over an unordered set in a dispatch-path module
SL004      float literal or true division in a tag-arithmetic module
SL005      ``LeafScheduler`` subclass departs from the contract
SL006      RNG constructed outside the seed tree in faultlab/workloads
SL007      module-level mutable container outside the allowlist
========  ==============================================================

Suppressions
------------

Append ``# schedlint: disable=SL001`` (comma-separate several codes, or
use ``all``) to a line to silence findings reported *on that line* — or
anywhere inside the statement the line belongs to, so a suppression on
the closing line of a multi-line call (or after a backslash
continuation) silences the whole statement.  The pyflakes-style
``# noqa: SL001`` (and bare ``# noqa`` for every code) is honoured with
the same semantics.  A line containing ``# schedlint: disable-file=SL004``
anywhere in a file silences the code for the whole file.  Suppressions
are deliberate, reviewable markers — the catalogue in
``docs/STATIC_ANALYSIS.md`` explains when each is legitimate.

Fixture files (and any file living outside ``src/repro``) may declare the
module they stand in for with a first-line directive::

    # schedlint-fixture-module: repro/schedulers/example.py

so path-scoped rules apply as if the code lived at that path.
"""

from __future__ import annotations

import ast
import re
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

__all__ = [
    "Finding",
    "FileContext",
    "LintError",
    "all_rules",
    "module_path_for",
    "check_source",
    "check_file",
    "check_paths",
]

#: ``schedflow`` shares schedlint's suppression syntax, so either tool
#: name works in the comment; ``# noqa`` (optionally with codes) is the
#: pyflakes-compatible spelling.
_SUPPRESS_RE = re.compile(r"#\s*sched(?:lint|flow):\s*disable=([A-Za-z0-9_,\s]+)")
_SUPPRESS_FILE_RE = re.compile(
    r"#\s*sched(?:lint|flow):\s*disable-file=([A-Za-z0-9_,\s]+)")
_NOQA_RE = re.compile(r"#\s*noqa(?::\s*([A-Za-z0-9_,\s]+))?", re.IGNORECASE)
_FIXTURE_MODULE_RE = re.compile(r"#\s*schedlint-fixture-module:\s*(\S+)")


class LintError(Exception):
    """A file could not be checked (I/O or syntax error)."""


class Finding:
    """One rule violation at a source location.

    ``end_line`` is the last physical line of the statement the finding
    is anchored to; suppression comments anywhere in ``line..end_line``
    silence it (multi-line calls, backslash continuations).
    """

    __slots__ = ("path", "line", "col", "code", "message", "end_line")

    def __init__(self, path: str, line: int, col: int, code: str,
                 message: str, end_line: Optional[int] = None) -> None:
        self.path = path
        self.line = line
        self.col = col
        self.code = code
        self.message = message
        self.end_line = end_line if end_line is not None else line

    def sort_key(self) -> Tuple[str, int, int, str]:
        """Stable ordering: by path, then line, column, and code."""
        return (self.path, self.line, self.col, self.code)

    def __repr__(self) -> str:
        return "Finding(%s:%d:%d %s)" % (self.path, self.line, self.col, self.code)

    def __str__(self) -> str:
        return "%s:%d:%d: %s %s" % (
            self.path, self.line, self.col, self.code, self.message)


class FileContext:
    """Everything a rule needs to know about one file under check."""

    def __init__(self, path: str, source: str, tree: ast.Module,
                 module: Optional[str]) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        #: path relative to the package root, e.g. ``repro/core/sfq.py``;
        #: ``None`` when the file does not belong to the package tree.
        self.module = module

    def finding(self, node: ast.AST, code: str, message: str) -> Finding:
        """Build a :class:`Finding` located at ``node``."""
        line = getattr(node, "lineno", 1)
        return Finding(self.path, line, getattr(node, "col_offset", 0),
                       code, message,
                       end_line=getattr(node, "end_lineno", None) or line)

    # --- module-scope helpers used by the rules ---------------------------

    def in_module(self, *prefixes: str) -> bool:
        """True when this file's module path starts with any of ``prefixes``.

        A prefix ending in ``.py`` must match exactly; otherwise it names a
        package directory.
        """
        if self.module is None:
            return False
        for prefix in prefixes:
            if prefix.endswith(".py"):
                if self.module == prefix:
                    return True
            elif self.module.startswith(prefix):
                return True
        return False


class Rule:
    """A named check producing :class:`Finding` objects for a file."""

    code = "SL000"
    name = "abstract"
    summary = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for ``ctx``; suppression filtering happens later."""
        raise NotImplementedError


_REGISTRY: List[Rule] = []  # schedlint: disable=SL007 (rule registry)


def register(rule_cls: Callable[[], Rule]) -> Callable[[], Rule]:
    """Class decorator adding a rule (by instance) to the global registry."""
    rule = rule_cls()
    for existing in _REGISTRY:
        if existing.code == rule.code:
            raise ValueError("duplicate rule code %s" % rule.code)
    _REGISTRY.append(rule)
    return rule_cls


def all_rules() -> Sequence[Rule]:
    """The registered rules, importing the built-in rule modules on demand."""
    # Import for the side effect of registration; kept lazy so the
    # framework itself stays importable from the rule modules.
    from repro.devtools.schedlint import contract, rules  # noqa: F401
    return tuple(sorted(_REGISTRY, key=lambda rule: rule.code))


# --- suppression handling ----------------------------------------------------


def _parse_codes(raw: str) -> List[str]:
    return [code.strip().upper() for code in raw.split(",") if code.strip()]


def _suppressions(source: str) -> Tuple[Dict[int, List[str]], List[str]]:
    """Return (per-line, whole-file) suppression maps for ``source``."""
    per_line: Dict[int, List[str]] = {}
    whole_file: List[str] = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match:
            per_line.setdefault(lineno, []).extend(_parse_codes(match.group(1)))
        match = _SUPPRESS_FILE_RE.search(line)
        if match:
            whole_file.extend(_parse_codes(match.group(1)))
        match = _NOQA_RE.search(line)
        if match:
            codes = _parse_codes(match.group(1)) if match.group(1) else ["ALL"]
            per_line.setdefault(lineno, []).extend(codes)
    return per_line, whole_file


#: Compound statements span their whole body, which is far wider than the
#: "logical line" a suppression comment should cover; for them only the
#: header (up to the first body statement) counts.
_COMPOUND_STMTS = (ast.If, ast.For, ast.While, ast.With, ast.Try,
                   ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                   ast.AsyncFor, ast.AsyncWith)


def _statement_spans(tree: ast.Module) -> List[Tuple[int, int]]:
    """(first, last) physical-line spans of every statement's own lines."""
    spans: List[Tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        end = getattr(node, "end_lineno", None) or node.lineno
        if isinstance(node, _COMPOUND_STMTS):
            body = getattr(node, "body", [])
            if body:
                end = max(node.lineno, body[0].lineno - 1)
        spans.append((node.lineno, end))
    return spans


def _span_for(line: int, spans: Sequence[Tuple[int, int]]) -> Optional[Tuple[int, int]]:
    """Innermost (narrowest) statement span containing ``line``."""
    best: Optional[Tuple[int, int]] = None
    for start, end in spans:
        if start <= line <= end:
            if best is None or (end - start) < (best[1] - best[0]):
                best = (start, end)
    return best


def _suppressed(finding: Finding, per_line: Dict[int, List[str]],
                whole_file: List[str],
                span: Optional[Tuple[int, int]] = None) -> bool:
    if finding.code in whole_file or "ALL" in whole_file:
        return True
    start, end = finding.line, finding.end_line
    if span is not None:
        start = min(start, span[0])
        end = max(end, span[1])
    for lineno in range(start, end + 1):
        codes = per_line.get(lineno)
        if codes and (finding.code in codes or "ALL" in codes):
            return True
    return False


# --- module-path resolution --------------------------------------------------


def module_path_for(path: str) -> Optional[str]:
    """Map a filesystem path to a ``repro/...`` module path, if possible.

    The last ``repro`` component in the path anchors the package root, so
    ``src/repro/core/sfq.py``, ``/abs/src/repro/core/sfq.py`` and
    ``repro/core/sfq.py`` all resolve to ``repro/core/sfq.py``.
    """
    parts = path.replace("\\", "/").split("/")
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index:])
    return None


# --- entry points ------------------------------------------------------------


def check_source(source: str, path: str = "<string>",
                 module: Optional[str] = None,
                 rules: Optional[Iterable[Rule]] = None) -> List[Finding]:
    """Check a source string; returns findings surviving suppressions."""
    directive = _FIXTURE_MODULE_RE.search(source)
    if directive is not None:
        module = directive.group(1)
    elif module is None:
        module = module_path_for(path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise LintError("%s: syntax error: %s" % (path, exc)) from exc
    ctx = FileContext(path, source, tree, module)
    per_line, whole_file = _suppressions(source)
    spans = _statement_spans(tree) if per_line else ()
    findings: List[Finding] = []
    for rule in (all_rules() if rules is None else rules):
        for finding in rule.check(ctx):
            span = _span_for(finding.line, spans) if per_line else None
            if not _suppressed(finding, per_line, whole_file, span):
                findings.append(finding)
    findings.sort(key=Finding.sort_key)
    return findings


def check_file(path: str, rules: Optional[Iterable[Rule]] = None) -> List[Finding]:
    """Check one file on disk."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    except OSError as exc:
        raise LintError("%s: %s" % (path, exc)) from exc
    return check_source(source, path=path, rules=rules)


def check_paths(paths: Iterable[str],
                rules: Optional[Iterable[Rule]] = None) -> List[Finding]:
    """Check files and directories (recursed for ``*.py``), sorted output."""
    import os

    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if d not in ("__pycache__", ".git") and not d.endswith(".egg-info"))
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        files.append(os.path.join(dirpath, filename))
        else:
            files.append(path)
    findings: List[Finding] = []
    for filename in files:
        findings.extend(check_file(filename, rules=rules))
    findings.sort(key=Finding.sort_key)
    return findings
