"""Entry point for ``python -m repro.devtools.schedlint``."""

import sys

from repro.devtools.schedlint.cli import main

if __name__ == "__main__":
    sys.exit(main())
