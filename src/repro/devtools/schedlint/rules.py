"""The determinism rules: SL001 — SL004, SL006 and SL007.

Each rule documents *which* property of the reproduction it protects; the
scopes mirror the doctrine stated in ``repro/units.py`` ("the only
floating-point values in the core simulator are derived metrics, never
state") and ``repro/sim/rng.py`` (all stochastic inputs are seeded).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from repro.devtools.schedlint import FileContext, Finding, Rule, register

# --- shared helpers ----------------------------------------------------------


def _import_map(tree: ast.Module) -> Dict[str, str]:
    """Map local names to fully qualified module/attribute paths.

    ``import time`` -> {"time": "time"}; ``import numpy as np`` ->
    {"np": "numpy"}; ``from datetime import datetime as dt`` ->
    {"dt": "datetime.datetime"}.  Only top-level and function-level imports
    are considered; that is where they occur in this codebase.
    """
    mapping: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                mapping[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                mapping[alias.asname or alias.name] = (
                    node.module + "." + alias.name)
    return mapping


def _qualified_name(node: ast.AST, imports: Dict[str, str]) -> Optional[str]:
    """Resolve a Name/Attribute chain to a dotted path using ``imports``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    root = imports.get(node.id, node.id)
    parts.append(root)
    return ".".join(reversed(parts))


# --- SL001: wall clock / entropy ---------------------------------------------

#: call targets that read the host's clock or entropy pool
_WALL_CLOCK = {
    "time.time": "reads the wall clock",
    "time.time_ns": "reads the wall clock",
    "time.monotonic": "reads the host clock",
    "time.monotonic_ns": "reads the host clock",
    "time.clock_gettime": "reads the host clock",
    "time.clock_gettime_ns": "reads the host clock",
    "datetime.datetime.now": "reads the wall clock",
    "datetime.datetime.utcnow": "reads the wall clock",
    "datetime.datetime.today": "reads the wall clock",
    "datetime.date.today": "reads the wall clock",
    "os.urandom": "reads the OS entropy pool",
    "os.getrandom": "reads the OS entropy pool",
    "uuid.uuid1": "depends on host clock and MAC address",
    "uuid.uuid4": "reads the OS entropy pool",
}


@register
class WallClockRule(Rule):
    """SL001: simulation code must never observe the host's clock or entropy.

    Simulated time is ``Simulator.now`` and nothing else; a single wall
    clock read makes runs irreproducible.  ``time.perf_counter`` is *not*
    flagged: it is the sanctioned way to measure how long an experiment
    took to compute, and may never feed simulation state.
    """

    code = "SL001"
    name = "wall-clock"
    summary = "wall-clock or entropy read inside the simulator"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imports = _import_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = _qualified_name(node.func, imports)
            if qualified is None:
                continue
            reason = _WALL_CLOCK.get(qualified)
            if reason is not None:
                yield ctx.finding(
                    node, self.code,
                    "%s() %s; simulation time is Simulator.now" % (qualified, reason))
            elif qualified.startswith("secrets."):
                yield ctx.finding(
                    node, self.code,
                    "%s() reads the OS entropy pool; use repro.sim.rng" % qualified)


# --- SL002: unseeded randomness ----------------------------------------------

#: the one module allowed to touch ``random`` directly
_RNG_HOME = "repro/sim/rng.py"


@register
class UnseededRandomRule(Rule):
    """SL002: all randomness flows through explicitly seeded generators.

    The module-level ``random.*`` functions share one hidden, unseeded
    global generator; calling them anywhere makes draw order — and hence
    whole simulations — depend on import order and prior callers.  Only
    ``repro.sim.rng`` (the seeded-stream factory) may use them.
    Constructing ``random.Random(seed)`` with an explicit seed is fine
    everywhere; ``random.Random()`` (no seed) and ``random.SystemRandom``
    are not.
    """

    code = "SL002"
    name = "unseeded-random"
    summary = "unseeded randomness outside repro.sim.rng"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        in_rng_home = ctx.in_module(_RNG_HOME)
        imports = _import_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = _qualified_name(node.func, imports)
            if qualified is None or not qualified.startswith("random."):
                continue
            tail = qualified[len("random."):]
            if tail == "SystemRandom":
                yield ctx.finding(
                    node, self.code,
                    "random.SystemRandom cannot be seeded; use repro.sim.rng.make_rng")
            elif tail == "Random":
                if not node.args and not node.keywords:
                    yield ctx.finding(
                        node, self.code,
                        "random.Random() without a seed is nondeterministic; "
                        "pass an explicit seed or use repro.sim.rng.make_rng")
            elif "." not in tail and not in_rng_home:
                yield ctx.finding(
                    node, self.code,
                    "random.%s() uses the shared unseeded global generator; "
                    "draw from repro.sim.rng.make_rng(seed, label) instead" % tail)


# --- SL003: unordered-set iteration ------------------------------------------

#: modules whose iteration order reaches scheduling decisions
_DISPATCH_SCOPE = ("repro/schedulers/", "repro/smp/", "repro/core/",
                   "repro/hsfq.py", "repro/cpu/")

#: calls whose result does not depend on the argument's iteration order
_ORDER_INSENSITIVE = {"sorted", "min", "max", "sum", "len", "any", "all",
                      "set", "frozenset"}


class _SetSymbols(ast.NodeVisitor):
    """Collect names and ``self.<attr>`` targets bound to set values."""

    def __init__(self) -> None:
        self.names: Set[str] = set()
        self.attrs: Set[str] = set()

    def _is_set_value(self, value: Optional[ast.AST]) -> bool:
        if isinstance(value, ast.Set) or isinstance(value, ast.SetComp):
            return True
        if (isinstance(value, ast.Call) and isinstance(value.func, ast.Name)
                and value.func.id in ("set", "frozenset")):
            return True
        return False

    def _is_set_annotation(self, annotation: Optional[ast.AST]) -> bool:
        if annotation is None:
            return False
        text = ast.dump(annotation)
        return ("'Set'" in text or "'set'" in text
                or "'FrozenSet'" in text or "'frozenset'" in text
                or "'MutableSet'" in text or "'AbstractSet'" in text)

    def _record(self, target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            self.names.add(target.id)
        elif (isinstance(target, ast.Attribute)
              and isinstance(target.value, ast.Name)
              and target.value.id == "self"):
            self.attrs.add(target.attr)

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._is_set_value(node.value):
            for target in node.targets:
                self._record(target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if self._is_set_value(node.value) or self._is_set_annotation(node.annotation):
            self._record(node.target)
        self.generic_visit(node)


@register
class SetIterationRule(Rule):
    """SL003: dispatch paths must not iterate over unordered sets.

    ``set`` iteration order depends on insertion history and hash
    randomization of the interpreter process; two identical simulations
    can diverge when a tie is broken by whichever element a set yields
    first.  In scheduler, hierarchy, machine, and SMP modules, iterate
    over lists/dicts (insertion-ordered) or wrap the set in ``sorted()``.

    The rule flags ``for``-loops and comprehensions whose iterable is a
    set literal, a ``set(...)``/``frozenset(...)`` call, a set
    comprehension, or a name / ``self.attr`` bound to a set *in the same
    file*.  A generator expression consumed whole by an order-insensitive
    reducer (``sorted``, ``min``, ``max``, ``sum``, ``len``, ``any``,
    ``all``, ``set``, ``frozenset``) is exempt.
    """

    code = "SL003"
    name = "set-iteration"
    summary = "iteration over an unordered set in a dispatch-path module"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_module(*_DISPATCH_SCOPE):
            return
        symbols = _SetSymbols()
        symbols.visit(ctx.tree)

        exempt_generators: Set[int] = set()
        for node in ast.walk(ctx.tree):
            if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                    and node.func.id in _ORDER_INSENSITIVE):
                for arg in node.args:
                    if isinstance(arg, ast.GeneratorExp):
                        exempt_generators.add(id(arg))

        def is_set_expr(expr: ast.AST) -> bool:
            if isinstance(expr, (ast.Set, ast.SetComp)):
                return True
            if (isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name)
                    and expr.func.id in ("set", "frozenset")):
                return True
            if isinstance(expr, ast.Name) and expr.id in symbols.names:
                return True
            if (isinstance(expr, ast.Attribute)
                    and isinstance(expr.value, ast.Name)
                    and expr.value.id == "self"
                    and expr.attr in symbols.attrs):
                return True
            return False

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For):
                if is_set_expr(node.iter):
                    yield ctx.finding(
                        node.iter, self.code,
                        "for-loop over an unordered set; iterate a list/dict "
                        "or wrap in sorted()")
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                if id(node) in exempt_generators:
                    continue
                for comp in node.generators:
                    if is_set_expr(comp.iter):
                        yield ctx.finding(
                            comp.iter, self.code,
                            "comprehension over an unordered set; iterate a "
                            "list/dict or wrap in sorted()")


# --- SL004: float tag arithmetic ---------------------------------------------

#: modules that manipulate SFQ tags or scheduler accounting state
_TAG_SCOPE = ("repro/core/", "repro/schedulers/", "repro/smp/", "repro/hsfq.py")

#: sanctioned exceptions inside the tag scope:
#: - core/tags.py *is* the tag-arithmetic strategy (its float mode is the
#:   subject of the EXP-AB4 ablation, selected explicitly by the caller);
#: - schedulers/fairqueue.py implements the WFQ-family baselines whose
#:   float rate-clock is the historical algorithm being reproduced.
_TAG_EXEMPT = ("repro/core/tags.py", "repro/schedulers/fairqueue.py")


@register
class FloatTagRule(Rule):
    """SL004: tag arithmetic stays integral (or ``Fraction``), never float.

    The fairness theorems are proved for exact arithmetic; a stray float
    literal or ``/`` true division silently converts a whole tag chain to
    drifting floats.  Tag modules must use integer math (``//``, helpers
    from ``repro.units``) or route ratios through
    ``repro.core.tags.TagMath``.  Derived *metrics* (utilization ratios
    and the like) are legitimate floats — mark those lines with
    ``# schedlint: disable=SL004`` and a word of justification.
    """

    code = "SL004"
    name = "float-tags"
    summary = "float literal or true division in a tag-arithmetic module"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_module(*_TAG_SCOPE) or ctx.in_module(*_TAG_EXEMPT):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Constant) and isinstance(node.value, float):
                yield ctx.finding(
                    node, self.code,
                    "float literal %r in a tag-arithmetic module; scheduler "
                    "state must stay integral" % (node.value,))
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                yield ctx.finding(
                    node, self.code,
                    "true division yields a float; use //, repro.units "
                    "helpers, or TagMath.ratio for tag math")
            elif isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Div):
                yield ctx.finding(
                    node, self.code,
                    "/= yields a float; use //= or TagMath for tag math")


# --- SL006: ad-hoc RNG construction in fault/workload code --------------------

#: modules whose randomness must derive from the campaign seed tree
_SEED_TREE_SCOPE = ("repro/faultlab/", "repro/workloads/")


@register
class AdHocRngRule(Rule):
    """SL006: faultlab and workload code draws from the campaign seed tree.

    A campaign derives one substream per cell and per fault from its root
    seed (``repro.sim.rng.derive_seed``); any ``random.Random(seed)``
    constructed ad hoc inside fault injectors or workloads sits outside
    that tree, so two cells can silently share draw sequences and a
    reproducer replayed in isolation sees different randomness than the
    campaign did.  SL002 already flags *unseeded* construction
    everywhere; this rule flags the *seeded* constructions SL002 allows,
    but only inside ``repro/faultlab/`` and ``repro/workloads/``.  Use
    ``repro.sim.rng.make_rng(seed, label)`` or ``Stream.rng(label)``.
    """

    code = "SL006"
    name = "ad-hoc-rng"
    summary = "RNG constructed outside the seed tree in faultlab/workloads"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_module(*_SEED_TREE_SCOPE):
            return
        imports = _import_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = _qualified_name(node.func, imports)
            if qualified != "random.Random":
                continue
            # Unseeded construction is SL002's finding; report each call
            # under exactly one rule.
            if node.args or node.keywords:
                yield ctx.finding(
                    node, self.code,
                    "random.Random(seed) bypasses the campaign seed tree; "
                    "derive the stream via repro.sim.rng.make_rng(seed, label) "
                    "or Stream.rng(label)")


# --- SL007: module-level mutable containers -----------------------------------

#: modules under this prefix are checked...
_MUTABLE_SCOPE = "repro/"
#: ...except the analyzers themselves, whose lookup tables are inert data
_MUTABLE_EXEMPT_SCOPE = "repro/devtools/"

#: sanctioned registries: populated by decorators/imports, never per-run
_MUTABLE_ALLOWLIST = frozenset([
    ("repro/hsfq.py", "_SCHEDULER_FACTORIES"),
    ("repro/cluster/placement.py", "PLACEMENTS"),
    ("repro/cluster/scenario.py", "CLUSTER_SCENARIOS"),
    ("repro/experiments/__main__.py", "EXPERIMENTS"),
    ("repro/faultlab/faults.py", "FAULTS"),
    ("repro/faultlab/workloads.py", "WORKLOADS"),
    ("repro/faultlab/workloads.py", "PERFKIT_MIRRORS"),
    ("repro/perfkit/scenarios.py", "SCENARIOS"),
    ("repro/threads/states.py", "ALLOWED_TRANSITIONS"),
])

#: constructors whose result is a mutable container
_MUTABLE_CTORS = frozenset(
    ["dict", "list", "set", "defaultdict", "deque", "OrderedDict",
     "Counter"])


@register
class ModuleMutableRule(Rule):
    """SL007: no new module-level mutable containers in ``repro/``.

    A module-level dict/list/set is shared, hidden state: schedflow's
    SF401/SF405 exist because such containers leak across worker-pool
    and emit boundaries, and every one of them is a place where two
    simulations can interfere.  Bind tuples or frozensets at module
    level; keep mutable accumulators on instances.  Genuine registries
    (populated once by decorators at import time) live in the explicit
    allowlist, or — for observability modules — carry a reviewed
    ``# schedlint: disable=SL007`` with a word of justification.
    """

    code = "SL007"
    name = "module-mutable"
    summary = "module-level mutable container outside the allowlist"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_module(_MUTABLE_SCOPE):
            return
        if ctx.in_module(_MUTABLE_EXEMPT_SCOPE):
            return
        imports = _import_map(ctx.tree)

        def is_mutable(value: Optional[ast.AST]) -> bool:
            if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                                  ast.SetComp, ast.DictComp)):
                return True
            if isinstance(value, ast.Call):
                qualified = _qualified_name(value.func, imports)
                if (qualified is not None
                        and qualified.split(".")[-1] in _MUTABLE_CTORS):
                    return True
            return False

        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                targets, value = [stmt.target], stmt.value
            else:
                continue
            if not is_mutable(value):
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if target.id.startswith("__"):   # __all__ and friends
                    continue
                if (ctx.module, target.id) in _MUTABLE_ALLOWLIST:
                    continue
                yield ctx.finding(
                    stmt, self.code,
                    "module-level mutable container %r; bind a tuple/"
                    "frozenset, keep the accumulator on an instance, or "
                    "register the name in the SL007 allowlist"
                    % target.id)
