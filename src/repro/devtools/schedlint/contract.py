"""SL005: static conformance to the ``LeafScheduler`` contract.

``repro/schedulers/base.py`` spells out the lifecycle every leaf scheduler
must honour; the runtime half is checked by the conformance test suite and
by SCHEDSAN.  This rule catches the static half at review time: a subclass
that forgets to override part of the required method set, renames a
parameter (breaking keyword callers and the documented signatures), or
ships without an ``algorithm`` name would otherwise surface as a confusing
``NotImplementedError`` deep inside a simulation.

Inheritance is resolved *within the checked file*: a concrete scheduler may
take any required method from an in-file base class or mixin (see
``repro/schedulers/fairqueue.py``).  Classes whose names start with an
underscore are treated as abstract bases and are themselves not required to
be complete.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.devtools.schedlint import FileContext, Finding, Rule, register

#: method name -> required positional parameter names (including ``self``)
REQUIRED_METHODS: Dict[str, Tuple[str, ...]] = {
    "add_thread": ("self", "thread"),
    "remove_thread": ("self", "thread"),
    "on_runnable": ("self", "thread", "now"),
    "on_block": ("self", "thread", "now"),
    "pick_next": ("self", "now"),
    "charge": ("self", "thread", "work", "now"),
    "has_runnable": ("self",),
}

#: optional overrides still checked for signature fidelity when present
OPTIONAL_METHODS: Dict[str, Tuple[str, ...]] = {
    "quantum_for": ("self", "thread"),
    "should_preempt": ("self", "current", "candidate", "now"),
}

_BASE_NAME = "LeafScheduler"


def _base_names(node: ast.ClassDef) -> List[str]:
    names = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


class _ClassInfo:
    __slots__ = ("node", "bases", "methods", "algorithm")

    def __init__(self, node: ast.ClassDef) -> None:
        self.node = node
        self.bases = _base_names(node)
        self.methods: Dict[str, ast.FunctionDef] = {}
        self.algorithm: Optional[str] = None
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.methods[stmt.name] = stmt  # type: ignore[assignment]
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and target.id == "algorithm":
                        if isinstance(stmt.value, ast.Constant) and isinstance(
                                stmt.value.value, str):
                            self.algorithm = stmt.value.value
                        else:
                            self.algorithm = "<dynamic>"
            elif isinstance(stmt, ast.AnnAssign):
                if (isinstance(stmt.target, ast.Name)
                        and stmt.target.id == "algorithm"
                        and stmt.value is not None):
                    if isinstance(stmt.value, ast.Constant) and isinstance(
                            stmt.value.value, str):
                        self.algorithm = stmt.value.value
                    else:
                        self.algorithm = "<dynamic>"


def _positional_params(func: ast.FunctionDef) -> Tuple[str, ...]:
    args = func.args
    return tuple(arg.arg for arg in args.posonlyargs + args.args)


@register
class LeafContractRule(Rule):
    """SL005: every concrete ``LeafScheduler`` subclass implements the
    full required-method set with the documented signatures and names its
    ``algorithm``."""

    code = "SL005"
    name = "leaf-contract"
    summary = "LeafScheduler subclass departs from the contract"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        classes: Dict[str, _ClassInfo] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                classes[node.name] = _ClassInfo(node)

        # The defining module is the contract itself, not a subclass.
        if ctx.in_module("repro/schedulers/base.py"):
            return

        def is_leaf_subclass(name: str, seen: Optional[set] = None) -> bool:
            if name == _BASE_NAME:
                return True
            info = classes.get(name)
            if info is None:
                return False
            if seen is None:
                seen = set()
            if name in seen:
                return False
            seen.add(name)
            return any(is_leaf_subclass(base, seen) for base in info.bases)

        def resolve(
                name: str, seen: Optional[set] = None,
        ) -> Tuple[Dict[str, ast.FunctionDef], Optional[str]]:
            """Depth-first, left-to-right method/attribute resolution over
            the in-file class graph (an MRO approximation sufficient for
            this codebase's single-file hierarchies)."""
            methods: Dict[str, ast.FunctionDef] = {}
            algorithm: Optional[str] = None
            info = classes.get(name)
            if info is None:
                return methods, algorithm
            if seen is None:
                seen = set()
            if name in seen:
                return methods, algorithm
            seen.add(name)
            methods.update(info.methods)
            algorithm = info.algorithm
            for base in info.bases:
                base_methods, base_algorithm = resolve(base, seen)
                for method_name, func in base_methods.items():
                    methods.setdefault(method_name, func)
                if algorithm is None:
                    algorithm = base_algorithm
            return methods, algorithm

        for name, info in sorted(classes.items()):
            if name == _BASE_NAME or not is_leaf_subclass(name):
                continue
            if name.startswith("_"):
                continue  # abstract base / mixin by convention
            methods, algorithm = resolve(name)

            for method_name, expected in REQUIRED_METHODS.items():
                func = methods.get(method_name)
                if func is None:
                    yield ctx.finding(
                        info.node, self.code,
                        "%s does not implement required LeafScheduler method "
                        "%s(%s)" % (name, method_name, ", ".join(expected[1:])))
                    continue
                yield from self._check_signature(ctx, name, func, expected)

            for method_name, expected in OPTIONAL_METHODS.items():
                func = info.methods.get(method_name)
                if func is not None:
                    yield from self._check_signature(ctx, name, func, expected)

            if algorithm is None or algorithm == "abstract":
                yield ctx.finding(
                    info.node, self.code,
                    "%s must define a non-'abstract' `algorithm` class "
                    "attribute (used in experiment output)" % name)

    def _check_signature(self, ctx: FileContext, class_name: str,
                         func: ast.FunctionDef,
                         expected: Tuple[str, ...]) -> Iterator[Finding]:
        if isinstance(func, ast.AsyncFunctionDef):
            yield ctx.finding(
                func, self.code,
                "%s.%s must not be async: the machine calls it synchronously"
                % (class_name, func.name))
            return
        actual = _positional_params(func)
        if actual != expected:
            yield ctx.finding(
                func, self.code,
                "%s.%s has signature (%s); the contract requires (%s)"
                % (class_name, func.name, ", ".join(actual),
                   ", ".join(expected)))
        if func.args.vararg is not None or func.args.kwarg is not None:
            yield ctx.finding(
                func, self.code,
                "%s.%s must not use *args/**kwargs; the contract signature "
                "is fixed" % (class_name, func.name))
