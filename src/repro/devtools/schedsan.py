"""SCHEDSAN: an opt-in runtime sanitizer for scheduler invariants.

Set ``REPRO_SCHEDSAN=1`` and every machine (uniprocessor and SMP) wraps
its top-level scheduler in an *auditing observer*.  The wrapper delegates
every call unchanged — it never mutates tags, queues, or eligibility — and
after each call verifies the invariants the paper's correctness argument
rests on:

* **virtual-time monotonicity** — no internal node's SFQ virtual time
  ever decreases;
* **start/finish tag rules** — a newly runnable node is stamped
  ``S = max(v, F)`` exactly, and a charge of ``l`` at weight ``w``
  advances ``F`` to exactly ``S + l/w`` (computed with the queue's own
  :class:`~repro.core.tags.TagMath`, so both exact and float modes
  verify);
* **dispatch protocol** — ``charge`` follows a matching ``pick_next``
  (at most one charge per dispatch), charged work is non-negative, and
  ``pick_next`` returns a runnable thread without dequeuing it;
* **no lost wakeups** — after ``thread_runnable`` the thread's leaf (and
  the hierarchy as a whole) reports runnable work;
* **work conservation** — a scheduler claiming runnable work must
  produce a thread when asked;
* **dormant weight changes** (paper §3) — changing a node's weight while
  it is dormant must not warp its recorded start/finish tags (and hence
  v(t)); the new weight may only take effect at the next stamping.  The
  static twin of this rule is schedflow's SF204 (direct ``.weight =``
  stores bypassing ``set_weight``): mutations the sanitizer can observe
  are exactly the sanctioned ones.

Violations are reported with the offending node path and the simulation
time.  By default the first violation raises :class:`SchedsanError` (a
:class:`~repro.errors.SchedulingError`, so machine-level expectations keep
holding); set ``REPRO_SCHEDSAN_MODE=collect`` to accumulate violations on
``machine.scheduler.violations`` instead and keep running.

The sanitizer is an observer, not a referee of leaf-internal policy: it
checks the *contract* every leaf must honour, not whether EDF picked the
right deadline.  Leaf-policy correctness stays with the conformance tests.

Worker isolation (the SF4xx runtime twin)
-----------------------------------------

Under ``REPRO_SCHEDSAN=1`` faultlab additionally brackets every pooled
cell — and the campaign's merge — with an :class:`IsolationGuard`:
:func:`shared_state_fingerprint` snapshots the process-wide registries
(fault kinds, workloads), the event bus's subscriber count, and the
global ``random`` state before the work, and :meth:`IsolationGuard.verify`
asserts the snapshot still holds afterwards.  What schedflow's
SF401—SF406 prove *statically* cannot leak across a pool boundary, the
guard asserts *dynamically* did not leak; results still flow back only
through return values, so guarded reports stay byte-identical to
unguarded ones.
"""

from __future__ import annotations

import hashlib
import os
import random
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro.cpu.interface import TopScheduler
from repro.errors import SchedulingError
from repro.obs import events as obs

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.node import InternalNode, LeafNode, Node
    from repro.threads.thread import SimThread

#: environment switch: any non-empty value other than "0" enables SCHEDSAN
ENV_ENABLE = "REPRO_SCHEDSAN"
#: "raise" (default) or "collect"
ENV_MODE = "REPRO_SCHEDSAN_MODE"

#: cap on collected violations, so a hot loop cannot exhaust memory
MAX_COLLECTED = 1000


class SchedsanError(SchedulingError):
    """A scheduler invariant violation detected by SCHEDSAN."""


class Violation:
    """One detected invariant violation."""

    __slots__ = ("rule", "path", "time", "message")

    def __init__(self, rule: str, path: str, time: int, message: str) -> None:
        self.rule = rule
        self.path = path
        self.time = time
        self.message = message

    def __repr__(self) -> str:
        return "Violation(%s at %s, t=%d)" % (self.rule, self.path, self.time)

    def __str__(self) -> str:
        return "SCHEDSAN[%s] at node %s, t=%dns: %s" % (
            self.rule, self.path, self.time, self.message)


def enabled() -> bool:
    """True when the ``REPRO_SCHEDSAN`` environment variable turns us on."""
    return os.environ.get(ENV_ENABLE, "") not in ("", "0")


def maybe_wrap(scheduler: TopScheduler) -> TopScheduler:
    """Wrap ``scheduler`` in a :class:`SchedsanScheduler` when enabled.

    Idempotent: an already-wrapped scheduler is returned unchanged, so a
    machine handed a sanitized scheduler does not double-audit.
    """
    if not enabled() or isinstance(scheduler, SchedsanScheduler):
        return scheduler
    return SchedsanScheduler(scheduler)


class SchedsanScheduler(TopScheduler):
    """Auditing proxy around any :class:`TopScheduler`.

    Generic dispatch-protocol checks apply to every scheduler; the
    tree-walking SFQ audits engage when the inner scheduler exposes a
    scheduling structure (i.e. is a
    :class:`~repro.core.hierarchy.HierarchicalScheduler`).
    """

    def __init__(self, inner: TopScheduler, mode: Optional[str] = None) -> None:
        self._inner = inner
        if mode is None:
            mode = os.environ.get(ENV_MODE, "raise")
        if mode not in ("raise", "collect"):
            raise ValueError("unknown SCHEDSAN mode %r" % (mode,))
        self._mode = mode
        #: violations found so far (all of them in collect mode, the
        #: fatal one in raise mode)
        self.violations: List[Violation] = []
        self._clock: Callable[[], int] = lambda: 0
        #: tids of threads picked but not yet charged
        self._in_service: Dict[int, str] = {}
        #: node_id -> last observed virtual time, per internal node
        self._last_v: Dict[int, object] = {}
        #: node_id -> (weight, runnable, S, F) at the last sweep; drives
        #: the dormant-weight-change invariant
        self._node_snapshots: Dict[int, Tuple[int, bool, object, object]] = {}

    # --- plumbing ---------------------------------------------------------

    @property
    def inner(self) -> TopScheduler:
        """The wrapped scheduler."""
        return self._inner

    @property
    def clock(self) -> Callable[[], int]:
        """Simulation clock; installed by the machine, shared with the
        wrapped scheduler when it wants one."""
        return self._clock

    @clock.setter
    def clock(self, fn: Callable[[], int]) -> None:
        self._clock = fn
        if hasattr(self._inner, "clock"):
            self._inner.clock = fn  # type: ignore[attr-defined]

    def __getattr__(self, name: str) -> Any:
        # Delegate anything beyond the TopScheduler protocol (e.g.
        # ``structure``, ``preempt_policy``, ``leaf_scheduler``).
        return getattr(self._inner, name)

    def _violate(self, rule: str, path: str, now: Optional[int],
                 message: str) -> None:
        time = self._clock() if now is None else now
        violation = Violation(rule, path, time, message)
        if obs.BUS.active:
            obs.BUS.emit(obs.VIOLATION, time, rule=rule, node=path,
                         message=message)
        if len(self.violations) < MAX_COLLECTED:
            self.violations.append(violation)
        if self._mode == "raise":
            raise SchedsanError(str(violation))

    # --- tree helpers ------------------------------------------------------

    def _structure(self) -> Any:
        return getattr(self._inner, "structure", None)

    def _leaf_of(self, thread: "SimThread") -> Any:
        """The leaf scheduler serving ``thread``, when discoverable."""
        leaf = getattr(thread, "leaf", None)
        if leaf is not None:
            return leaf.scheduler
        return getattr(self._inner, "leaf_scheduler", None)

    def _leaf_path(self, thread: "SimThread") -> str:
        leaf = getattr(thread, "leaf", None)
        if leaf is not None:
            return leaf.path
        return "/"

    def _ancestry(
            self, thread: "SimThread",
    ) -> List[Tuple["Node", "InternalNode"]]:
        """(node, parent) pairs from the thread's leaf up to the root."""
        pairs: List[Tuple["Node", "InternalNode"]] = []
        node = getattr(thread, "leaf", None)
        if node is None or self._structure() is None:
            return pairs
        while node.parent is not None:
            pairs.append((node, node.parent))
            node = node.parent
        return pairs

    def _check_virtual_time(self, parent: "InternalNode",
                            now: Optional[int]) -> None:
        v = parent.queue.virtual_time
        last = self._last_v.get(parent.node_id)
        if last is not None and v < last:  # type: ignore[operator]
            self._violate(
                "virtual-time-monotonicity", parent.path, now,
                "virtual time moved backwards: %r -> %r" % (last, v))
        self._last_v[parent.node_id] = v
        self._check_dormant_weights(parent, now)

    def _check_dormant_weights(self, parent: "InternalNode",
                               now: Optional[int]) -> None:
        """Paper §3: a weight change while a node is dormant must not warp
        its recorded tags.

        Each sweep snapshots every child's ``(weight, runnable, S, F)``.
        If two consecutive observations both find the child dormant but
        the weight changed *and* the tags moved, something recomputed
        ``S``/``F`` eagerly from the new weight — the warp the paper
        forbids (the change may only take effect at the next stamping).
        Cross-link: schedflow's SF204 flags the unsanctioned ``.weight``
        stores that make such warps invisible to this check.
        """
        queue = parent.queue
        for child in parent.children.values():
            if child not in queue:
                self._node_snapshots.pop(child.node_id, None)
                continue
            weight = child.weight
            runnable = queue.is_runnable(child)
            start = queue.start_tag(child)
            finish = queue.finish_tag(child)
            previous = self._node_snapshots.get(child.node_id)
            if previous is not None:
                old_weight, was_runnable, old_start, old_finish = previous
                if (not runnable and not was_runnable
                        and weight != old_weight
                        and (start != old_start or finish != old_finish)):
                    self._violate(
                        "dormant-weight-warp", child.path, now,
                        "weight changed %d -> %d while dormant and the "
                        "tags warped (S: %r -> %r, F: %r -> %r); dormant "
                        "weight changes take effect at the next stamping, "
                        "never retroactively"
                        % (old_weight, weight, old_start, start,
                           old_finish, finish))
            self._node_snapshots[child.node_id] = (
                weight, runnable, start, finish)

    def _sweep_virtual_time(self, thread: "SimThread",
                            now: Optional[int]) -> None:
        for __, parent in self._ancestry(thread):
            self._check_virtual_time(parent, now)

    # --- TopScheduler protocol, audited -----------------------------------

    def admit(self, thread: "SimThread") -> None:
        self._inner.admit(thread)

    def retire(self, thread: "SimThread", now: int) -> None:
        ancestry = self._ancestry(thread)
        self._inner.retire(thread, now)
        self._in_service.pop(thread.tid, None)
        for __, parent in ancestry:
            self._check_virtual_time(parent, now)

    def thread_runnable(self, thread: "SimThread", now: int) -> None:
        ancestry = self._ancestry(thread)
        before = []
        for node, parent in ancestry:
            in_queue = node in parent.queue
            before.append((
                node.runnable,
                parent.queue.finish_tag(node) if in_queue else None,
                parent.queue.virtual_time,
            ))
        self._inner.thread_runnable(thread, now)

        leaf_sched = self._leaf_of(thread)
        if leaf_sched is not None and not leaf_sched.has_runnable():
            self._violate(
                "lost-wakeup", self._leaf_path(thread), now,
                "thread %r was made runnable but its leaf scheduler reports "
                "no runnable work" % (thread.name,))
        if not self._inner.has_runnable():
            self._violate(
                "lost-wakeup", self._leaf_path(thread), now,
                "thread %r was made runnable but the scheduler reports no "
                "runnable work" % (thread.name,))

        for (node, parent), (was_runnable, finish_before, v_before) in zip(
                ancestry, before):
            self._check_virtual_time(parent, now)
            if was_runnable or not node.runnable:
                continue  # not newly stamped by this wakeup
            expected = finish_before
            if expected is None or v_before > expected:  # type: ignore[operator]
                expected = v_before
            start = parent.queue.start_tag(node)
            if start != expected:
                self._violate(
                    "start-tag-rule", node.path, now,
                    "stamped S=%r; the SFQ rule S = max(v, F) requires %r "
                    "(v=%r, F=%r)" % (start, expected, v_before, finish_before))

    def thread_blocked(self, thread: "SimThread", now: int) -> None:
        self._inner.thread_blocked(thread, now)
        self._sweep_virtual_time(thread, now)

    def pick_next(self, now: int) -> Optional["SimThread"]:
        had_runnable = self._inner.has_runnable()
        thread = self._inner.pick_next(now)
        if thread is None:
            if had_runnable:
                self._violate(
                    "work-conservation", "/", now,
                    "scheduler reported runnable work but pick_next "
                    "returned None")
            return None
        if not thread.is_runnable:
            self._violate(
                "picked-non-runnable", self._leaf_path(thread), now,
                "pick_next returned %r in state %s" % (
                    thread.name, thread.state.value))
        leaf_sched = self._leaf_of(thread)
        if leaf_sched is not None and not leaf_sched.has_runnable():
            self._violate(
                "pick-dequeued", self._leaf_path(thread), now,
                "pick_next of %r left its leaf scheduler empty: the picked "
                "thread must stay queued until charge" % (thread.name,))
        self._in_service[thread.tid] = self._leaf_path(thread)
        self._sweep_virtual_time(thread, now)
        return thread

    def charge(self, thread: "SimThread", work: int, now: int) -> None:
        if work < 0:
            self._violate(
                "negative-work", self._leaf_path(thread), now,
                "charge of %d instructions for %r" % (work, thread.name))
        if thread.tid not in self._in_service:
            self._violate(
                "charge-without-dispatch", self._leaf_path(thread), now,
                "charge of %d for %r without a matching pick_next (the "
                "contract is exactly one charge per dispatch)"
                % (work, thread.name))
        else:
            del self._in_service[thread.tid]

        ancestry = self._ancestry(thread)
        before = []
        for node, parent in ancestry:
            in_queue = node in parent.queue
            before.append((
                parent.queue.start_tag(node) if in_queue else None,
                node.weight,
                parent.queue.virtual_time,
            ))
        self._inner.charge(thread, work, now)
        for (node, parent), (start_before, weight, __) in zip(ancestry, before):
            self._check_virtual_time(parent, now)
            if start_before is None:
                continue
            expected = parent.queue.tags.advance(start_before, work, weight)
            finish = parent.queue.finish_tag(node)
            if finish != expected:
                self._violate(
                    "finish-tag-rule", node.path, now,
                    "charge of %d at weight %d advanced F to %r; the SFQ "
                    "rule F = S + l/w requires %r (S=%r)"
                    % (work, weight, finish, expected, start_before))

    def quantum_for(self, thread: "SimThread") -> Optional[int]:
        return self._inner.quantum_for(thread)

    def should_preempt(self, current: "SimThread", candidate: "SimThread",
                       now: int) -> bool:
        return self._inner.should_preempt(current, candidate, now)

    def has_runnable(self) -> bool:
        return self._inner.has_runnable()

    @property
    def decision_depth(self) -> int:
        return self._inner.decision_depth


# --- worker isolation: the runtime twin of schedflow SF401—SF406 -------------


class IsolationError(SchedsanError):
    """Shared process state changed across a worker/merge boundary."""


def shared_state_fingerprint() -> Tuple[Tuple[str, object], ...]:
    """Snapshot every process-wide surface a pool worker could dirty.

    The imports are lazy (and the fingerprint degrades gracefully when
    faultlab is absent) so this module keeps its zero-dependency import
    graph; the labels name what leaked when a mismatch is reported.
    """
    entries: List[Tuple[str, object]] = []
    try:
        from repro.faultlab.faults import FAULTS
        entries.append(("faultlab.faults.FAULTS", tuple(sorted(FAULTS))))
    except ImportError:  # pragma: no cover - faultlab is always present
        pass
    try:
        from repro.faultlab.workloads import PERFKIT_MIRRORS, WORKLOADS
        entries.append(
            ("faultlab.workloads.WORKLOADS", tuple(sorted(WORKLOADS))))
        entries.append(("faultlab.workloads.PERFKIT_MIRRORS",
                        tuple(sorted(PERFKIT_MIRRORS))))
    except ImportError:  # pragma: no cover - faultlab is always present
        pass
    entries.append(("obs.events.BUS.subscribers",
                    obs.BUS.subscriber_count()))
    state = repr(
        random.getstate())  # schedlint: disable=SL002,SF403 (reads only)
    entries.append(("random.global_state",
                    hashlib.sha256(state.encode("utf-8")).hexdigest()))
    return tuple(entries)


class IsolationGuard:
    """Assert that a block of work left shared process state untouched.

    Snapshot at construction, :meth:`verify` after the work::

        guard = IsolationGuard("cell baseline+none")
        result = run_cell(spec)
        guard.verify()

    An object (not a module global) on purpose: a module-level snapshot
    would itself be the shared mutable state SF401 bans.
    """

    __slots__ = ("context", "_before")

    def __init__(self, context: str) -> None:
        self.context = context
        self._before = shared_state_fingerprint()

    def verify(self) -> None:
        """Raise :class:`IsolationError` naming every leaked surface."""
        after = shared_state_fingerprint()
        if after == self._before:
            return
        before_map = dict(self._before)
        leaked = sorted(label for label, value in after
                        if before_map.get(label) != value)
        raise IsolationError(
            "SCHEDSAN[worker-isolation] %s: shared state mutated across "
            "the boundary: %s; worker results must flow back through "
            "return values only" % (self.context, ", ".join(leaked)))
