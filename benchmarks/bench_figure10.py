"""EXP-F10 — regenerate Figure 10 (SFQ as a leaf scheduler, MPEG 1:2)."""

import pytest

from repro.experiments import figure10
from repro.units import SECOND

from benchmarks.conftest import run_once


def test_figure10_frame_ratio(benchmark):
    result = run_once(benchmark, figure10.run, duration=20 * SECOND)
    print()
    print(result.render())
    # paper: the weight-10 player decodes twice the frames of weight-5,
    # in every interval
    for ratio in result.series["ratio"]:
        assert ratio == pytest.approx(2.0, rel=0.12)
