"""Wall-clock microbenchmarks of this implementation's scheduling path.

The paper's Figure 7 measures kernel overhead on hardware; the cost-model
benches in bench_figure7.py reproduce its *shape*.  These benches ground
the cost model in reality: the measured wall-clock cost of a pick/charge
round trip through the SFQ queue and the full hierarchy, plus the price of
exact Fraction tags versus floats (EXP-AB4's implementation side).
"""

import pytest

from repro.core.hierarchy import HierarchicalScheduler
from repro.core.sfq import SfqQueue
from repro.core.structure import SchedulingStructure
from repro.core.tags import TagMath
from repro.schedulers.sfq_leaf import SfqScheduler
from repro.schedulers.svr4 import Svr4TimeSharing
from repro.threads.segments import SegmentListWorkload
from repro.threads.states import ThreadState
from repro.threads.thread import SimThread


class Entity:
    __slots__ = ("weight",)

    def __init__(self, weight):
        self.weight = weight


def make_queue(entities: int, exact: bool) -> SfqQueue:
    queue = SfqQueue(TagMath(exact=exact))
    for index in range(entities):
        entity = Entity(1 + index % 7)
        queue.add(entity)
        queue.set_runnable(entity)
    return queue


@pytest.mark.parametrize("exact", [True, False],
                         ids=["fraction-tags", "float-tags"])
def test_sfq_pick_charge_roundtrip(benchmark, exact):
    queue = make_queue(8, exact)

    def roundtrip():
        entity = queue.pick()
        queue.charge(entity, 10_000)

    benchmark(roundtrip)


@pytest.mark.parametrize("entities", [2, 8, 32, 128])
def test_sfq_scaling_with_queue_size(benchmark, entities):
    queue = make_queue(entities, True)

    def roundtrip():
        entity = queue.pick()
        queue.charge(entity, 10_000)

    benchmark(roundtrip)


def build_hierarchy(depth: int):
    structure = SchedulingStructure()
    parent = structure.root
    for level in range(depth):
        parent = structure.mknod("l%d" % level, 1, parent=parent)
    leaf = structure.mknod("leaf", 1, parent=parent,
                           scheduler=SfqScheduler())
    scheduler = HierarchicalScheduler(structure)
    threads = []
    for index in range(4):
        thread = SimThread("t%d" % index, SegmentListWorkload([]))
        leaf.attach_thread(thread)
        thread.transition(ThreadState.RUNNABLE)
        scheduler.thread_runnable(thread, 0)
        threads.append(thread)
    return scheduler


@pytest.mark.parametrize("depth", [0, 5, 15, 30])
def test_hierarchical_decision_by_depth(benchmark, depth):
    """The Figure 7(b) quantity, measured in real nanoseconds."""
    scheduler = build_hierarchy(depth)

    def decision():
        thread = scheduler.pick_next(0)
        scheduler.charge(thread, 10_000, 0)

    benchmark(decision)


def test_svr4_pick_charge(benchmark):
    scheduler = Svr4TimeSharing()
    threads = []
    for index in range(8):
        thread = SimThread("t%d" % index, SegmentListWorkload([]))
        thread.transition(ThreadState.RUNNABLE)
        scheduler.add_thread(thread)
        scheduler.on_runnable(thread, 0)
        threads.append(thread)

    def roundtrip():
        thread = scheduler.pick_next(0)
        scheduler.charge(thread, 10_000, 0)

    benchmark(roundtrip)


@pytest.mark.parametrize("num_cpus", [1, 2, 4])
def test_smp_simulation_throughput(benchmark, num_cpus):
    """Wall-clock cost of one simulated second on the SMP machine."""
    from repro.core.hierarchy import HierarchicalScheduler
    from repro.core.structure import SchedulingStructure
    from repro.sim.engine import Simulator
    from repro.smp.machine import SmpMachine
    from repro.units import MS, SECOND
    from repro.workloads.dhrystone import DhrystoneWorkload

    def run_one_simulated_second():
        structure = SchedulingStructure()
        leaf = structure.mknod("/apps", 1, scheduler=SfqScheduler())
        machine = SmpMachine(Simulator(), HierarchicalScheduler(structure),
                             num_cpus=num_cpus, capacity_ips=1_000_000,
                             default_quantum=10 * MS)
        for index in range(2 * num_cpus):
            thread = SimThread("t%d" % index,
                               DhrystoneWorkload(loop_cost=100, batch=10))
            leaf.attach_thread(thread)
            machine.spawn(thread)
        machine.run_until(SECOND)
        return machine.dispatches

    dispatches = benchmark(run_one_simulated_second)
    assert dispatches > 0


def test_simulation_event_throughput(benchmark):
    """Events/second of the discrete-event core (engine + machine)."""
    from tests.conftest import Harness
    from repro.units import SECOND

    def run_one_simulated_second():
        harness = Harness()
        for index in range(4):
            harness.spawn_dhrystone("t%d" % index)
        harness.machine.run_until(SECOND)
        return harness.machine.stats.dispatches

    dispatches = benchmark(run_one_simulated_second)
    assert dispatches > 0
