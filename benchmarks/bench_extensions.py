"""Extension experiments beyond the paper (DESIGN.md §4, EXT rows)."""

import pytest

from repro.experiments import extension_smp
from repro.units import SECOND

from benchmarks.conftest import run_once


def test_ext_smp_weight_regimes(benchmark):
    result = run_once(benchmark, extension_smp.run, duration=10 * SECOND)
    print()
    print(result.render())
    rows = {(row[0], row[1]): row[3] for row in result.rows}
    # feasible weights: exact thirds of the 2-CPU capacity
    for name in ("t0", "t1", "t2"):
        assert rows[("feasible 1:1:1", name)] == pytest.approx(2 / 3,
                                                               abs=0.01)
    # infeasible weight: the heavy thread saturates at one CPU and the
    # light threads split the other (the SMP-SFQ anomaly)
    assert rows[("infeasible 10:1:1", "t0")] == pytest.approx(1.0,
                                                              abs=0.01)
    assert rows[("infeasible 10:1:1", "t1")] == pytest.approx(0.5,
                                                              abs=0.05)
