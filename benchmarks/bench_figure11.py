"""EXP-F11 — regenerate Figure 11 (dynamic bandwidth allocation)."""

import pytest

from repro.experiments import figure11
from repro.units import SECOND

from benchmarks.conftest import run_once


def test_figure11_dynamic_weights(benchmark):
    result = run_once(benchmark, figure11.run, time_scale=SECOND)
    print()
    print(result.render())
    # paper: throughput ratio tracks the weight script 4:4 -> 4:2 -> 0:2
    # -> 4:2 -> 8:2 -> 8:4 -> 4:4
    for row in result.rows:
        expected, measured = row[3], row[4]
        if expected == 0:
            assert measured < 0.1
        else:
            assert measured == pytest.approx(expected, rel=0.1)
