"""EXP-F8 — regenerate Figure 8 (hierarchical partitioning & isolation)."""

import pytest

from repro.experiments import figure8
from repro.units import SECOND

from benchmarks.conftest import run_once


def test_figure8a_partitioning(benchmark):
    result = run_once(benchmark, figure8.run_partitioning,
                      duration=20 * SECOND)
    print()
    print(result.render())
    from repro.analysis.stats import mean
    ratios = result.series["ratio"]
    # paper: SFQ-1 : SFQ-2 aggregate throughput 1:3 per interval, despite
    # the fluctuating SVR4 background
    assert mean(ratios) == pytest.approx(3.0, rel=0.05)
    assert all(r == pytest.approx(3.0, rel=0.25) for r in ratios)


def test_figure8b_isolation(benchmark):
    result = run_once(benchmark, figure8.run_isolation,
                      duration=20 * SECOND)
    print()
    print(result.render())
    # paper: equal weights, heterogeneous leaves -> equal node throughput
    assert all(r == pytest.approx(1.0, rel=0.05)
               for r in result.series["ratio"])
