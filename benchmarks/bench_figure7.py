"""EXP-F7 — regenerate Figure 7 (hierarchical scheduling overhead)."""

from repro.experiments import figure7
from repro.units import SECOND

from benchmarks.conftest import run_once


def test_figure7a_thread_sweep(benchmark):
    result = run_once(benchmark, figure7.run_thread_sweep,
                      max_threads=20, duration=5 * SECOND)
    print()
    print(result.render())
    # paper: throughput within 1% of the unmodified kernel
    assert min(result.series["ratio"]) > 0.99


def test_figure7b_depth_sweep(benchmark):
    result = run_once(benchmark, figure7.run_depth_sweep,
                      max_depth=30, step=5, duration=5 * SECOND)
    print()
    print(result.render())
    ratios = result.series["ratio"]
    # paper: within 0.2% across 0..30 interposed levels, monotone cost
    assert min(ratios) > 0.997
    assert ratios == sorted(ratios, reverse=True)
