"""Benchmark helpers.

Every paper figure has one bench module that regenerates it at full scale
(``pytest benchmarks/ --benchmark-only``).  The pytest-benchmark timing
measures the cost of regenerating the figure; each bench also asserts the
paper's *shape* so a regression in behaviour — not just speed — fails the
run.  Rendered tables are printed (visible with ``-s``).
"""

from __future__ import annotations


def run_once(benchmark, func, *args, **kwargs):
    """Run a heavy experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
