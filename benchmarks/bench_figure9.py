"""EXP-F9 — regenerate Figure 9 (hard real-time latency and slack)."""

from repro.experiments import figure9
from repro.units import SECOND

from benchmarks.conftest import run_once


def test_figure9_latency_and_slack(benchmark):
    result = run_once(benchmark, figure9.run, duration=20 * SECOND)
    print()
    print(result.name)
    for note in result.notes:
        print("note:", note)
    # paper shape: latency bounded by ~the scheduling quantum (we allow
    # two quanta: a competing class's quantum plus a short decode), and
    # the slack is always positive (no deadline missed)
    assert max(result.series["latency_ms"]) <= 50.0
    assert min(result.series["slack_ms"]) > 0
