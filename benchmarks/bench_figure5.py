"""EXP-F5 — regenerate Figure 5 (time-sharing vs SFQ predictability)."""

from repro.experiments import figure5
from repro.units import SECOND

from benchmarks.conftest import run_once


def test_figure5_ts_vs_sfq(benchmark):
    result = run_once(benchmark, figure5.run, duration=30 * SECOND)
    print()
    print(result.render())
    rows = {row[0]: row for row in result.rows}
    ts_cov = rows["CoV (windowed)"][1]
    sfq_cov = rows["CoV (windowed)"][2]
    # paper shape: TS throughput varies significantly, SFQ is uniform
    assert ts_cov > 2 * sfq_cov
    assert rows["CoV (final loops)"][2] <= 0.01
