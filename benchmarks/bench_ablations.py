"""EXP-AB1..AB6 — the ablation experiments (DESIGN.md §4)."""

import pytest

from repro.experiments import (
    ablation_bounds,
    ablation_currency,
    ablation_delay,
    ablation_fairness,
    ablation_fluctuation,
    ablation_lottery,
    ablation_overload,
    ablation_reserves,
    ablation_tagmath,
)
from repro.units import SECOND

from benchmarks.conftest import run_once


def test_ab1_fluctuation_fairness(benchmark):
    result = run_once(benchmark, ablation_fluctuation.run,
                      duration=20 * SECOND)
    print()
    print(result.render())
    gaps = dict(zip(result.column("algorithm"),
                    result.column("gap / SFQ bound")))
    # §6 claim: SFQ stays within its bound under fluctuating capacity;
    # the constant-rate virtual clocks do not
    assert gaps["SFQ"] <= 1.0
    assert gaps["WFQ"] > gaps["SFQ"]
    assert gaps["FQS"] > gaps["SFQ"]


def test_ab2_delay_bound(benchmark):
    result = run_once(benchmark, ablation_bounds.run, duration=20 * SECOND)
    print()
    print(result.render())
    note = [n for n in result.notes if "violations" in n][0]
    assert note.endswith("violations: 0")


def test_ab3_fairness_theorem(benchmark):
    result = run_once(benchmark, ablation_fairness.run,
                      duration=20 * SECOND)
    print()
    print(result.render())
    assert all(ratio <= 1.0 + 1e-9 for ratio in result.column("ratio"))


def test_ab4_tag_arithmetic(benchmark):
    result = run_once(benchmark, ablation_tagmath.run, duration=10 * SECOND)
    print()
    print(result.render())
    rows = {row[0]: row for row in result.rows}
    # Individual threads may diverge when float rounding flips tag ties
    # (that divergence is the ablation's finding); totals agree closely
    # (small differences only via shifted sleep phases of bursty threads).
    names = ("work w1", "work w3", "work w7")
    exact_total = sum(rows[name][1] for name in names)
    float_total = sum(rows[name][2] for name in names)
    assert abs(float_total - exact_total) / exact_total < 0.05
    for name in names:
        exact, floated = rows[name][1], rows[name][2]
        assert abs(floated - exact) / exact < 0.30


def test_ab6_overload_degradation(benchmark):
    result = run_once(benchmark, ablation_overload.run,
                      duration=20 * SECOND)
    print()
    print(result.render())
    cov_row = result.rows[-1]
    sfq_cov, edf_cov = cov_row[3], cov_row[4]
    # §1 claim: SFQ degrades every task proportionally under overload;
    # EDF's split is unpredictable
    assert sfq_cov < 0.01
    assert edf_cov > 10 * sfq_cov
    for row in result.rows[:-1]:
        assert row[3] == pytest.approx(1 / 1.3, rel=0.02)


def test_ab7_currency_framework(benchmark):
    result = run_once(benchmark, ablation_currency.run,
                      duration=30 * SECOND)
    print()
    print(result.render())
    errors = {(row[0], row[1]): row[2] for row in result.rows}
    # §6: the currency lottery is fair only over large intervals; the
    # hierarchical SFQ split is exact per window
    assert errors[("hierarchical SFQ", "0.1 s")] <= 0.01
    assert errors[("ticket currencies", "0.1 s")] > 0.05


def test_ab8_reserves_vs_sfq(benchmark):
    result = run_once(benchmark, ablation_reserves.run,
                      duration=30 * SECOND)
    print()
    print(result.render())
    covs = {row[0]: row[4] for row in result.rows}
    # §6: reservation schedulers need precise requirements; with VBR the
    # mean-sized reserve jitters where SFQ's share does not
    assert covs["reserves"] > 1.3 * covs["SFQ"]


def test_ab9_interactive_delay(benchmark):
    result = run_once(benchmark, ablation_delay.run, duration=30 * SECOND)
    print()
    print(result.render())
    means = {row[0]: row[2] for row in result.rows}
    # §6: SFQ gives low-throughput (interactive) threads much lower delay
    # than finish-tag schedulers
    assert means["SFQ"] < 0.5 * means["WFQ"]
    assert means["SFQ"] < 0.5 * means["SCFQ"]


def test_ab5_lottery_timescales(benchmark):
    result = run_once(benchmark, ablation_lottery.run, duration=30 * SECOND)
    print()
    print(result.render())
    smallest = result.rows[0]
    # §6: lottery is fair only over large time-intervals
    assert smallest[1] > 2 * smallest[2]  # lottery >> stride
    assert smallest[1] > 2 * smallest[3]  # lottery >> SFQ
    lottery = [row[1] for row in result.rows]
    assert lottery[-1] < lottery[0]
