"""EXP-F3 — regenerate Figure 3 (SFQ tag evolution, worked example)."""

from repro.experiments import figure3

from benchmarks.conftest import run_once


def test_figure3_tag_evolution(benchmark):
    result = run_once(benchmark, figure3.run)
    print()
    print(result.render())
    head = [(row[0], row[1], row[2]) for row in result.rows[:6]]
    # the paper's exact quantum order and virtual-time values
    assert head == [
        (10, "A", 0.0), (20, "B", 0.0), (30, "B", 5.0),
        (40, "A", 10.0), (50, "B", 10.0), (60, "B", 15.0),
    ]
