"""EXP-OBS — instrumentation overhead of the observability event bus.

Runs the Figure-5 workload (five Dhrystones plus interactive daemons,
both scheduler variants) under four instrumentation levels:

* **off** — no bus subscriber; every emit site reduced to one
  ``BUS.active`` attribute read;
* **binlog (deferred capture)** — :class:`BinaryTraceWriter` in
  ``defer=True`` mode: capture appends raw triples, encoding happens at
  seal.  The cheap leave-it-on path (target ≤1.5x off); the seal cost is
  measured separately;
* **binlog (streaming)** — the writer encoding inline with bounded
  memory, for million-event runs;
* **full stack** — per-node schedstats plus the Chrome-trace builder,
  the heaviest in-memory consumers.

Ratios are computed from *interleaved pairs*: each round runs every
variant back to back and divides by that same round's traced-off time,
then the median ratio is reported.  Pairing cancels slow host drift
(CPU frequency, VM steal) that makes independent best-of-N ratios on
shared runners swing by 2x; the median resists the remaining spikes.

Run as a script to emit ``benchmarks/BENCH_OBS.json`` in the perfkit
schema, so capture-overhead regressions gate like events/s::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --rounds 12

The pytest-benchmark entry points below remain for ``pytest
benchmarks/ --benchmark-only``.  Every variant must produce the
*identical* experiment result — the bus observes, never steers — which
is asserted here at benchmark scale.
"""

from __future__ import annotations

import argparse
import io
import platform
import statistics
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.experiments import figure5
from repro.obs import events as ev
from repro.obs.binlog import BinaryTraceWriter
from repro.obs.chrometrace import ChromeTraceBuilder
from repro.obs.schedstat import SchedStat
from repro.units import SECOND

from benchmarks.conftest import run_once

#: long enough to dominate setup cost, short enough for CI
DURATION = 10 * SECOND

#: figure5.run drives both scheduler variants for DURATION each
SIM_NS = 2 * DURATION

#: five dhrystones + two daemons, per variant machine
THREADS = 14


def run_plain():
    assert not ev.BUS.active
    return figure5.run(duration=DURATION)


def run_binlog(defer: bool = True):
    """Binlog-only capture into memory; returns (result, writer, seal_s)."""
    writer = BinaryTraceWriter(io.BytesIO(), defer=defer)
    with ev.BUS.subscription(writer):
        result = figure5.run(duration=DURATION)
    t0 = time.perf_counter()
    writer.close()
    seal_s = time.perf_counter() - t0
    return result, writer, seal_s


def run_observed():
    stats = SchedStat()
    builder = ChromeTraceBuilder()
    with ev.BUS.subscription(stats), ev.BUS.subscription(builder):
        result = figure5.run(duration=DURATION)
    return result, stats, builder


# --- pytest-benchmark entry points -------------------------------------------


def test_obs_off_baseline(benchmark):
    result = run_once(benchmark, run_plain)
    assert result.rows  # the experiment actually ran


def test_obs_binlog_capture(benchmark):
    result, writer, __ = run_once(benchmark, run_binlog)
    assert writer.event_count > 1000, "the binlog saw the run"
    assert result.rows == run_plain().rows


def test_obs_binlog_streaming(benchmark):
    result, writer, __ = run_once(benchmark, run_binlog, defer=False)
    assert writer.event_count > 1000
    assert result.rows == run_plain().rows


def test_obs_on_full_stack(benchmark):
    result, stats, builder = run_once(benchmark, run_observed)
    assert builder.event_count > 1000, "collectors saw the run"
    assert stats.nodes["/"].charges > 0
    # Observing must not steer: identical results with and without the bus.
    assert result.rows == run_plain().rows


# --- BENCH_OBS report (perfkit schema) ---------------------------------------

#: measurement variants, in per-round execution order ("off" must be first:
#: it is the denominator of that round's ratios)
_VARIANTS: List[Tuple[str, str]] = [
    ("obs_off", "figure-5, no bus subscriber (the traced-off baseline)"),
    ("obs_binlog", "figure-5, binlog deferred capture (encode at seal; "
                   "the leave-it-on path, target <=1.5x off)"),
    ("obs_binlog_streaming", "figure-5, binlog streaming encode "
                             "(bounded memory)"),
    ("obs_full_stack", "figure-5, schedstat + chrome-trace in-memory "
                       "collectors"),
]


def _timed(runner: Callable[[], Any]) -> Tuple[float, Any]:
    t0 = time.perf_counter()
    value = runner()
    return time.perf_counter() - t0, value


def _run_round() -> Dict[str, Dict[str, Any]]:
    """One interleaved round: every variant once, back to back."""
    round_data: Dict[str, Dict[str, Any]] = {}
    elapsed, __ = _timed(run_plain)
    round_data["obs_off"] = {"run_s": elapsed, "events": 0, "seal_s": 0.0}
    elapsed, (__, writer, seal_s) = _timed(lambda: run_binlog(defer=True))
    round_data["obs_binlog"] = {"run_s": elapsed - seal_s,
                                "events": writer.event_count,
                                "seal_s": seal_s}
    elapsed, (__, writer, seal_s) = _timed(lambda: run_binlog(defer=False))
    round_data["obs_binlog_streaming"] = {"run_s": elapsed,
                                          "events": writer.event_count,
                                          "seal_s": seal_s}
    elapsed, __ = _timed(run_observed)
    round_data["obs_full_stack"] = {"run_s": elapsed, "events": 0,
                                    "seal_s": 0.0}
    return round_data


def measure(rounds: int = 12,
            echo: Optional[Callable[[str], None]] = None) -> Dict[str, Any]:
    """Interleaved overhead measurement; returns a perfkit-schema report."""
    if rounds < 2:
        raise ValueError("need >= 2 rounds for a median, got %d" % rounds)
    # warm-up: imports, code objects, allocator pools
    run_plain()
    counts: Dict[str, int] = {}

    def count(event: ev.Event) -> None:
        counts[event.kind] = counts.get(event.kind, 0) + 1

    with ev.BUS.subscription(count):
        figure5.run(duration=DURATION)
    events_total = sum(counts.values())
    dispatches = counts.get(ev.DISPATCH, 0)

    samples: Dict[str, List[Dict[str, Any]]] = {name: []
                                                for name, __ in _VARIANTS}
    ratios: Dict[str, List[float]] = {name: [] for name, __ in _VARIANTS}
    for index in range(rounds):
        round_data = _run_round()
        off_s = round_data["obs_off"]["run_s"]
        for name, __ in _VARIANTS:
            entry = round_data[name]
            samples[name].append(entry)
            ratios[name].append(entry["run_s"] / off_s)
        if echo is not None:
            echo("round %2d/%d  off %6.2f ms   binlog %.3fx   "
                 "streaming %.3fx   full %.3fx"
                 % (index + 1, rounds, off_s * 1e3,
                    ratios["obs_binlog"][-1],
                    ratios["obs_binlog_streaming"][-1],
                    ratios["obs_full_stack"][-1]))

    scenarios: Dict[str, Any] = {}
    for name, description in _VARIANTS:
        runs = [sample["run_s"] for sample in samples[name]]
        median_run = statistics.median(runs)
        events = events_total if name != "obs_off" else 0
        scenarios[name] = {
            "description": description,
            "repeats": [{
                "build_s": 0.0,
                "run_s": sample["run_s"],
                "events": events,
                "dispatches": dispatches,
                "sim_ns": SIM_NS,
                "threads": THREADS,
                "maxrss_kb": 0,
                "phases": {},
            } for sample in samples[name]],
            "stats": {
                "run_s": {
                    "min": min(runs),
                    "median": median_run,
                    "mean": statistics.fmean(runs),
                    "stdev": statistics.stdev(runs),
                },
                "events_per_sec":
                    events / median_run if median_run > 0 else 0.0,
                "dispatches_per_sec":
                    dispatches / median_run if median_run > 0 else 0.0,
                "events": events,
                "dispatches": dispatches,
                "peak_rss_kb": 0,
            },
            # extra keys ride along unvalidated in the perfkit schema
            "overhead_vs_off": {
                "paired_ratios": [round(r, 4) for r in ratios[name]],
                "median": statistics.median(ratios[name]),
                "min_based": min(runs) / min(
                    s["run_s"] for s in samples["obs_off"]),
            },
            "seal_s_median": statistics.median(
                sample["seal_s"] for sample in samples[name]),
        }

    report = {
        "schema": "repro.perfkit/1",
        "mode": "quick",
        "repeats": rounds,
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "scenarios": scenarios,
    }
    from repro.perfkit.schema import validate_report
    return validate_report(report)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="measure observability capture overhead, emit "
                    "BENCH_OBS.json in the perfkit schema")
    parser.add_argument("--rounds", type=int, default=12,
                        help="interleaved measurement rounds (default 12)")
    parser.add_argument("--out", default="benchmarks/BENCH_OBS.json",
                        help="output path (default benchmarks/BENCH_OBS.json)")
    args = parser.parse_args(argv)

    report = measure(rounds=args.rounds, echo=print)
    from repro.perfkit.schema import dump_report
    dump_report(report, args.out)

    print()
    for name, __ in _VARIANTS:
        entry = report["scenarios"][name]
        overhead = entry["overhead_vs_off"]
        line = "%-22s median %7.2f ms   %5.3fx off (min-based %5.3fx)" % (
            name, entry["stats"]["run_s"]["median"] * 1e3,
            overhead["median"], overhead["min_based"])
        if entry["seal_s_median"]:
            line += "   seal %5.2f ms" % (entry["seal_s_median"] * 1e3)
        print(line)
    print("wrote %s" % args.out)
    binlog_ratio = report["scenarios"]["obs_binlog"]["overhead_vs_off"]["median"]
    return 0 if binlog_ratio <= 1.5 else 1


if __name__ == "__main__":
    import sys
    sys.exit(main())
