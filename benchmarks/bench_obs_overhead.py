"""EXP-OBS — instrumentation overhead of the observability event bus.

Runs the Figure-5 workload (five Dhrystones plus interactive daemons,
both scheduler variants) twice: with no bus subscriber — every emit site
reduced to one ``BUS.active`` attribute read — and with the full
collector stack attached (per-node schedstats plus the Chrome-trace
builder, the heaviest consumer).  The measured pair grounds the claim in
docs/OBSERVABILITY.md: traced-off runs pay ~nothing, traced-on runs pay
for what they record.

Both variants must produce the *identical* experiment result — the bus
observes, never steers — which is also asserted here at benchmark scale.
"""

from repro.experiments import figure5
from repro.obs import events as ev
from repro.obs.chrometrace import ChromeTraceBuilder
from repro.obs.schedstat import SchedStat
from repro.units import SECOND

from benchmarks.conftest import run_once

#: long enough to dominate setup cost, short enough for CI
DURATION = 10 * SECOND


def run_plain():
    assert not ev.BUS.active
    return figure5.run(duration=DURATION)


def run_observed():
    stats = SchedStat()
    builder = ChromeTraceBuilder()
    with ev.BUS.subscription(stats), ev.BUS.subscription(builder):
        result = figure5.run(duration=DURATION)
    return result, stats, builder


def test_obs_off_baseline(benchmark):
    result = run_once(benchmark, run_plain)
    assert result.rows  # the experiment actually ran


def test_obs_on_full_stack(benchmark):
    result, stats, builder = run_once(benchmark, run_observed)
    assert builder.event_count > 1000, "collectors saw the run"
    assert stats.nodes["/"].charges > 0
    # Observing must not steer: identical results with and without the bus.
    assert result.rows == run_plain().rows
