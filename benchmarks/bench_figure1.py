"""EXP-F1 — regenerate Figure 1 (MPEG decode-time variability)."""

from repro.experiments import figure1

from benchmarks.conftest import run_once


def test_figure1_mpeg_variability(benchmark):
    result = run_once(benchmark, figure1.run, frames=3000)
    print()
    print(result.render())
    cov = dict(zip(result.column("group"), result.column("CoV")))
    means = dict(zip(result.column("group"), result.column("mean ms")))
    # paper shape: strong frame-level and visible scene-level variability
    assert cov["all frames"] > 0.3
    assert cov["per-second means"] > 0.05
    assert means["I frames"] > means["P frames"] > means["B frames"]
