# Convenience targets; plain pytest works too.

.PHONY: install test bench experiments quick-experiments examples clean

install:
	pip install -e .

test:
	pytest tests/ -q

bench:
	pytest benchmarks/ --benchmark-only

experiments:
	python -m repro.experiments

quick-experiments:
	python -m repro.experiments --quick

examples:
	@for f in examples/*.py; do \
		echo "== $$f =="; \
		python $$f || exit 1; \
	done

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
