# Convenience targets; plain pytest works too.

.PHONY: install test test-schedsan test-obs test-faultlab test-compiled test-cluster engine enginediff lint bench bench-quick bench-compare bench-baseline microbench experiments quick-experiments examples obs-demo obs-record cluster-demo cluster-gate clean

install:
	pip install -e .

test:
	pytest tests/ -q

test-schedsan:
	REPRO_SCHEDSAN=1 pytest tests/ -q

test-obs:
	REPRO_OBS=1 pytest tests/ -q

# Fault-injection smoke campaign (see docs/ROBUSTNESS.md).  Writes
# shrunk reproducers to faultlab-repros/ on failure.
test-faultlab:
	python -m repro.faultlab run --quick --workers 2 --repro-dir faultlab-repros

# The same suite on the compiled engine (builds repro/core/_sfqc.c on
# first use; hard-fails rather than falling back to pure).
test-compiled:
	REPRO_ENGINE=compiled pytest tests/ -q

# Build (or reuse) the compiled-engine artifact under build/engine/.
engine:
	python -c "from repro.core.engine import build_extension; \
		print(build_extension(quiet=False))"

# Cross-engine byte-identity gate (see docs/PERFORMANCE.md).
enginediff:
	python -m repro.devtools.enginediff

lint:
	PYTHONPATH=src python -m repro.devtools.schedlint src/
	PYTHONPATH=src python -m repro.devtools.schedflow --jobs 2 \
		--baseline devtools/schedflow-baseline.json src/repro
	@if command -v mypy >/dev/null 2>&1; then \
		mypy --config-file setup.cfg; \
	else \
		echo "mypy not installed; skipping typed-core check"; \
	fi

# Scheduler hot-path suite (see docs/PERFORMANCE.md).  `bench` writes the
# next free benchmarks/BENCH_<n>.json; `bench-compare` checks the latest
# quick run against the committed CI baseline.
bench:
	python -m repro.perfkit run

bench-quick:
	python -m repro.perfkit run --quick

bench-compare:
	python -m repro.perfkit run --quick --out /tmp/BENCH_local.json
	python -m repro.perfkit compare /tmp/BENCH_local.json benchmarks/baseline.json

bench-baseline:
	python -m repro.perfkit baseline --quick

# pytest-benchmark microbenchmarks of the paper figures (the old `bench`)
microbench:
	pytest benchmarks/ --benchmark-only

experiments:
	python -m repro.experiments

quick-experiments:
	python -m repro.experiments --quick

examples:
	@for f in examples/*.py; do \
		echo "== $$f =="; \
		python $$f || exit 1; \
	done

obs-demo:
	python -m repro.obs demo --out obs-trace.json
	python -m repro.obs report obs-trace.json

# Binary-trace pipeline on the demo workload: record, validate, replay.
obs-record:
	python -m repro.obs record obs-demo.binlog
	python -m repro.obs info obs-demo.binlog
	python -m repro.obs convert obs-demo.binlog --schedstat --depth-gantt

# Cluster tier (see docs/CLUSTER.md): unit + property suite, a small
# sharded demo run with per-host binlogs, and the shard determinism gate
# CI enforces on cluster_storm.
test-cluster:
	pytest tests/test_cluster.py tests/test_cluster_determinism.py -q

cluster-demo:
	python -m repro.cluster run --scenario cluster_mini --quick \
		--shards 2 --trace
	python -m repro.cluster report clusterlab/cluster_mini

cluster-gate:
	python -m repro.cluster gate --scenario cluster_storm --quick --shards 4

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
