# Convenience targets; plain pytest works too.

.PHONY: install test test-schedsan test-obs lint bench experiments quick-experiments examples obs-demo clean

install:
	pip install -e .

test:
	pytest tests/ -q

test-schedsan:
	REPRO_SCHEDSAN=1 pytest tests/ -q

test-obs:
	REPRO_OBS=1 pytest tests/ -q

lint:
	PYTHONPATH=src python -m repro.devtools.schedlint src/
	@if command -v mypy >/dev/null 2>&1; then \
		mypy --config-file setup.cfg; \
	else \
		echo "mypy not installed; skipping typed-core check"; \
	fi

bench:
	pytest benchmarks/ --benchmark-only

experiments:
	python -m repro.experiments

quick-experiments:
	python -m repro.experiments --quick

examples:
	@for f in examples/*.py; do \
		echo "== $$f =="; \
		python $$f || exit 1; \
	done

obs-demo:
	python -m repro.obs demo --out obs-trace.json
	python -m repro.obs report obs-trace.json

clean:
	rm -rf build dist src/repro.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
