"""Quickstart: hierarchical CPU partitioning in ~40 lines.

Builds the paper's Figure 2 skeleton — a best-effort class split between
two users, next to a soft real-time class — runs CPU-bound threads in all
of them, and shows that each node receives exactly its weighted share.

Run:  python examples/quickstart.py
"""

from repro import (
    DhrystoneWorkload,
    HierarchicalScheduler,
    Machine,
    Recorder,
    SchedulingStructure,
    SECOND,
    SfqScheduler,
    SimThread,
    Simulator,
)
from repro.viz.table import format_table


def main() -> None:
    # 1. Describe the partitioning as a tree (weights = relative shares).
    structure = SchedulingStructure()
    structure.mknod("/soft-rt", 3, scheduler=SfqScheduler())
    structure.mknod("/best-effort", 6)
    structure.mknod("/best-effort/user1", 1, scheduler=SfqScheduler())
    structure.mknod("/best-effort/user2", 1, scheduler=SfqScheduler())

    # 2. A 100 MIPS simulated CPU driven by the hierarchical scheduler.
    engine = Simulator()
    recorder = Recorder()
    machine = Machine(engine, HierarchicalScheduler(structure),
                      capacity_ips=100_000_000, tracer=recorder)

    # 3. One CPU-hungry thread per leaf.
    threads = {}
    for path in ("/soft-rt", "/best-effort/user1", "/best-effort/user2"):
        thread = SimThread(path.strip("/"), DhrystoneWorkload())
        structure.parse(path).attach_thread(thread)
        machine.spawn(thread)
        threads[path] = thread

    # 4. Run 10 simulated seconds and report the shares.
    machine.run_until(10 * SECOND)
    total = sum(t.stats.work_done for t in threads.values())
    rows = [
        [path, thread.stats.work_done,
         "%.1f%%" % (100.0 * thread.stats.work_done / total)]
        for path, thread in threads.items()
    ]
    print(format_table(["leaf", "instructions", "share"], rows,
                       title="Weighted shares after 10 s (weights 3 : 6x0.5 : 6x0.5)"))
    print()
    print("soft-rt got 3/9 = 33.3%; each best-effort user got 3/9 = 33.3%")
    print("CPU utilization: %.1f%%" % (100 * machine.utilization()))


if __name__ == "__main__":
    main()
