"""A video server under the QoS manager (paper §4, Figure 4).

Video decode requests arrive at a QoS manager as *soft real-time* requests
with VBR demand statistics.  The manager admits them against the soft
real-time class's share using the statistical (overbooking) test, rejects
what does not fit, and keeps best-effort work running regardless.  A
demand-driven rebalancer grows the soft real-time class as load builds —
the paper's dynamic-partitioning sketch.

Run:  python examples/video_server.py
"""

from repro import (
    DhrystoneWorkload,
    HierarchicalScheduler,
    Machine,
    MpegDecodeWorkload,
    MpegVbrModel,
    Recorder,
    SchedulingStructure,
    SECOND,
    SimThread,
    Simulator,
)
from repro.errors import AdmissionError
from repro.qos import BEST_EFFORT, SOFT_RT, DemandDrivenRebalancer, QosManager, QosRequest
from repro.viz.table import format_table

CAPACITY = 100_000_000  # 100 MIPS


def main() -> None:
    structure = SchedulingStructure()
    engine = Simulator()
    recorder = Recorder()
    machine = Machine(engine, HierarchicalScheduler(structure),
                      capacity_ips=CAPACITY, tracer=recorder)
    manager = QosManager(machine, structure, class_weights=(1, 5, 4))
    rebalancer = DemandDrivenRebalancer(manager, period=2 * SECOND)
    rebalancer.start()

    # Best-effort background: two users compiling things.
    for user in ("alice", "bob"):
        manager.submit(QosRequest("compile-%s" % user, BEST_EFFORT,
                                  user=user), DhrystoneWorkload())

    # Video streams request soft real-time service.  Each decoder needs
    # ~30 fps * ~0.4M instructions/frame ~= 12 MIPS mean demand.
    admitted, rejected = [], []
    for index in range(6):
        request = QosRequest("stream-%d" % index, SOFT_RT,
                             mean_demand=12_000_000, std_demand=3_000_000)
        model = MpegVbrModel(seed=100 + index, mean_cost=400_000)
        workload = MpegDecodeWorkload(model, paced=True)
        try:
            thread = manager.submit(request, workload,
                                    at=index * SECOND)
            admitted.append((request, thread))
        except AdmissionError as exc:
            rejected.append((request, str(exc)))

    machine.run_until(20 * SECOND)

    rows = []
    for request, thread in admitted:
        frames = thread.stats.markers.get("frames", 0)
        alive = 20 - (thread.stats.created_at // SECOND)
        rows.append([request.name, "admitted", frames,
                     "%.1f" % (frames / max(1, alive))])
    for request, __ in rejected:
        rows.append([request.name, "REJECTED", "-", "-"])
    print(format_table(["stream", "admission", "frames", "fps"],
                       rows, title="Video server after 20 s"))
    print()
    print("admitted %d of %d streams; statistical admission kept aggregate"
          % (len(admitted), len(admitted) + len(rejected)))
    print("demand within the soft real-time share (overbooking 2 sigma)")
    print("rebalancer ran %d times; soft-rt class weight is now %d"
          % (rebalancer.rebalances, manager.soft_leaf.weight))
    be_work = sum(t.stats.work_done for t in machine.threads
                  if t.name.startswith("compile"))
    print("best-effort work still progressed: %d instructions" % be_work)


if __name__ == "__main__":
    main()
