"""Observability: watch a hierarchical scheduler work, without changing it.

Builds the Figure-2 partitioning, attaches the full observability stack —
event bus subscribers for per-node schedstats, derived latency metrics,
a Perfetto-loadable Chrome trace, and a binary trace log — runs a mixed
workload under periodic interrupts, and prints what each collector saw.
The binlog is then replayed offline to show that recording loses
nothing, and rendered as a depth-axis hierarchy Gantt.  The same run
with no subscriber attached produces byte-identical scheduling, which is
the whole point: tracing is free when it is off.

Run:  python examples/observability.py
"""

import io

from repro import (
    DhrystoneWorkload,
    HierarchicalScheduler,
    Machine,
    MS,
    SchedulingStructure,
    SfqScheduler,
    SimThread,
    Simulator,
)
from repro.cpu.interrupts import PeriodicInterruptSource
from repro.obs import BUS, SchedulerMetrics
from repro.obs.binlog import BinaryTraceReader, BinaryTraceWriter
from repro.obs.chrometrace import ChromeTraceBuilder
from repro.obs.schedstat import SchedStat, render_schedstat
from repro.sim.rng import make_rng
from repro.viz.depth_gantt import depth_gantt
from repro.workloads.interactive import InteractiveWorkload


def build():
    structure = SchedulingStructure()
    structure.mknod("/soft-rt", 3, scheduler=SfqScheduler())
    structure.mknod("/best-effort", 6)
    structure.mknod("/best-effort/user1", 1, scheduler=SfqScheduler())
    structure.mknod("/best-effort/user2", 1, scheduler=SfqScheduler())

    engine = Simulator()
    machine = Machine(engine, HierarchicalScheduler(structure),
                      capacity_ips=100_000_000, default_quantum=10 * MS)
    machine.add_interrupt_source(
        PeriodicInterruptSource(period=20 * MS, service=400_000))

    threads = []
    for path, name in (("/soft-rt", "decoder"),
                       ("/best-effort/user1", "compile"),
                       ("/best-effort/user2", "render")):
        thread = SimThread(name, DhrystoneWorkload())
        structure.parse(path).attach_thread(thread)
        machine.spawn(thread)
        threads.append(thread)
    editor = SimThread("editor", InteractiveWorkload(
        burst_work=250_000, think_time=30 * MS,
        rng=make_rng(13, "obs-example/editor")))
    structure.parse("/best-effort/user2").attach_thread(editor)
    machine.spawn(editor)
    threads.append(editor)
    return machine, structure, threads


def main() -> None:
    stats = SchedStat()
    metrics = SchedulerMetrics()
    trace = ChromeTraceBuilder()
    binlog = io.BytesIO()
    writer = BinaryTraceWriter(binlog)

    machine, structure, threads = build()
    with BUS.subscription(stats), BUS.subscription(metrics), \
            BUS.subscription(trace), BUS.subscription(writer):
        machine.run_until(1500 * MS)
    writer.close()

    print("=== per-node schedstats (a /proc/schedstat for the tree) ===")
    print(render_schedstat(structure, stats))

    print()
    print("=== derived metrics (latency histograms over the event stream) ===")
    print(metrics.registry.render())

    print()
    print("=== what each thread got ===")
    for thread in threads:
        print("  %-8s node work=%d dispatches=%d blocks=%d"
              % (thread.name, thread.stats.work_done,
                 thread.stats.dispatches, thread.stats.blocks))

    print()
    payload = trace.to_dict()
    print("Chrome trace ready: %d events across cpu/thread/vtime tracks;"
          % len(payload["traceEvents"]))
    print("ChromeTraceBuilder.write('trace.json') makes it loadable in "
          "ui.perfetto.dev.")

    print()
    print("=== binary trace: capture once, analyze forever ===")
    raw = binlog.getvalue()
    reader = BinaryTraceReader(io.BytesIO(raw))
    print("sealed binlog: %d events in %d bytes (%.1f bytes/event)"
          % (len(reader), len(raw), len(raw) / len(reader)))
    replayed = ChromeTraceBuilder()
    for event in reader:
        replayed(event)
    print("offline replay reproduces the live Chrome trace byte for "
          "byte: %s" % (replayed.to_json() == trace.to_json()))

    print()
    print("=== depth-axis hierarchy Gantt (root outward, ! = preempt) ===")
    print(depth_gantt(reader, width=64))


if __name__ == "__main__":
    main()
