"""A two-stage video pipeline built from the synchronization substrate.

A decoder thread decompresses VBR frames into a 4-slot bounded buffer; a
renderer thread consumes them at the display rate.  The bounded buffer is
two counting semaphores — no special pipeline support, just workload
segments.  Both threads live in the soft real-time class next to a
best-effort CPU hog; hierarchical SFQ keeps the pipeline's share safe, so
the renderer never starves even though the hog would happily take the
whole machine.

Run:  python examples/decode_pipeline.py
"""

from repro import (
    Compute,
    DhrystoneWorkload,
    Down,
    HierarchicalScheduler,
    Machine,
    MpegVbrModel,
    MS,
    Recorder,
    SECOND,
    SchedulingStructure,
    SfqScheduler,
    SimSemaphore,
    SimThread,
    Simulator,
    SleepUntil,
    Up,
    Workload,
)
from repro.viz.table import format_table

CAPACITY = 100_000_000
FRAMES = 300
FRAME_PERIOD = SECOND // 30
RENDER_COST = 300_000  # ~3 ms to composite a frame


class DecoderStage(Workload):
    """Down(empty) -> decode frame -> Up(full), forever."""

    def __init__(self, model, empty, full, frames):
        self.model = model
        self.empty = empty
        self.full = full
        self.frames = frames
        self._produced = 0
        self._phase = 0

    def next_segment(self, now, thread):
        if self._produced >= self.frames:
            return None
        phase = self._phase
        self._phase = (self._phase + 1) % 3
        if phase == 0:
            return Down(self.empty)
        if phase == 1:
            thread.stats.bump_marker("decoded")
            return Compute(self.model.next_cost())
        self._produced += 1
        return Up(self.full)


class RendererStage(Workload):
    """Down(full) -> render -> Up(empty), paced to the display clock."""

    def __init__(self, empty, full, frames):
        self.empty = empty
        self.full = full
        self.frames = frames
        self._rendered = 0
        self._phase = 0
        self._start = None

    def next_segment(self, now, thread):
        if self._start is None:
            self._start = now
        if self._rendered >= self.frames:
            return None
        phase = self._phase
        self._phase = (self._phase + 1) % 4
        if phase == 0:
            return Down(self.full)
        if phase == 1:
            return Compute(RENDER_COST)
        if phase == 2:
            thread.stats.bump_marker("rendered")
            return Up(self.empty)
        self._rendered += 1
        # wait for the next vsync
        return SleepUntil(self._start + self._rendered * FRAME_PERIOD)


def main() -> None:
    structure = SchedulingStructure()
    soft = structure.mknod("/soft-rt", 1, scheduler=SfqScheduler())
    best = structure.mknod("/best-effort", 1, scheduler=SfqScheduler())
    engine = Simulator()
    recorder = Recorder()
    machine = Machine(engine, HierarchicalScheduler(structure),
                      capacity_ips=CAPACITY, default_quantum=10 * MS,
                      tracer=recorder)

    empty = SimSemaphore("empty-slots", initial=4)
    full = SimSemaphore("full-slots", initial=0)
    model = MpegVbrModel(seed=13, mean_cost=900_000)
    decoder = SimThread("decoder",
                        DecoderStage(model, empty, full, FRAMES), weight=1)
    renderer = SimThread("renderer",
                         RendererStage(empty, full, FRAMES), weight=1)
    hog = SimThread("hog", DhrystoneWorkload())
    soft.attach_thread(decoder)
    soft.attach_thread(renderer)
    best.attach_thread(hog)
    for thread in (decoder, renderer, hog):
        machine.spawn(thread)

    machine.run_until(15 * SECOND)

    duration_s = (renderer.stats.exited_at or engine.now) / SECOND
    rows = [
        ["decoder", decoder.stats.markers.get("decoded", 0),
         "%.1f" % (decoder.stats.markers.get("decoded", 0) / duration_s)],
        ["renderer", renderer.stats.markers.get("rendered", 0),
         "%.1f" % (renderer.stats.markers.get("rendered", 0) / duration_s)],
    ]
    print(format_table(["stage", "frames", "fps"], rows,
                       title="Two-stage pipeline after %.1f s" % duration_s))
    print()
    print("display rate is 30 fps; the hog took %.0f%% of the CPU and the"
          % (100 * hog.stats.work_done / (CAPACITY * engine.now / SECOND)))
    print("pipeline still held its rate — that is the hierarchy's isolation.")


if __name__ == "__main__":
    main()
