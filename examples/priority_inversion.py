"""Priority inversion and the paper's weight-transfer remedy (§4).

A low-weight thread takes a lock that a high-weight thread needs, while a
heavy CPU hog (that uses no locks) dominates the CPU.  Without help, the
low thread crawls, so the high thread — blocked behind it — crawls too:
classic priority inversion.  The paper's remedy for SFQ leaves is to
*transfer the weight* of the blocked thread to the thread blocking it;
``SimMutex(donate_weight=True)`` implements exactly that.

The script runs the same scenario with donation off and on and prints how
long the high-weight thread took to get through its critical section.

Run:  python examples/priority_inversion.py
"""

from repro import (
    Acquire,
    Compute,
    DhrystoneWorkload,
    HierarchicalScheduler,
    Machine,
    MS,
    Recorder,
    Release,
    SchedulingStructure,
    SECOND,
    SfqScheduler,
    SimMutex,
    SimThread,
    SleepFor,
    Simulator,
)
from repro.threads.segments import SegmentListWorkload
from repro.viz.table import format_table

CAPACITY = 1_000_000  # 1 MIPS: numbers stay small and readable
KILO = 1000


def run_scenario(donate: bool) -> dict:
    structure = SchedulingStructure()
    leaf = structure.mknod("/apps", 1, scheduler=SfqScheduler())
    engine = Simulator()
    recorder = Recorder()
    machine = Machine(engine, HierarchicalScheduler(structure),
                      capacity_ips=CAPACITY, default_quantum=10 * MS,
                      tracer=recorder)
    lock = SimMutex("shared-buffer", donate_weight=donate)

    # low: grabs the lock, then needs 50 ms of CPU inside it.
    low = SimThread("low", SegmentListWorkload(
        [Acquire(lock), Compute(50 * KILO), Release(lock)]), weight=1)
    # hog: lock-free CPU burner with a big share.
    hog = SimThread("hog", DhrystoneWorkload(loop_cost=100, batch=10),
                    weight=8)
    # high: wakes shortly after, needs the lock for a short update.
    high = SimThread("high", SegmentListWorkload(
        [SleepFor(1 * MS), Acquire(lock), Compute(1 * KILO),
         Release(lock)]), weight=8)

    for thread in (low, hog, high):
        leaf.attach_thread(thread)
        machine.spawn(thread)
    machine.run_until(2 * SECOND)
    return {
        "high finished at": "%.0f ms" % (high.stats.exited_at / MS),
        "low finished at": "%.0f ms" % (low.stats.exited_at / MS),
        "low weight after": low.weight,
    }


def main() -> None:
    plain = run_scenario(donate=False)
    donated = run_scenario(donate=True)
    rows = [
        [key, plain[key], donated[key]]
        for key in ("high finished at", "low finished at",
                    "low weight after")
    ]
    print(format_table(["metric", "no donation", "weight donation"], rows,
                       title="Priority inversion through a shared lock"))
    print()
    print("Without donation the lock holder runs at weight 1 against the")
    print("hog's 8, so the high-weight thread is inverted for hundreds of")
    print("milliseconds.  With the paper's weight transfer the holder")
    print("temporarily runs at weight 1+8 and the inversion collapses.")


if __name__ == "__main__":
    main()
