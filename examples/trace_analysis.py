"""Trace analysis tour: record a run, then inspect it every way we can.

Runs a short mixed scenario and demonstrates the measurement surface:
Gantt chart of who held the CPU, service curves, windowed throughput,
wait-time distribution, FC-server fitting of the effective bandwidth, and
JSON/CSV export for outside tools.

Run:  python examples/trace_analysis.py
"""

from repro import (
    Compute,
    DhrystoneWorkload,
    HierarchicalScheduler,
    InteractiveWorkload,
    Machine,
    MS,
    PeriodicInterruptSource,
    Recorder,
    SECOND,
    SchedulingStructure,
    SfqScheduler,
    SimThread,
    Simulator,
    make_rng,
)
from repro.analysis.fc_server import fc_params_for_periodic_interrupts, fit_fc_params
from repro.analysis.stats import mean, percentile
from repro.trace.export import slices_to_csv, trace_to_json
from repro.trace.metrics import throughput_series, wait_times
from repro.viz.ascii_chart import sparkline
from repro.viz.gantt import gantt_chart

CAPACITY = 1_000_000
KILO = 1000


def main() -> None:
    structure = SchedulingStructure()
    leaf = structure.mknod("/apps", 1, scheduler=SfqScheduler())
    engine = Simulator()
    recorder = Recorder()
    machine = Machine(engine, HierarchicalScheduler(structure),
                      capacity_ips=CAPACITY, default_quantum=10 * MS,
                      tracer=recorder)
    machine.add_interrupt_source(
        PeriodicInterruptSource(period=20 * MS, service=2 * MS))

    cruncher = SimThread("cruncher", DhrystoneWorkload(loop_cost=100,
                                                       batch=10), weight=2)
    editor = SimThread("editor", InteractiveWorkload(
        burst_work=2 * KILO, think_time=60 * MS, rng=make_rng(8, "ta")))
    leaf.attach_thread(cruncher)
    leaf.attach_thread(editor)
    machine.spawn(cruncher)
    machine.spawn(editor)
    machine.run_until(2 * SECOND)

    # 1. who held the CPU (first 200 ms)
    print(gantt_chart(recorder, [cruncher, editor], start=0,
                      end=200 * MS, width=60,
                      title="CPU occupancy, first 200 ms (# = running)"))
    print()

    # 2. windowed throughput of the cruncher
    series = throughput_series(recorder, cruncher, 100 * MS, 2 * SECOND)
    print("cruncher work per 100 ms:", sparkline(series))

    # 3. the editor's scheduling waits
    waits = [w / MS for w in wait_times(recorder, editor)]
    print("editor waits: mean %.2f ms, p95 %.2f ms over %d wakeups"
          % (mean(waits), percentile(waits, 95), len(waits)))

    # 4. fit the effective CPU's FC parameters and compare to theory
    analytic = fc_params_for_periodic_interrupts(CAPACITY, 20 * MS, 2 * MS)
    points = []
    for t in range(0, 2001, 10):
        ts = t * MS
        total = (recorder.trace_of(cruncher).service_at(ts)
                 + recorder.trace_of(editor).service_at(ts))
        points.append((ts, total))
    fitted = fit_fc_params(points, analytic.rate_ips)
    print("effective CPU: rate %.0f inst/s; burstiness fitted %.0f "
          "(analytic bound %.0f + one quantum)"
          % (analytic.rate_ips, fitted.burstiness, analytic.burstiness))

    # 5. export
    json_text = trace_to_json(recorder, [cruncher, editor])
    csv_text = slices_to_csv(recorder, [cruncher, editor])
    print("exports: %d bytes of JSON, %d CSV rows"
          % (len(json_text), csv_text.count("\n") - 1))


if __name__ == "__main__":
    main()
