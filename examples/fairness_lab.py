"""Fairness lab: compare scheduling algorithms on one fluctuating CPU.

Runs the same two-thread workload (weights 1:2, one thread bursty) under
SFQ, WFQ, SCFQ, FQS, stride, and lottery while interrupts steal a quarter
of the CPU — then prints each algorithm's throughput split and its exact
worst-case normalized fairness gap, with an ASCII chart of the cumulative
service ratio over time.

This is the paper's §6 comparison as a runnable script.

Run:  python examples/fairness_lab.py
"""

from repro import (
    DhrystoneWorkload,
    FlatScheduler,
    FqsScheduler,
    LotteryScheduler,
    Machine,
    PeriodicInterruptSource,
    Recorder,
    ScfqScheduler,
    MS,
    SECOND,
    SfqScheduler,
    SimThread,
    Simulator,
    StrideScheduler,
    WfqScheduler,
    make_rng,
)
from repro.analysis.fairness import max_normalized_service_gap, sfq_fairness_bound
from repro import PhasedWorkload
from repro.viz.ascii_chart import line_chart
from repro.viz.table import format_table

CAPACITY = 10_000_000
QUANTUM = 10 * MS
QUANTUM_WORK = CAPACITY * QUANTUM // SECOND
DURATION = 20 * SECOND


def run_one(name, scheduler):
    engine = Simulator()
    recorder = Recorder()
    machine = Machine(engine, FlatScheduler(scheduler),
                      capacity_ips=CAPACITY, default_quantum=QUANTUM,
                      tracer=recorder)
    steady = SimThread("steady", DhrystoneWorkload(), weight=1)
    bursty = SimThread("bursty",
                       PhasedWorkload(on=700 * MS, cycle=SECOND,
                                      batch=QUANTUM_WORK), weight=2)
    machine.spawn(steady)
    machine.spawn(bursty)
    machine.add_interrupt_source(
        PeriodicInterruptSource(period=100 * MS, service=25 * MS))
    machine.run_until(DURATION)
    gap = max_normalized_service_gap(recorder, steady, bursty, DURATION)
    ratio_series = []
    ts = recorder.trace_of(steady)
    tb = recorder.trace_of(bursty)
    for t in range(1, 21):
        ws = ts.service_at(t * SECOND)
        wb = tb.service_at(t * SECOND)
        ratio_series.append(wb / ws if ws else 0.0)
    return gap, ratio_series


def main() -> None:
    algorithms = {
        "SFQ": SfqScheduler(),
        "WFQ": WfqScheduler(QUANTUM_WORK, CAPACITY),
        "FQS": FqsScheduler(QUANTUM_WORK, CAPACITY),
        "SCFQ": ScfqScheduler(QUANTUM_WORK),
        "stride": StrideScheduler(),
        "lottery": LotteryScheduler(rng=make_rng(4, "lab")),
    }
    bound = sfq_fairness_bound(QUANTUM_WORK, 1, QUANTUM_WORK, 2)
    rows = []
    charts = {}
    for name, scheduler in algorithms.items():
        gap, series = run_one(name, scheduler)
        rows.append([name, gap, gap / bound])
        charts[name] = series
    print(format_table(
        ["algorithm", "max normalized gap", "gap / SFQ bound"], rows,
        title="Fairness under a fluctuating CPU (25% stolen in 25 ms chunks)"))
    print()
    print(line_chart({"S": charts["SFQ"], "W": charts["WFQ"],
                      "L": charts["lottery"]},
                     title="cumulative bursty/steady service ratio over time "
                           "(S=SFQ, W=WFQ, L=lottery)"))
    print()
    print("SFQ stays within its theoretical bound; the constant-rate")
    print("virtual clocks (WFQ/FQS) and the randomized lottery drift.")


if __name__ == "__main__":
    main()
