"""A full multimedia workstation: the paper's Figure 2 structure, live.

Hard real-time (EDF leaf, weight 1), soft real-time (SFQ leaf, weight 3),
and best-effort (weight 6, split between two users — one SFQ leaf, one
SVR4 time-sharing leaf).  The machine also fields clock and network
interrupts, so the effective CPU is a fluctuating (FC) server — exactly
the environment the paper's guarantees are stated for.

Demonstrates, in one run:
  * hard real-time deadlines all met despite everything else;
  * soft real-time video keeping its frame rate;
  * the two best-effort users splitting their class evenly even though
    they run *different* leaf schedulers;
  * protection: a fork-bomb of best-effort hogs cannot starve anyone.

Run:  python examples/multimedia_workstation.py
"""

from repro import (
    DhrystoneWorkload,
    EdfScheduler,
    HierarchicalScheduler,
    InteractiveWorkload,
    Machine,
    MpegDecodeWorkload,
    MpegVbrModel,
    PeriodicInterruptSource,
    PeriodicWorkload,
    Recorder,
    SchedulingStructure,
    MS,
    SECOND,
    SfqScheduler,
    SimThread,
    Simulator,
    Svr4TimeSharing,
    make_rng,
)
from repro.trace.metrics import latency_slack, node_work
from repro.viz.table import format_table

CAPACITY = 100_000_000


def work_of_ms(ms: float) -> int:
    return round(CAPACITY * ms / 1000.0)


def main() -> None:
    structure = SchedulingStructure()
    hard = structure.mknod("/hard-rt", 1,
                           scheduler=EdfScheduler(quantum=10 * MS))
    soft = structure.mknod("/soft-rt", 3, scheduler=SfqScheduler())
    structure.mknod("/best-effort", 6)
    user1 = structure.mknod("/best-effort/user1", 1,
                            scheduler=SfqScheduler())
    user2 = structure.mknod("/best-effort/user2", 1,
                            scheduler=Svr4TimeSharing())

    engine = Simulator()
    recorder = Recorder()
    machine = Machine(engine, HierarchicalScheduler(structure),
                      capacity_ips=CAPACITY, default_quantum=10 * MS,
                      tracer=recorder)
    # 100 Hz clock tick + bursty network interrupts.
    machine.add_interrupt_source(
        PeriodicInterruptSource(period=10 * MS, service=200_000))
    from repro.cpu.interrupts import PoissonInterruptSource
    machine.add_interrupt_source(PoissonInterruptSource(
        mean_interarrival=5 * MS, mean_service=100_000,
        rng=make_rng(1, "net"), exponential_service=True))

    # Hard real-time: audio mixing, 2 ms every 50 ms.  The SFQ delay
    # bound for the hard class is ~ one quantum per sibling class (20 ms),
    # so a 50 ms period leaves deterministic headroom.
    audio_wl = PeriodicWorkload(period=50 * MS, cost=work_of_ms(2))
    audio = SimThread("audio", audio_wl, params={"period": 50 * MS})
    hard.attach_thread(audio)
    machine.spawn(audio)

    # Soft real-time: two paced video players.
    players = []
    for index in range(2):
        model = MpegVbrModel(seed=7 + index, mean_cost=400_000)
        player = SimThread("video-%d" % index,
                           MpegDecodeWorkload(model, paced=True))
        soft.attach_thread(player)
        machine.spawn(player)
        players.append(player)

    # user1: an interactive editor; user2: a compile job.
    editor = SimThread("editor", InteractiveWorkload(
        burst_work=500_000, think_time=100 * MS, rng=make_rng(2, "ed")))
    user1.attach_thread(editor)
    machine.spawn(editor)
    compile_job = SimThread("compile", DhrystoneWorkload())
    user2.attach_thread(compile_job)
    machine.spawn(compile_job)

    # At t = 10 s, user1 misbehaves: spawns 6 CPU hogs.
    hogs = []

    def fork_bomb():
        for index in range(6):
            hog = SimThread("hog-%d" % index, DhrystoneWorkload())
            user1.attach_thread(hog)
            machine.spawn(hog)
            hogs.append(hog)

    engine.at(10 * SECOND, fork_bomb)
    machine.run_until(20 * SECOND)

    # --- report -----------------------------------------------------------
    results = latency_slack(recorder, audio, audio_wl)
    misses = sum(1 for __, __, slack in results if slack <= 0)
    print("hard real-time: %d rounds, %d deadline misses, worst slack %.2f ms"
          % (len(results), misses,
             min(slack for __, __, slack in results) / MS))

    rows = []
    for player in players:
        frames = player.stats.markers.get("frames", 0)
        rows.append([player.name, frames, "%.1f" % (frames / 20.0)])
    print(format_table(["player", "frames", "fps"], rows,
                       title="soft real-time video (target 30 fps)"))

    # best-effort split before/after the fork bomb
    for label, t1, t2 in [("before bomb (0-10 s)", 0, 10 * SECOND),
                          ("after bomb (10-20 s)", 10 * SECOND, 20 * SECOND)]:
        w1 = node_work(recorder, [editor] + hogs, t1, t2)
        w2 = node_work(recorder, [compile_job], t1, t2)
        print("%s: user1 %.0fM vs user2 %.0fM instructions"
              % (label, w1 / 1e6, w2 / 1e6))
    print("=> user2 keeps its half of best effort; the fork bomb only "
          "hurts its own class")


if __name__ == "__main__":
    main()
