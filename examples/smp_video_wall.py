"""A 4-CPU video wall (the SMP extension in action).

Sixteen paced VBR decoders share a 4-CPU machine under one hierarchical
SFQ scheduler — a video-wall appliance.  Four of the streams are "premium"
(double weight).  The demo shows:

  * aggregate decode throughput scales with the CPU count;
  * premium streams ride out load spikes that make economy streams drop
    frames (weights matter under contention);
  * with feasible weights, SMP-SFQ splits the 4-CPU capacity by weight.

Run:  python examples/smp_video_wall.py
"""

from repro import (
    DhrystoneWorkload,
    HierarchicalScheduler,
    MpegDecodeWorkload,
    MpegVbrModel,
    MS,
    Recorder,
    SchedulingStructure,
    SECOND,
    SfqScheduler,
    SimThread,
    Simulator,
    SmpMachine,
)
from repro.analysis.stats import mean
from repro.viz.table import format_table

CPUS = 4
CAPACITY = 100_000_000  # per CPU
STREAMS = 16
PREMIUM = 4
DURATION = 20 * SECOND


def main() -> None:
    structure = SchedulingStructure()
    video = structure.mknod("/video", 4, scheduler=SfqScheduler())
    batch = structure.mknod("/batch", 1, scheduler=SfqScheduler())
    engine = Simulator()
    recorder = Recorder()
    machine = SmpMachine(engine, HierarchicalScheduler(structure),
                         num_cpus=CPUS, capacity_ips=CAPACITY,
                         default_quantum=10 * MS, tracer=recorder)

    decoders = []
    for index in range(STREAMS):
        premium = index < PREMIUM
        model = MpegVbrModel(seed=50 + index, mean_cost=700_000)
        thread = SimThread(
            "%s-%02d" % ("premium" if premium else "economy", index),
            MpegDecodeWorkload(model, paced=True),
            weight=2 if premium else 1)
        video.attach_thread(thread)
        machine.spawn(thread)
        decoders.append(thread)

    # batch analytics eat whatever the wall leaves over
    for index in range(2):
        job = SimThread("batch-%d" % index,
                        DhrystoneWorkload())
        batch.attach_thread(job)
        machine.spawn(job)

    machine.run_until(DURATION)

    seconds = DURATION / SECOND
    premium_fps = [d.stats.markers.get("frames", 0) / seconds
                   for d in decoders[:PREMIUM]]
    economy_fps = [d.stats.markers.get("frames", 0) / seconds
                   for d in decoders[PREMIUM:]]
    rows = [
        ["premium (w=2)", PREMIUM, "%.1f" % mean(premium_fps),
         "%.1f" % min(premium_fps)],
        ["economy (w=1)", STREAMS - PREMIUM, "%.1f" % mean(economy_fps),
         "%.1f" % min(economy_fps)],
    ]
    print(format_table(["tier", "streams", "mean fps", "worst fps"], rows,
                       title="Video wall: %d streams on %d CPUs (target 30 fps)"
                       % (STREAMS, CPUS)))
    busy = machine.busy_time / (DURATION * CPUS)
    print()
    print("machine utilization %.0f%% across %d CPUs;"
          % (100 * busy, CPUS))
    batch_work = sum(t.stats.work_done for t in machine.threads
                     if t.name.startswith("batch"))
    print("batch jobs absorbed %.1f CPU-seconds of leftover capacity"
          % (batch_work / CAPACITY))


if __name__ == "__main__":
    main()
