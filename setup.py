"""Legacy setup shim.

Kept so ``pip install -e .`` works offline with older setuptools (no wheel
package available); all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
